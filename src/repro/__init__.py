"""ACR: Automatic Checkpoint/Restart for Soft and Hard Error Protection.

A full Python reproduction of the SC'13 paper by Ni, Meneses, Jain and Kale:
replication-enhanced in-memory checkpointing with silent-data-corruption
detection, three hard-error recovery schemes, consensus-driven checkpoint
decisions, adaptive checkpoint periods, topology-aware replica mappings on a
3D torus, and the Section-5 analytical performance/reliability model -
evaluated with the paper's five mini-applications on a simulated
Blue Gene/P-like machine.

Quickstart::

    from repro import run_acr_experiment

    result = run_acr_experiment(
        "jacobi3d-charm", nodes_per_replica=4, scheme="strong",
        total_iterations=200, hard_mtbf=30.0, sdc_mtbf=50.0, seed=1,
    )
    assert result.report.result_correct
"""

from repro.apps import MINIAPP_NAMES, ReplicaApp, make_app
from repro.core import ACR, ACRConfig, RunReport
from repro.faults import (
    BitFlipInjector,
    FaultEvent,
    FaultKind,
    InjectionPlan,
    PoissonProcess,
    TraceProcess,
    WeibullProcess,
)
from repro.harness import forward_path_overhead, run_acr_experiment
from repro.model import ModelParams, ResilienceScheme, daly_tau, optimal_tau
from repro.network import (
    CheckpointProfile,
    CostModel,
    MachineConstants,
    MappingScheme,
    Torus3D,
    build_mapping,
    intrepid_allocation,
)
from repro.pup import (
    PackedState,
    Pupable,
    PUPer,
    compare_checkpoints,
    pack,
    pack_into,
    unpack,
)

__version__ = "1.0.0"

__all__ = [
    "MINIAPP_NAMES",
    "ReplicaApp",
    "make_app",
    "ACR",
    "ACRConfig",
    "RunReport",
    "BitFlipInjector",
    "FaultEvent",
    "FaultKind",
    "InjectionPlan",
    "PoissonProcess",
    "TraceProcess",
    "WeibullProcess",
    "forward_path_overhead",
    "run_acr_experiment",
    "ModelParams",
    "ResilienceScheme",
    "daly_tau",
    "optimal_tau",
    "CheckpointProfile",
    "CostModel",
    "MachineConstants",
    "MappingScheme",
    "Torus3D",
    "build_mapping",
    "intrepid_allocation",
    "PackedState",
    "Pupable",
    "PUPer",
    "compare_checkpoints",
    "pack",
    "pack_into",
    "unpack",
    "__version__",
]
