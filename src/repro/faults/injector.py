"""Fault injection schedules: which node fails, when, and how (paper §6.1).

Two fault classes, mirroring the paper's injector:

* **hard faults** — a node stops responding to any communication ("no-response
  scheme to mimic a fail-stop error"); detection happens via missed heartbeats;
* **SDC** — one bit flipped in the user data that will be checkpointed.

An :class:`InjectionPlan` is a pre-drawn, reproducible schedule of
:class:`FaultEvent` objects that the simulation framework consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.faults.distributions import FailureProcess
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


class FaultKind(str, Enum):
    HARD = "hard"
    SDC = "sdc"
    #: Storage faults against the durable tiers (:mod:`repro.storage`):
    #: a group write torn mid-flight, a bit silently flipped at rest, and a
    #: pathological write-latency spike.
    TORN_WRITE = "torn-write"
    BIT_ROT = "bit-rot"
    WRITE_SPIKE = "write-spike"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Fault kinds that target a durable storage tier rather than a node.
STORAGE_FAULT_KINDS = frozenset(
    {FaultKind.TORN_WRITE, FaultKind.BIT_ROT, FaultKind.WRITE_SPIKE})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: at ``time``, hit node ``node_id`` of ``replica``.

    Storage faults additionally carry the tier ``level`` (2 or 3) they
    strike; their replica/node_id are ignored by the framework.
    """

    time: float
    kind: FaultKind
    replica: int  # 0 or 1
    node_id: int  # node index within the replica
    level: int = 0  # storage tier level (storage fault kinds only)

    def __post_init__(self) -> None:
        if self.replica not in (0, 1):
            raise ConfigurationError(f"replica must be 0 or 1, got {self.replica}")
        if self.time < 0:
            raise ConfigurationError(f"fault time must be non-negative, got {self.time}")
        if self.kind in STORAGE_FAULT_KINDS:
            if self.level not in (2, 3):
                raise ConfigurationError(
                    f"storage fault {self.kind} needs level 2 or 3, "
                    f"got {self.level}")
        elif self.level != 0:
            raise ConfigurationError(
                f"non-storage fault {self.kind} cannot carry level "
                f"{self.level}")


@dataclass
class InjectionPlan:
    """A time-sorted schedule of faults for one experiment run."""

    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: e.time)

    def within(self, t0: float, t1: float) -> list[FaultEvent]:
        return [e for e in self.events if t0 <= e.time < t1]

    def hard_events(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind is FaultKind.HARD]

    def sdc_events(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind is FaultKind.SDC]

    def merged_with(self, other: "InjectionPlan") -> "InjectionPlan":
        return InjectionPlan(sorted(self.events + other.events, key=lambda e: e.time))


def draw_plan(
    process: FailureProcess,
    *,
    kind: FaultKind,
    horizon: float,
    nodes_per_replica: int,
    rng: RngStream,
) -> InjectionPlan:
    """Draw fault times from ``process`` and assign victims uniformly.

    Each fault strikes a uniformly random node of a uniformly random replica —
    the paper's failure model has no spatial preference (and its schemes only
    rely on buddy pairs failing *independently*, §2.3).
    """
    if nodes_per_replica < 1:
        raise ConfigurationError("nodes_per_replica must be >= 1")
    times = process.arrival_times(horizon)
    replicas = rng.integers(0, 2, size=times.size)
    victims = rng.integers(0, nodes_per_replica, size=times.size)
    events = [
        FaultEvent(time=float(t), kind=kind, replica=int(r), node_id=int(v))
        for t, r, v in zip(times, replicas, victims)
    ]
    return InjectionPlan(events)


def poisson_plan(
    *,
    hard_mtbf: float | None,
    sdc_mtbf: float | None,
    horizon: float,
    nodes_per_replica: int,
    rng: RngStream,
) -> InjectionPlan:
    """Convenience: independent Poisson hard-fault and SDC schedules."""
    from repro.faults.distributions import PoissonProcess

    plan = InjectionPlan()
    if hard_mtbf is not None and np.isfinite(hard_mtbf):
        hard = draw_plan(
            PoissonProcess(hard_mtbf, rng.child("hard")),
            kind=FaultKind.HARD,
            horizon=horizon,
            nodes_per_replica=nodes_per_replica,
            rng=rng.child("hard-victims"),
        )
        plan = plan.merged_with(hard)
    if sdc_mtbf is not None and np.isfinite(sdc_mtbf):
        sdc = draw_plan(
            PoissonProcess(sdc_mtbf, rng.child("sdc")),
            kind=FaultKind.SDC,
            horizon=horizon,
            nodes_per_replica=nodes_per_replica,
            rng=rng.child("sdc-victims"),
        )
        plan = plan.merged_with(sdc)
    return plan
