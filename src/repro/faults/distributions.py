"""Failure-arrival processes for fault injection (paper §2.2, §6.1, §6.4).

The paper injects failures "that follow different distributions": Poisson
(exponential inter-arrivals, the assumption of the Section-5 model) and
Weibull — the better fit to real HPC failure logs (Schroeder & Gibson, paper
reference [29]); Figure 12 uses a Weibull process with shape 0.6, whose
*decreasing* hazard rate is exactly what the adaptive checkpoint interval
exploits.  A deterministic trace process supports replaying recorded failure
times.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


class FailureProcess:
    """Generates an increasing stream of absolute failure times (seconds)."""

    def arrival_times(self, horizon: float) -> np.ndarray:
        """All failure times in ``[0, horizon)``, sorted ascending."""
        out = []
        for t in self.iter_arrivals():
            if t >= horizon:
                break
            out.append(t)
        return np.asarray(out, dtype=float)

    def iter_arrivals(self) -> Iterator[float]:  # pragma: no cover - interface
        raise NotImplementedError

    def hazard_rate(self, t: float) -> float:  # pragma: no cover - interface
        """Instantaneous failure rate at absolute time ``t``."""
        raise NotImplementedError


class PoissonProcess(FailureProcess):
    """Constant-rate (exponential inter-arrival) failures — the model's world."""

    def __init__(self, mtbf: float, rng: RngStream):
        if mtbf <= 0:
            raise ConfigurationError(f"mtbf must be positive, got {mtbf}")
        self.mtbf = float(mtbf)
        self.rng = rng

    def iter_arrivals(self) -> Iterator[float]:
        t = 0.0
        while True:
            t += float(self.rng.exponential(self.mtbf))
            yield t

    def hazard_rate(self, t: float) -> float:
        return 1.0 / self.mtbf


class WeibullProcess(FailureProcess):
    """Weibull renewal-free process with time-varying hazard.

    We sample arrival times directly from the non-homogeneous process whose
    hazard is the Weibull hazard ``h(t) = (k/λ)(t/λ)^{k−1}``: the *i*-th
    arrival satisfies ``H(t_i) = H(t_{i−1}) + E_i`` with standard-exponential
    increments ``E_i`` and cumulative hazard ``H(t) = (t/λ)^k``.  For shape
    ``k < 1`` the failure rate decreases over time — the Figure 12 scenario.
    """

    def __init__(self, shape: float, scale: float, rng: RngStream):
        if shape <= 0 or scale <= 0:
            raise ConfigurationError(
                f"shape and scale must be positive, got {shape}, {scale}"
            )
        self.shape = float(shape)
        self.scale = float(scale)
        self.rng = rng

    def iter_arrivals(self) -> Iterator[float]:
        cum_hazard = 0.0
        while True:
            cum_hazard += float(self.rng.exponential(1.0))
            yield self.scale * cum_hazard ** (1.0 / self.shape)

    def hazard_rate(self, t: float) -> float:
        if t <= 0:
            return float("inf") if self.shape < 1 else (
                0.0 if self.shape > 1 else 1.0 / self.scale
            )
        return (self.shape / self.scale) * (t / self.scale) ** (self.shape - 1.0)

    @classmethod
    def with_expected_count(
        cls, shape: float, horizon: float, expected_failures: float, rng: RngStream
    ) -> "WeibullProcess":
        """Choose the scale so roughly ``expected_failures`` arrive in
        ``[0, horizon)`` (Fig. 12: 19 failures in a 30-minute run).

        The expected count is the cumulative hazard ``(horizon/λ)^k``.
        """
        if expected_failures <= 0 or horizon <= 0:
            raise ConfigurationError("expected_failures and horizon must be positive")
        scale = horizon / expected_failures ** (1.0 / shape)
        return cls(shape, scale, rng)


class TraceProcess(FailureProcess):
    """Replays a fixed list of failure times (deterministic experiments)."""

    def __init__(self, times: Sequence[float]):
        arr = np.asarray(sorted(float(t) for t in times), dtype=float)
        if arr.size and arr[0] < 0:
            raise ConfigurationError("trace times must be non-negative")
        self.times = arr

    def iter_arrivals(self) -> Iterator[float]:
        yield from self.times

    def hazard_rate(self, t: float) -> float:
        # Empirical rate over the trace span; crude but only used for display.
        if self.times.size < 2:
            return 0.0
        span = self.times[-1] - self.times[0]
        return (self.times.size - 1) / span if span > 0 else math.inf
