"""Silent-data-corruption injection by bit flipping (paper §6.1).

"To produce an SDC, our fault injector injects a fault by flipping a randomly
selected bit in the user data that will be checkpointed."  We do exactly that:
the injector walks the live application state through a recording PUPer,
picks a uniformly random bit over all checkpointable payload bytes, and flips
it in place — so detection is exercised against *real* corruption, not a flag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pup.puper import PUPer, Pupable
from repro.util.errors import ACRError
from repro.util.rng import RngStream


@dataclass(frozen=True)
class FlipRecord:
    """Where an injected bit flip landed, for experiment logging."""

    field_name: str
    byte_index: int
    bit_index: int
    old_byte: int
    new_byte: int


class _MutableFieldCollector(PUPer):
    """Collects in-place views of every writable array the object pups."""

    def __init__(self) -> None:
        self.fields: list[tuple[str, np.ndarray]] = []

    def _handle(self, name, arr, *, rtol, atol, skip_compare):
        # Only mutable, contiguous ndarray state can be corrupted in place;
        # scalars are re-packed from Python attributes and non-contiguous
        # views would silently copy under reshape, so flips there would never
        # reach the application.  HPC state is overwhelmingly array data.
        if (isinstance(arr, np.ndarray) and arr.ndim > 0
                and arr.flags.writeable and arr.flags["C_CONTIGUOUS"]):
            self.fields.append((name, arr))
        return arr


class BitFlipInjector:
    """Flips one random bit in the checkpointable state of a task."""

    def __init__(self, rng: RngStream):
        self.rng = rng
        self.history: list[FlipRecord] = []

    def inject(self, target: Pupable) -> FlipRecord:
        """Corrupt one uniformly-random bit across all of ``target``'s
        checkpointable array payload.  Returns a record of what changed."""
        collector = _MutableFieldCollector()
        target.pup(collector)
        sizes = np.asarray([arr.nbytes for _, arr in collector.fields], dtype=np.int64)
        total = int(sizes.sum())
        if total == 0:
            raise ACRError("target has no mutable checkpointable state to corrupt")
        flat_index = int(self.rng.integers(0, total))
        cum = np.cumsum(sizes)
        field_idx = int(np.searchsorted(cum, flat_index, side="right"))
        offset = flat_index - (int(cum[field_idx - 1]) if field_idx else 0)
        name, arr = collector.fields[field_idx]
        view = arr.reshape(-1).view(np.uint8)
        bit = int(self.rng.integers(0, 8))
        old = int(view[offset])
        view[offset] = old ^ (1 << bit)
        record = FlipRecord(
            field_name=name,
            byte_index=offset,
            bit_index=bit,
            old_byte=old,
            new_byte=int(view[offset]),
        )
        self.history.append(record)
        return record
