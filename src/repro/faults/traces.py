"""Failure-trace ingestion and synthesis.

The paper's adaptivity argument rests on real failure logs: "a study of a
large number of failure behaviors in HPC systems has shown that a Weibull
distribution is a better fit to describe the actual distribution of failures
... the failure rate often decreases as execution progresses" (Schroeder &
Gibson, reference [29]).

This module moves between three representations:

* CSV failure logs (``time_seconds[,node][,kind]`` with an optional header),
  the shape real system logs reduce to;
* :class:`TraceProcess` replayable processes;
* synthetic LANL-like logs drawn from a Weibull process, for when the real
  logs cannot be shipped.

It also provides the goodness-of-fit helper used to decide which distribution
describes a stream — the choice the adaptive controller makes online.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np
from scipy import stats

from repro.faults.distributions import TraceProcess, WeibullProcess
from repro.faults.injector import FaultEvent, FaultKind, InjectionPlan
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


@dataclass(frozen=True)
class TraceRecord:
    """One failure-log line."""

    time: float
    node: int = 0
    kind: FaultKind = FaultKind.HARD


def parse_trace_csv(text: str) -> list[TraceRecord]:
    """Parse a failure log: ``time[,node][,kind]`` lines, ``#`` comments,
    and an optional header row."""
    records: list[TraceRecord] = []
    for lineno, raw in enumerate(io.StringIO(text), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split(",")]
        try:
            t = float(parts[0])
        except ValueError:
            if lineno == 1:  # header row
                continue
            raise ConfigurationError(
                f"trace line {lineno}: bad time value {parts[0]!r}"
            ) from None
        if t < 0:
            raise ConfigurationError(f"trace line {lineno}: negative time {t}")
        node = int(parts[1]) if len(parts) > 1 and parts[1] else 0
        kind = FaultKind(parts[2]) if len(parts) > 2 and parts[2] else FaultKind.HARD
        records.append(TraceRecord(time=t, node=node, kind=kind))
    records.sort(key=lambda r: r.time)
    return records


def load_trace(path: str | Path) -> list[TraceRecord]:
    """Load a CSV failure log from disk."""
    return parse_trace_csv(Path(path).read_text())


def save_trace(records: Sequence[TraceRecord], path: str | Path) -> None:
    """Write a failure log as CSV with a header."""
    lines = ["time_seconds,node,kind"]
    for r in sorted(records, key=lambda r: r.time):
        lines.append(f"{r.time},{r.node},{r.kind.value}")
    Path(path).write_text("\n".join(lines) + "\n")


def trace_to_process(records: Sequence[TraceRecord]) -> TraceProcess:
    """A replayable process over the trace's failure times."""
    return TraceProcess([r.time for r in records])


def trace_to_plan(records: Sequence[TraceRecord],
                  nodes_per_replica: int) -> InjectionPlan:
    """Map a trace onto a replicated machine: logged node ids fold onto
    (replica, rank) round-robin, preserving times and kinds."""
    if nodes_per_replica < 1:
        raise ConfigurationError("nodes_per_replica must be >= 1")
    events = []
    for r in records:
        replica = (r.node // nodes_per_replica) % 2
        rank = r.node % nodes_per_replica
        events.append(FaultEvent(time=r.time, kind=r.kind,
                                 replica=replica, node_id=rank))
    return InjectionPlan(events)


def synthesize_lanl_like_trace(
    *,
    horizon: float,
    expected_failures: int,
    shape: float = 0.6,
    nodes: int = 128,
    seed: int = 0,
) -> list[TraceRecord]:
    """A synthetic stand-in for a LANL-class failure log: Weibull arrival
    times (decreasing hazard for shape < 1) over a node population."""
    rng = RngStream(seed, "trace/lanl")
    process = WeibullProcess.with_expected_count(
        shape, horizon=horizon, expected_failures=expected_failures,
        rng=rng.child("times"))
    times = process.arrival_times(horizon)
    victims = rng.child("victims").integers(0, nodes, size=times.size)
    return [TraceRecord(time=float(t), node=int(v))
            for t, v in zip(times, victims)]


@dataclass(frozen=True)
class DistributionFit:
    """Which distribution describes a failure stream, and how well."""

    weibull_shape: float
    weibull_scale: float
    exponential_mean: float
    weibull_loglik: float
    exponential_loglik: float

    @property
    def prefers_weibull(self) -> bool:
        """Likelihood-ratio preference, penalizing Weibull's extra parameter
        by one unit of log-likelihood (half an AIC step)."""
        return self.weibull_loglik - 1.0 > self.exponential_loglik


def fit_interarrivals(times: Sequence[float]) -> DistributionFit:
    """Fit the gaps of a failure-time stream as i.i.d. Weibull/exponential.

    This is the offline version of the §2.2 decision ("fit the actual
    observed failures ... to a certain distribution").
    """
    arr = np.asarray(sorted(times), dtype=float)
    if arr.size < 3:
        raise ConfigurationError("need at least 3 failure times to fit")
    gaps = np.diff(np.concatenate([[0.0], arr]))
    gaps = gaps[gaps > 0]
    if gaps.size < 2:
        raise ConfigurationError("degenerate trace: all failures simultaneous")
    shape, _loc, scale = stats.weibull_min.fit(gaps, floc=0.0)
    w_ll = float(np.sum(stats.weibull_min.logpdf(gaps, shape, 0.0, scale)))
    mean = float(gaps.mean())
    e_ll = float(np.sum(stats.expon.logpdf(gaps, 0.0, mean)))
    return DistributionFit(
        weibull_shape=float(shape),
        weibull_scale=float(scale),
        exponential_mean=mean,
        weibull_loglik=w_ll,
        exponential_loglik=e_ll,
    )
