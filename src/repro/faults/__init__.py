"""Fault injection: failure-time processes, bit-flip SDC, hard-fault plans."""

from repro.faults.bitflip import BitFlipInjector, FlipRecord
from repro.faults.distributions import (
    FailureProcess,
    PoissonProcess,
    TraceProcess,
    WeibullProcess,
)
from repro.faults.injector import (
    FaultEvent,
    FaultKind,
    InjectionPlan,
    draw_plan,
    poisson_plan,
)
from repro.faults.traces import (
    DistributionFit,
    TraceRecord,
    fit_interarrivals,
    load_trace,
    parse_trace_csv,
    save_trace,
    synthesize_lanl_like_trace,
    trace_to_plan,
    trace_to_process,
)

__all__ = [
    "BitFlipInjector",
    "FlipRecord",
    "FailureProcess",
    "PoissonProcess",
    "TraceProcess",
    "WeibullProcess",
    "FaultEvent",
    "FaultKind",
    "InjectionPlan",
    "draw_plan",
    "poisson_plan",
    "DistributionFit",
    "TraceRecord",
    "fit_interarrivals",
    "load_trace",
    "parse_trace_csv",
    "save_trace",
    "synthesize_lanl_like_trace",
    "trace_to_plan",
    "trace_to_process",
]
