"""Scheduling core of the campaign server: jobs, cells, dedup, quotas.

This module is deliberately synchronous and transport-free — the asyncio
HTTP layer (:mod:`repro.serve.server`) calls into it from one event loop, so
no locking is needed, and the unit tests drive it directly.

The unit of work is the same *cell* the content-addressed store caches: one
``(config, app, seed)`` simulation addressed by
:func:`~repro.store.keys.material_key`.  Because the address is canonical,
two tenants submitting overlapping sweeps resolve to the *same* cell keys,
and the state machine dedupes in all three phases of a cell's life:

* **completed** — the cell is in the store: served as a cache hit, no work;
* **in flight** — queued or running for some earlier job: the new job
  *attaches* to it (one computation, every waiter ticks on completion);
* **unknown** — enqueued once, guarded by per-tenant quotas and the global
  queue bound (the HTTP layer maps rejections to 429 + Retry-After).

Durability follows ACR's own rule — completed work must survive the death of
the component that did it.  Jobs with outstanding cells are journaled
through the store's job journal (:class:`~repro.store.leases.JobJournal`)
and their in-flight cells leave lease records
(:class:`~repro.store.leases.LeaseRegistry`); a restarted server re-reads
both, counts every cell already in the store as *saved work* (shelf-style
validation-on-resume), and re-enqueues only the rest.  Submissions served
entirely from cache complete within the request and skip the fsync.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.obs.metrics import merge_snapshots
from repro.obs.progress import ProgressTracker
from repro.obs.series import merge_series
from repro.store import (
    JOB_ACTIVE_STATES,
    KIND_RUN_REPORT,
    JobJournal,
    LeaseRegistry,
    ResultStore,
    experiment_cell_material,
    material_key,
    report_from_dict,
)
from repro.util.hashing import canonical_digest, to_jsonable

#: Bound on cells waiting in the queue across all tenants (backpressure).
DEFAULT_QUEUE_LIMIT = 1024

#: Bound on one tenant's outstanding (queued + running) cells.
DEFAULT_TENANT_QUOTA = 256

#: Default job priority; lower values run sooner.
DEFAULT_PRIORITY = 10


class ServeRejection(Exception):
    """A submission the server refuses right now (HTTP 429).

    ``retry_after`` is the server's backoff hint in seconds, derived from
    queue depth over worker width.
    """

    def __init__(self, message: str, retry_after: int) -> None:
        super().__init__(message)
        self.retry_after = int(retry_after)


class QueueFull(ServeRejection):
    """The global work queue is at its bound."""


class QuotaExceeded(ServeRejection):
    """The tenant's outstanding-cell quota is exhausted."""


class UnknownJob(KeyError):
    """No job with this id (HTTP 404)."""


@dataclass
class Cell:
    """One in-flight unit of work and the jobs waiting on it."""

    key: str
    material: dict
    app: str
    seed: int
    config: dict
    priority: int
    status: str = "queued"  # queued | running
    jobs: set[str] = field(default_factory=set)
    tenants: set[str] = field(default_factory=set)


@dataclass
class Job:
    """One submitted sweep: its cells, lifecycle state, and progress."""

    job_id: str
    tenant: str
    app: str
    seeds: list[int]
    config: dict
    priority: int
    created: float
    status: str = "queued"  # queued | running | done | failed | cancelled
    #: (seed, key) in submission order — the full expansion.
    cells: list[tuple[int, str]] = field(default_factory=list)
    #: Keys still owed to this job.
    pending: set[str] = field(default_factory=set)
    #: Submit-time classification counts.
    cached_at_submit: int = 0
    attached_at_submit: int = 0
    queued_at_submit: int = 0
    #: Cells found already in the store when a restarted server resumed us.
    saved_on_resume: int = 0
    resumed: bool = False
    error: str | None = None
    finished: float | None = None
    progress: ProgressTracker | None = None

    def to_record(self) -> dict:
        """The durable job record (everything needed to resume)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "app": self.app,
            "seeds": list(self.seeds),
            "config": dict(self.config),
            "priority": self.priority,
            "created": self.created,
            "status": self.status,
            "cells": {key: seed for seed, key in self.cells},
            "error": self.error,
        }

    def status_payload(self) -> dict:
        """The job as the HTTP API reports it."""
        done = len(self.cells) - len(self.pending)
        payload = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "app": self.app,
            "status": self.status,
            "priority": self.priority,
            "created": self.created,
            "seeds": list(self.seeds),
            "cells_total": len(self.cells),
            "cells_done": done,
            "cells_pending": len(self.pending),
            "cached_at_submit": self.cached_at_submit,
            "attached_at_submit": self.attached_at_submit,
            "queued_at_submit": self.queued_at_submit,
            "saved_on_resume": self.saved_on_resume,
            "resumed": self.resumed,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.finished is not None:
            payload["finished"] = self.finished
        if self.progress is not None:
            payload["progress"] = self.progress.snapshot()
        return payload


class ServeState:
    """The server's authoritative in-memory state plus its durable mirror."""

    def __init__(
        self,
        store: ResultStore,
        *,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        tenant_quota: int = DEFAULT_TENANT_QUOTA,
        workers_hint: int = 1,
        clock=time.time,
    ) -> None:
        self.store = store
        self.journal = JobJournal(store.root)
        self.leases = LeaseRegistry(store.root)
        self.queue_limit = int(queue_limit)
        self.tenant_quota = int(tenant_quota)
        self.workers_hint = max(1, int(workers_hint))
        self.clock = clock
        self.jobs: dict[str, Job] = {}
        self.cells: dict[str, Cell] = {}
        #: Keys confirmed present in the store (memo over ``store.has``).
        self.known: set[str] = set()
        self.queued_cells = 0
        self.running_cells = 0
        self._outstanding: dict[str, int] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._seq = 0
        self._job_seq = 0
        self.resume_stats = {"jobs": 0, "saved_cells": 0,
                             "requeued_cells": 0, "stale_leases": 0,
                             "key_mismatches": 0}
        self._resume()

    # -- submission -----------------------------------------------------------
    def submit(self, *, tenant: str, app: str, seeds: list[int],
               config: dict, priority: int = DEFAULT_PRIORITY) -> Job:
        """Expand a sweep to cells, dedupe, enforce quotas, enqueue misses.

        Returns the new :class:`Job`; raises :class:`QuotaExceeded` /
        :class:`QueueFull` without side effects when limits would be
        breached.
        """
        unique_seeds: list[int] = []
        seen: set[int] = set()
        for seed in seeds:
            seed = int(seed)
            if seed not in seen:
                seen.add(seed)
                unique_seeds.append(seed)
        expansion: list[tuple[int, str, dict]] = []
        hits: list[str] = []
        attach: list[str] = []
        fresh: list[tuple[int, str, dict]] = []
        for seed in unique_seeds:
            material = experiment_cell_material(app, seed, config)
            key = material_key(material)
            expansion.append((seed, key, material))
            if self._is_cached(key, material):
                hits.append(key)
            elif key in self.cells:
                attach.append(key)
            else:
                fresh.append((seed, key, material))

        newly_outstanding = len(fresh) + sum(
            1 for key in attach if tenant not in self.cells[key].tenants)
        if (self.tenant_quota and
                self._outstanding.get(tenant, 0) + newly_outstanding
                > self.tenant_quota):
            raise QuotaExceeded(
                f"tenant {tenant!r} has {self._outstanding.get(tenant, 0)} "
                f"outstanding cell(s); +{newly_outstanding} would exceed the "
                f"quota of {self.tenant_quota}",
                self._retry_after(),
            )
        if self.queue_limit and self.queued_cells + len(fresh) > self.queue_limit:
            raise QueueFull(
                f"work queue holds {self.queued_cells} cell(s); +{len(fresh)} "
                f"would exceed the bound of {self.queue_limit}",
                self._retry_after(),
            )

        job = Job(
            job_id=f"job-{self._job_seq:06d}",
            tenant=tenant,
            app=app,
            seeds=unique_seeds,
            config=dict(config),
            priority=int(priority),
            created=self.clock(),
            cells=[(seed, key) for seed, key, _ in expansion],
            pending={key for _, key, _ in expansion if key not in hits},
            cached_at_submit=len(hits),
            attached_at_submit=len(attach),
            queued_at_submit=len(fresh),
        )
        self._job_seq += 1
        job.progress = ProgressTracker(len(job.cells), label=job.job_id)
        if hits:
            job.progress.cell_cached(len(hits))
        self.jobs[job.job_id] = job

        for key in attach:
            cell = self.cells[key]
            cell.jobs.add(job.job_id)
            if tenant not in cell.tenants:
                cell.tenants.add(tenant)
                self._outstanding[tenant] = \
                    self._outstanding.get(tenant, 0) + 1
            if job.priority < cell.priority and cell.status == "queued":
                cell.priority = job.priority
                self._push(cell)
        for seed, key, material in fresh:
            cell = Cell(key=key, material=material, app=app, seed=seed,
                        config=job.config, priority=job.priority,
                        jobs={job.job_id}, tenants={tenant})
            self.cells[key] = cell
            self.queued_cells += 1
            self._outstanding[tenant] = self._outstanding.get(tenant, 0) + 1
            self._push(cell)

        if not job.pending:
            # Served entirely from cache: done within the request, no fsync.
            job.status = "done"
            job.finished = self.clock()
            job.progress.finish()
            self.journal.append_event(
                {"event": "done", "job": job.job_id, "t": job.finished,
                 "cached": job.cached_at_submit}, durable=False)
        else:
            job.status = "running"
            self.journal.write_job(job.to_record(), durable=True)
            self.journal.append_event(
                {"event": "submitted", "job": job.job_id, "t": job.created,
                 "tenant": tenant, "cells": len(job.cells),
                 "queued": job.queued_at_submit}, durable=True)
        return job

    def _is_cached(self, key: str, material: dict) -> bool:
        if key in self.known:
            return True
        if self.store.has(material):
            self.known.add(key)
            return True
        return False

    def _retry_after(self) -> int:
        backlog = self.queued_cells + self.running_cells
        return max(1, min(60, backlog // self.workers_hint))

    def _push(self, cell: Cell) -> None:
        heapq.heappush(self._heap, (cell.priority, self._seq, cell.key))
        self._seq += 1

    # -- the work queue -------------------------------------------------------
    def next_cell(self) -> Cell | None:
        """Claim the highest-priority queued cell (marks it running)."""
        while self._heap:
            _, _, key = heapq.heappop(self._heap)
            cell = self.cells.get(key)
            # Stale heap entries: cancelled cells and duplicate pushes from
            # priority boosts resolve to non-queued (or gone) cells.
            if cell is None or cell.status != "queued":
                continue
            cell.status = "running"
            self.queued_cells -= 1
            self.running_cells += 1
            self.leases.acquire(key, jobs=sorted(cell.jobs),
                                tenant=",".join(sorted(cell.tenants)))
            return cell
        return None

    def complete_cell(self, key: str, payload: dict) -> list[Job]:
        """Persist a finished cell and tick every attached job.

        Returns the jobs that *finished* because of this cell.
        """
        cell = self.cells.pop(key, None)
        if cell is None:
            return []
        self.store.put(cell.material, payload, kind=KIND_RUN_REPORT)
        self.known.add(key)
        self.leases.release(key)
        self._account_cell_gone(cell)
        finished = []
        for job_id in sorted(cell.jobs):
            job = self.jobs.get(job_id)
            if job is None or key not in job.pending:
                continue
            job.pending.discard(key)
            if job.progress is not None:
                job.progress.cell_completed()
            if not job.pending and job.status in JOB_ACTIVE_STATES:
                self._finish_job(job, "done")
                finished.append(job)
        return finished

    def fail_cell(self, key: str, error: str) -> list[Job]:
        """A cell's computation raised: fail every job waiting on it."""
        cell = self.cells.pop(key, None)
        if cell is None:
            return []
        self.leases.release(key)
        self._account_cell_gone(cell)
        failed = []
        for job_id in sorted(cell.jobs):
            job = self.jobs.get(job_id)
            if job is None or job.status not in JOB_ACTIVE_STATES:
                continue
            job.error = f"cell seed={cell.seed}: {error}"
            if job.progress is not None:
                job.progress.cell_failed()
            self._finish_job(job, "failed")
            failed.append(job)
        return failed

    def _account_cell_gone(self, cell: Cell) -> None:
        if cell.status == "queued":
            self.queued_cells -= 1
        else:
            self.running_cells -= 1
        for tenant in cell.tenants:
            remaining = self._outstanding.get(tenant, 1) - 1
            if remaining > 0:
                self._outstanding[tenant] = remaining
            else:
                self._outstanding.pop(tenant, None)

    def _finish_job(self, job: Job, status: str) -> None:
        job.status = status
        job.finished = self.clock()
        if job.progress is not None:
            job.progress.finish()
        self.journal.write_job(job.to_record(), durable=True)
        self.journal.append_event(
            {"event": status, "job": job.job_id, "t": job.finished},
            durable=True)

    # -- cancellation ---------------------------------------------------------
    def cancel_job(self, job_id: str) -> Job:
        """Cancel a job; queued cells nobody else wants are dropped.

        Cells already running are left to finish — their results land in the
        store either way, so the work is never wasted.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        if job.status not in JOB_ACTIVE_STATES:
            return job
        for key in sorted(job.pending):
            cell = self.cells.get(key)
            if cell is None:
                continue
            cell.jobs.discard(job_id)
            still_wanted = {self.jobs[j].tenant for j in cell.jobs
                            if j in self.jobs}
            dropped_tenants = cell.tenants - still_wanted
            cell.tenants = still_wanted
            for tenant in dropped_tenants:
                remaining = self._outstanding.get(tenant, 1) - 1
                if remaining > 0:
                    self._outstanding[tenant] = remaining
                else:
                    self._outstanding.pop(tenant, None)
            if not cell.jobs and cell.status == "queued":
                del self.cells[key]
                self.queued_cells -= 1
        job.pending.clear()
        self._finish_job(job, "cancelled")
        return job

    # -- resume ---------------------------------------------------------------
    def _resume(self) -> None:
        """Rebuild from the job journal after a restart (or a kill -9).

        Every recorded cell already present in the store is *saved work*;
        only the rest are re-enqueued.  Recorded cell keys are validated
        against a fresh expansion — a changed source tree re-derives
        different keys, in which case the recorded ones are stale and the
        re-derived cells are computed instead.
        """
        stale = self.leases.sweep()
        self.resume_stats["stale_leases"] = len(stale)
        for job_id, record in sorted(self.journal.load_jobs().items()):
            try:
                seq = int(job_id.rsplit("-", 1)[1]) + 1
            except (IndexError, ValueError):
                seq = 0
            self._job_seq = max(self._job_seq, seq)
            job = Job(
                job_id=job_id,
                tenant=str(record.get("tenant", "default")),
                app=str(record.get("app", "")),
                seeds=[int(s) for s in record.get("seeds", [])],
                config=dict(record.get("config", {})),
                priority=int(record.get("priority", DEFAULT_PRIORITY)),
                created=float(record.get("created", 0.0)),
                status=str(record.get("status", "queued")),
                error=record.get("error"),
            )
            if job.status not in JOB_ACTIVE_STATES:
                # Terminal: kept for listings, nothing to do.
                job.cells = [(int(seed), key) for key, seed
                             in sorted(record.get("cells", {}).items(),
                                       key=lambda kv: kv[1])]
                self.jobs[job.job_id] = job
                continue
            job.resumed = True
            recorded = set(record.get("cells", {}))
            saved = requeued = 0
            for seed in job.seeds:
                material = experiment_cell_material(job.app, seed, job.config)
                key = material_key(material)
                job.cells.append((seed, key))
                if key not in recorded:
                    self.resume_stats["key_mismatches"] += 1
                if self._is_cached(key, material):
                    saved += 1
                    continue
                job.pending.add(key)
                requeued += 1
                cell = self.cells.get(key)
                if cell is not None:
                    cell.jobs.add(job.job_id)
                    if job.tenant not in cell.tenants:
                        cell.tenants.add(job.tenant)
                        self._outstanding[job.tenant] = \
                            self._outstanding.get(job.tenant, 0) + 1
                    continue
                cell = Cell(key=key, material=material, app=job.app,
                            seed=seed, config=job.config,
                            priority=job.priority, jobs={job.job_id},
                            tenants={job.tenant})
                self.cells[key] = cell
                self.queued_cells += 1
                self._outstanding[job.tenant] = \
                    self._outstanding.get(job.tenant, 0) + 1
                self._push(cell)
            job.saved_on_resume = saved
            job.progress = ProgressTracker(len(job.cells), label=job.job_id)
            if saved:
                job.progress.cell_cached(saved)
            self.jobs[job.job_id] = job
            self.resume_stats["jobs"] += 1
            self.resume_stats["saved_cells"] += saved
            self.resume_stats["requeued_cells"] += requeued
            if not job.pending:
                self._finish_job(job, "done")
            else:
                job.status = "running"
                self.journal.write_job(job.to_record(), durable=True)
        if self.resume_stats["jobs"]:
            self.journal.append_event(
                {"event": "resumed", "t": self.clock(),
                 **{k: v for k, v in self.resume_stats.items()}},
                durable=True)

    # -- results --------------------------------------------------------------
    def _job_reports(self, job: Job, *, only_done: bool = False):
        """Load a job's cell reports back from the store, in seed order."""
        reports = []
        missing = []
        for seed, key in job.cells:
            if only_done and key in job.pending:
                continue
            material = experiment_cell_material(job.app, seed, job.config)
            payload = self.store.get(material)
            if payload is None:
                missing.append(seed)
                continue
            reports.append(report_from_dict(payload))
        return reports, missing

    def job_result(self, job_id: str) -> dict:
        """The finished job's aggregate: a campaign summary plus its digest.

        The summary is computed purely from store-loaded cells, so it is
        bitwise-identical no matter how the cells got there — one server,
        two overlapping tenants, or a kill -9 and a resume.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        if job.status != "done":
            raise ValueError(f"job {job_id} is {job.status}, not done")
        reports, missing = self._job_reports(job)
        if missing:
            raise ValueError(
                f"job {job_id}: {len(missing)} cell(s) missing from the "
                f"store (seeds {missing[:5]}...) — was the cache gc'd?")
        from repro.harness.campaign import summarize

        summary = to_jsonable(summarize(reports))
        return {
            "job_id": job.job_id,
            "app": job.app,
            "seeds": list(job.seeds),
            "summary": summary,
            "summary_digest": canonical_digest(summary),
        }

    def job_observability(self, job_id: str) -> dict:
        """Live merged metrics/series over the job's completed cells."""
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        reports, _ = self._job_reports(job, only_done=True)
        snapshots = [r.metrics_snapshot for r in reports if r.metrics_snapshot]
        series_list = [r.series for r in reports if r.series]
        return {
            "job_id": job.job_id,
            "cells_merged": len(reports),
            "metrics": merge_snapshots(snapshots) if snapshots else None,
            "series": merge_series(series_list) if series_list else None,
        }

    # -- introspection --------------------------------------------------------
    def stats(self) -> dict:
        by_status: dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "jobs": by_status,
            "queued_cells": self.queued_cells,
            "running_cells": self.running_cells,
            "known_cells": len(self.known),
            "queue_limit": self.queue_limit,
            "tenant_quota": self.tenant_quota,
            "outstanding_by_tenant": dict(sorted(self._outstanding.items())),
            "resume": dict(self.resume_stats),
        }
