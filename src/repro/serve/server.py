"""The asyncio campaign server: HTTP/1.1 front end + worker loop.

Zero new runtime dependencies: the HTTP layer is a small hand-rolled
HTTP/1.1 implementation over ``asyncio.start_server`` streams (keep-alive,
Content-Length bodies — exactly what the JSON API needs, and what lets the
cache-hit path sustain thousands of requests per second over one
connection).  Simulation work runs off-loop on the shared
:class:`~repro.harness.pool.WorkerPool`.

API (all bodies JSON)::

    GET  /healthz                  server + scheduler stats, resume report
    GET  /metrics                  Prometheus/OpenMetrics text exposition
    POST /v1/jobs                  submit a sweep  {tenant, app, seeds|count,
                                   config, priority} -> job status (202/200)
    GET  /v1/jobs[?tenant=t]       list jobs
    GET  /v1/jobs/<id>             one job's status + live progress
    GET  /v1/jobs/<id>/result      finished job's campaign summary + digest
    GET  /v1/jobs/<id>/metrics     merged obs metrics/series over done cells
    POST /v1/jobs/<id>/cancel      cancel

Backpressure surfaces as ``429`` with a ``Retry-After`` header; everything
else follows plain REST conventions (400 bad request, 404 unknown job, 409
result-not-ready).
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures.process import BrokenProcessPool
from urllib.parse import parse_qs, urlsplit

from repro.harness.pool import WorkerPool
from repro.obs.export import snapshot_to_openmetrics
from repro.obs.metrics import MetricsRegistry
from repro.serve.state import (
    DEFAULT_PRIORITY,
    ServeRejection,
    ServeState,
    UnknownJob,
)

#: Upper bound on request-body size (a sweep submission is a few KiB).
MAX_BODY_BYTES = 4 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str, headers=None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


def _compute_cell(app: str, seed: int, config: dict) -> dict:
    """Process-pool worker: one cell -> its serialized report payload."""
    from repro.harness.experiment import run_experiment_report
    from repro.store import report_to_dict

    return report_to_dict(run_experiment_report(app, seed, config))


class CampaignServer:
    """One server process: scheduler state, HTTP listener, worker tasks."""

    def __init__(
        self,
        state: ServeState,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        executor=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.state = state
        self.host = host
        self.port = port
        self._executor = executor  # test seam: async (cell) -> payload dict
        self.pool = WorkerPool(workers) if executor is None else None
        self.workers = self.pool.width if self.pool is not None else \
            max(1, int(workers or 1))
        state.workers_hint = self.workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._worker_tasks: list[asyncio.Task] = []
        self._wake: asyncio.Event | None = None
        self._thread = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(i))
            for i in range(self.workers)
        ]
        if self.state.queued_cells:
            self._wake.set()

    async def shutdown(self) -> None:
        for task in list(self._worker_tasks) + list(self._connections):
            task.cancel()
        for task in list(self._worker_tasks) + list(self._connections):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._worker_tasks = []
        self._connections.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.pool is not None:
            self.pool.shutdown()

    def start_background(self) -> "CampaignServer":
        """Run the server on a daemon thread (tests and benchmarks)."""
        import threading

        loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=runner, daemon=True,
                                  name="repro-serve")
        thread.start()
        if not started.wait(timeout=30):
            raise RuntimeError("campaign server failed to start")
        self._thread, self._loop = thread, loop
        return self

    def stop_background(self) -> None:
        if self._loop is None:
            return
        asyncio.run_coroutine_threadsafe(self.shutdown(),
                                         self._loop).result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._loop, self._thread = None, None

    # -- worker loop ----------------------------------------------------------
    async def _worker_loop(self, index: int) -> None:
        assert self._wake is not None
        while True:
            cell = self.state.next_cell()
            if cell is None:
                self._wake.clear()
                await self._wake.wait()
                continue
            self._set_queue_gauges()
            try:
                payload = await self._execute(cell)
            except asyncio.CancelledError:
                raise
            except Exception as err:  # noqa: BLE001 — job-level failure
                failed = self.state.fail_cell(
                    cell.key, f"{type(err).__name__}: {err}")
                self.metrics.counter("serve.cells_failed").inc()
                self.metrics.counter("serve.jobs_failed").inc(len(failed))
            else:
                finished = self.state.complete_cell(cell.key, payload)
                self.metrics.counter("serve.cells_computed").inc()
                self.metrics.counter("serve.jobs_completed").inc(
                    len(finished))
            self._set_queue_gauges()

    async def _execute(self, cell) -> dict:
        if self._executor is not None:
            return await self._executor(cell)
        assert self.pool is not None
        try:
            return await asyncio.wrap_future(
                self.pool.submit(_compute_cell, cell.app, cell.seed,
                                 cell.config))
        except BrokenProcessPool:
            # A worker died mid-cell (e.g. OOM-killed): one retry on threads.
            self.pool.fall_back_to_threads()
            return await asyncio.wrap_future(
                self.pool.submit(_compute_cell, cell.app, cell.seed,
                                 cell.config))

    def _set_queue_gauges(self) -> None:
        self.metrics.gauge("serve.queue_depth").set(self.state.queued_cells)
        self.metrics.gauge("serve.cells_running").set(
            self.state.running_cells)

    # -- HTTP layer -----------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, version, headers, body = request
                status, payload, extra, content_type = self._dispatch(
                    method, target, body)
                keep_alive = (version == "HTTP/1.1" and
                              headers.get("connection", "").lower() != "close")
                self._write_response(writer, status, payload, extra,
                                     content_type, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # Server shutdown while this keep-alive connection was idle;
            # swallowing the cancel keeps the asyncio.streams done-callback
            # from logging it as an unhandled exception.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ConnectionError(f"malformed request line {line!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY_BYTES:
            raise ConnectionError(f"body of {length} bytes refused")
        body = await reader.readexactly(length) if length else b""
        return method, target, version, headers, body

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        payload, extra_headers: dict, content_type: str,
                        keep_alive: bool) -> None:
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = payload
        self.metrics.counter("serve.responses", code=str(status)).inc()
        head = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
                f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        head.extend(f"{k}: {v}" for k, v in extra_headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)

    def _dispatch(self, method: str, target: str, body: bytes):
        """Route one request; returns (status, payload, headers, ctype)."""
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        try:
            return self._route(method, path, query, body)
        except _HttpError as err:
            return (err.status, {"error": str(err)}, err.headers,
                    "application/json")
        except ServeRejection as err:
            self.metrics.counter("serve.rejected").inc()
            return (429, {"error": str(err),
                          "retry_after_s": err.retry_after},
                    {"Retry-After": str(err.retry_after)},
                    "application/json")
        except UnknownJob as err:
            return (404, {"error": f"unknown job {err.args[0]!r}"}, {},
                    "application/json")
        except Exception as err:  # noqa: BLE001 — never kill the connection
            return (500, {"error": f"{type(err).__name__}: {err}"}, {},
                    "application/json")

    def _route(self, method: str, path: str, query: dict, body: bytes):
        self.metrics.counter("serve.requests", route=f"{method} {path}"
                             if not path.startswith("/v1/jobs/")
                             else f"{method} /v1/jobs/*").inc()
        if path == "/healthz" and method == "GET":
            payload = {"ok": True, "workers": self.workers,
                       "pool": self.pool.mode if self.pool else "external"}
            payload.update(self.state.stats())
            return 200, payload, {}, "application/json"
        if path == "/metrics" and method == "GET":
            return (200, snapshot_to_openmetrics(self.metrics.snapshot()),
                    {}, "application/openmetrics-text; charset=utf-8")
        if path == "/v1/jobs" and method == "POST":
            return self._route_submit(body)
        if path == "/v1/jobs" and method == "GET":
            tenant = query.get("tenant")
            jobs = [job.status_payload()
                    for job_id, job in sorted(self.state.jobs.items())
                    if tenant is None or job.tenant == tenant]
            return 200, {"jobs": jobs}, {}, "application/json"
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, action = rest.partition("/")
            return self._route_job(method, job_id, action)
        raise _HttpError(404, f"no route for {method} {path}")

    def _route_submit(self, body: bytes):
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as err:
            raise _HttpError(400, f"request body is not JSON: {err}")
        if not isinstance(request, dict):
            raise _HttpError(400, "request body must be a JSON object")
        from repro.apps.registry import MINIAPP_NAMES

        app = request.get("app", "jacobi3d-charm")
        if app not in MINIAPP_NAMES:
            raise _HttpError(400, f"unknown app {app!r} "
                                  f"(one of {sorted(MINIAPP_NAMES)})")
        seeds = request.get("seeds")
        if seeds is None:
            start = int(request.get("seed_start", 0))
            count = int(request.get("count", 1))
            seeds = list(range(start, start + count))
        if (not isinstance(seeds, list) or not seeds or
                not all(isinstance(s, int) for s in seeds)):
            raise _HttpError(400, "seeds must be a non-empty integer list")
        config = request.get("config") or {}
        if not isinstance(config, dict):
            raise _HttpError(400, "config must be a JSON object")
        tenant = str(request.get("tenant", "default"))
        priority = int(request.get("priority", DEFAULT_PRIORITY))
        job = self.state.submit(tenant=tenant, app=app, seeds=seeds,
                                config=config, priority=priority)
        self.metrics.counter("serve.jobs_submitted", tenant=tenant).inc()
        self.metrics.counter("serve.cells_cache_hits").inc(
            job.cached_at_submit)
        self.metrics.counter("serve.cells_attached").inc(
            job.attached_at_submit)
        self.metrics.counter("serve.cells_queued").inc(job.queued_at_submit)
        self._set_queue_gauges()
        if job.queued_at_submit and self._wake is not None:
            self._wake.set()
        status = 200 if job.status == "done" else 202
        return status, job.status_payload(), {}, "application/json"

    def _route_job(self, method: str, job_id: str, action: str):
        if action == "" and method == "GET":
            job = self.state.jobs.get(job_id)
            if job is None:
                raise UnknownJob(job_id)
            return 200, job.status_payload(), {}, "application/json"
        if action == "result" and method == "GET":
            job = self.state.jobs.get(job_id)
            if job is None:
                raise UnknownJob(job_id)
            if job.status != "done":
                raise _HttpError(
                    409, f"job {job_id} is {job.status}, not done")
            return 200, self.state.job_result(job_id), {}, "application/json"
        if action == "metrics" and method == "GET":
            return (200, self.state.job_observability(job_id), {},
                    "application/json")
        if action == "cancel" and method == "POST":
            job = self.state.cancel_job(job_id)
            self.metrics.counter("serve.jobs_cancelled").inc()
            self._set_queue_gauges()
            return 200, job.status_payload(), {}, "application/json"
        raise _HttpError(405 if action in ("", "result", "metrics", "cancel")
                         else 404,
                         f"no route for {method} /v1/jobs/{job_id}/{action}")


async def _serve_main(server: CampaignServer, banner=print) -> None:
    import signal

    await server.start()
    state = server.state
    banner(f"repro-serve listening on {server.host}:{server.port} "
           f"(store {state.store.root}, {server.workers} worker(s), "
           f"queue limit {state.queue_limit}, "
           f"tenant quota {state.tenant_quota})", flush=True)
    rs = state.resume_stats
    if rs["jobs"]:
        banner(f"resumed {rs['jobs']} job(s): {rs['saved_cells']} cell(s) "
               f"already in store (saved), {rs['requeued_cells']} "
               f"re-enqueued, {rs['stale_leases']} stale lease(s) swept",
               flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass
    await stop.wait()
    banner("repro-serve shutting down", flush=True)
    await server.shutdown()


def serve_forever(server: CampaignServer) -> int:
    """Blocking entry point behind ``repro serve``."""
    try:
        asyncio.run(_serve_main(server))
    except KeyboardInterrupt:
        pass
    return 0
