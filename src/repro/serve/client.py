"""Stdlib HTTP client for the campaign server.

``http.client`` with keep-alive, so the CLI (``repro submit`` / ``repro
jobs`` / ``repro cancel``), the tests and the benchmarks all talk to the
server over one persistent connection — which is also what makes the
cache-hit throughput benchmark honest (no per-request TCP handshake).
"""

from __future__ import annotations

import http.client
import json
import time


class ServeError(Exception):
    """A non-2xx response from the campaign server."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload
        self.retry_after = float(payload.get("retry_after_s") or 0)


class ServeClient:
    """Thin JSON client over one keep-alive connection.

    ``address`` is ``host:port`` (as printed by ``repro serve`` on startup).
    Retries exactly once on a stale keep-alive connection; every other
    failure surfaces to the caller.
    """

    def __init__(self, address: str, *, timeout: float = 60.0) -> None:
        host, _, port = address.rpartition(":")
        self.host = host or "127.0.0.1"
        self.port = int(port)
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing -------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, method: str, path: str, body: dict | None = None):
        payload = (json.dumps(body).encode("utf-8")
                   if body is not None else None)
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                # Stale keep-alive socket (server restarted or idled us out):
                # reconnect once, then let real failures propagate.
                self.close()
                if attempt == 2:
                    raise
        content_type = response.getheader("Content-Type", "")
        if "json" in content_type:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        else:
            decoded = data.decode("utf-8", errors="replace")
        if response.status >= 400:
            if not isinstance(decoded, dict):
                decoded = {"error": str(decoded)}
            retry_after = response.getheader("Retry-After")
            if retry_after and "retry_after_s" not in decoded:
                decoded["retry_after_s"] = retry_after
            raise ServeError(response.status, decoded)
        return decoded

    # -- API ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")

    def submit(self, *, tenant: str = "default",
               app: str = "jacobi3d-charm", seeds=None, seed_start: int = 0,
               count: int | None = None, config: dict | None = None,
               priority: int | None = None) -> dict:
        body: dict = {"tenant": tenant, "app": app,
                      "config": config or {}}
        if seeds is not None:
            body["seeds"] = [int(s) for s in seeds]
        else:
            body["seed_start"] = int(seed_start)
            body["count"] = int(count if count is not None else 1)
        if priority is not None:
            body["priority"] = int(priority)
        return self._request("POST", "/v1/jobs", body)

    def jobs(self, *, tenant: str | None = None) -> list[dict]:
        path = "/v1/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._request("GET", path)["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def job_metrics(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/metrics")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after "
                    f"{timeout:g}s ({status['cells_pending']} cell(s) "
                    f"pending)")
            time.sleep(poll)
