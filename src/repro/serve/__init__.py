"""Campaign-as-a-service: a multi-tenant sweep server over the store.

The campaign engine turned into a long-running service: ``repro serve``
starts an asyncio HTTP/JSON server that accepts sweep submissions from many
tenants, expands them to the same content-addressed cells ``repro campaign``
uses, and dedupes *across clients* — cells already in the store are cache
hits, cells another tenant is currently computing are shared in flight, and
only genuine misses hit the prioritized work queue (per-tenant quotas +
global bound, surfaced as 429 + Retry-After).

Jobs are durable: submissions with outstanding work are journaled through
the store's job journal and their in-flight cells leave lease records, so a
``kill -9``'d server resumes on restart, counting already-stored cells as
saved work — the service-level mirror of ACR's checkpoint/restart story.

Layout: :mod:`~repro.serve.state` (transport-free scheduling core),
:mod:`~repro.serve.server` (asyncio HTTP front end + worker loop),
:mod:`~repro.serve.client` (stdlib keep-alive client used by the CLI, tests
and benchmarks).  See ``docs/serving.md``.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.server import CampaignServer, serve_forever
from repro.serve.state import (
    DEFAULT_PRIORITY,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_TENANT_QUOTA,
    Cell,
    Job,
    QueueFull,
    QuotaExceeded,
    ServeRejection,
    ServeState,
    UnknownJob,
)

__all__ = [
    "ServeClient",
    "ServeError",
    "CampaignServer",
    "serve_forever",
    "DEFAULT_PRIORITY",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_TENANT_QUOTA",
    "Cell",
    "Job",
    "QueueFull",
    "QuotaExceeded",
    "ServeRejection",
    "ServeState",
    "UnknownJob",
]
