"""AMPI: MPI-style rank programs virtualized on the simulated runtime."""

from repro.ampi.mpi import (
    Allreduce,
    AMPIWorld,
    Barrier,
    Compute,
    MPIDeadlockError,
    RankContext,
    Recv,
    Send,
    run_world,
)

__all__ = [
    "Allreduce",
    "AMPIWorld",
    "Barrier",
    "Compute",
    "MPIDeadlockError",
    "RankContext",
    "Recv",
    "Send",
    "run_world",
]
