"""rMPI-style message-cloning replication — the alternative ACR rejects (§3.1).

"Libraries such as rMPI and P2P-MPI ... provide reliability support by
ensuring that if an MPI rank dies, its corresponding MPI rank in the other
replica performs the communication operations in its place.  This approach
requires the progress of every rank in one replica to be completely
synchronized with the corresponding rank in the other replica ... Such a
fine-grained synchronization approach may hurt application performance,
especially if a dynamic application performs a large number of receives from
unknown sources.  In fact, in such scenarios the progress of corresponding
ranks in the two replicas must be serialized to maintain consistency."

This module implements exactly that protocol on the AMPI layer so the claim
can be measured instead of asserted:

* a **leader** world runs the program with free wildcard matching, reporting
  every ``MPI_ANY_SOURCE`` match it performs;
* a **mirror** world runs the same program in *follow* mode: each wildcard
  receive blocks until the leader's match decision arrives (one cross-replica
  directive message per wildcard receive) — the serialization ACR avoids by
  never synchronizing its replicas outside checkpoints.

The contrast is observable on both axes:

* **consistency** — with different compute jitter per replica, free-running
  replicas of a racy (wildcard-heavy) program genuinely diverge; the
  message-cloning protocol forces identical results;
* **performance** — the mirror pays at least one directive latency per
  wildcard receive, and the run completes when *both* worlds do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.ampi.mpi import AMPIWorld, RankContext
from repro.runtime.des import Simulator
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


@dataclass
class ReplicatedRunResult:
    """Outcome of one replicated (message-cloning) execution."""

    leader_results: list[Any]
    mirror_results: list[Any]
    finish_time: float           # when BOTH replicas completed
    leader_finish_time: float
    directives_sent: int

    @property
    def consistent(self) -> bool:
        return self.leader_results == self.mirror_results

    @property
    def mirror_lag(self) -> float:
        """Extra time the synchronized mirror needed beyond the leader."""
        return self.finish_time - self.leader_finish_time


class MessageCloningReplication:
    """Run one MPI program in two rank-synchronized replicas (rMPI-style)."""

    def __init__(
        self,
        size: int,
        program: Callable[[RankContext], Generator],
        *,
        directive_latency: float = 5e-4,
        latency: float = 5e-6,
        bandwidth: float = 167e6,
        jitter_amplitude: float = 0.3,
        seed: int = 0,
    ):
        """
        Parameters
        ----------
        directive_latency:
            Cross-replica delivery time of one match decision (inter-replica
            traffic crosses the partition bisection, so it is slower than
            intra-replica latency).
        jitter_amplitude:
            Per-replica compute-time perturbation amplitude; nonzero values
            make the two replicas race differently, which is what the
            protocol must survive.
        """
        if directive_latency < 0:
            raise ConfigurationError("directive_latency must be >= 0")
        if not (0 <= jitter_amplitude < 1):
            raise ConfigurationError("jitter_amplitude must be in [0, 1)")
        self.size = size
        self.program = program
        self.directive_latency = directive_latency
        self.latency = latency
        self.bandwidth = bandwidth
        self.jitter_amplitude = jitter_amplitude
        self.seed = seed

    def _jitter(self, which: str) -> Callable[[int, int], float]:
        rng = RngStream(self.seed, f"rmpi/{which}")
        amplitude = self.jitter_amplitude

        def jitter(rank: int, seq: int) -> float:
            # Deterministic per-(replica, rank, seq) factor in [1-a, 1+a].
            h = RngStream(rng.root_seed, f"rmpi/{which}/{rank}/{seq}")
            return 1.0 + amplitude * (2.0 * float(h.uniform()) - 1.0)

        return jitter

    def run(self, *, until: float | None = None) -> ReplicatedRunResult:
        """Execute both replicas under the message-cloning protocol."""
        sim = Simulator()
        directives = {"count": 0}
        mirror: dict[str, AMPIWorld] = {}

        def on_match(rank: int, source: int, tag: int) -> None:
            directives["count"] += 1
            sim.schedule(self.directive_latency,
                         mirror["world"].push_match_directive, rank, source, tag)

        leader = AMPIWorld(sim, self.size, self.program,
                           latency=self.latency, bandwidth=self.bandwidth,
                           wildcard_mode="free",
                           compute_jitter=self._jitter("leader"),
                           on_wildcard_match=on_match)
        mirror["world"] = AMPIWorld(sim, self.size, self.program,
                                    latency=self.latency,
                                    bandwidth=self.bandwidth,
                                    wildcard_mode="follow",
                                    compute_jitter=self._jitter("mirror"))
        leader.start()
        mirror["world"].start()
        leader_done = {"t": None}

        # Drain the simulation, noting when the leader finished.
        while True:
            next_t = sim.peek_time()
            if next_t is None or (until is not None and next_t > until):
                break
            sim.run(until=next_t)
            if leader_done["t"] is None and all(
                    s.finished for s in leader.ranks):
                leader_done["t"] = sim.now
        finish = sim.now
        return ReplicatedRunResult(
            leader_results=leader.results(),
            mirror_results=mirror["world"].results(),
            finish_time=finish,
            leader_finish_time=leader_done["t"] if leader_done["t"] is not None
            else finish,
            directives_sent=directives["count"],
        )

    def run_independent(self, *, until: float | None = None
                        ) -> ReplicatedRunResult:
        """The ACR-style counterfactual: two replicas, zero coordination.

        Both replicas match wildcards freely and never exchange directives —
        fast, but racy programs may produce different results (which is why
        ACR pairs independence with checkpoint *comparison* instead of
        message-order enforcement).
        """
        sim = Simulator()
        a = AMPIWorld(sim, self.size, self.program, latency=self.latency,
                      bandwidth=self.bandwidth, wildcard_mode="free",
                      compute_jitter=self._jitter("leader"))
        b = AMPIWorld(sim, self.size, self.program, latency=self.latency,
                      bandwidth=self.bandwidth, wildcard_mode="free",
                      compute_jitter=self._jitter("mirror"))
        a.start()
        b.start()
        a_done = {"t": None}
        while True:
            next_t = sim.peek_time()
            if next_t is None or (until is not None and next_t > until):
                break
            sim.run(until=next_t)
            if a_done["t"] is None and all(s.finished for s in a.ranks):
                a_done["t"] = sim.now
        return ReplicatedRunResult(
            leader_results=a.results(),
            mirror_results=b.results(),
            finish_time=sim.now,
            leader_finish_time=a_done["t"] if a_done["t"] is not None else sim.now,
            directives_sent=0,
        )
