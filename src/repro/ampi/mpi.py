"""AMPI — MPI-style virtualized ranks on the simulated runtime (paper §6.1).

"The MPI based programs were executed using AMPI, which is Charm++'s
interface for MPI programs."  This module provides the same idea for the
reproduction: *rank programs* written against a small MPI vocabulary run as
virtualized entities on the discrete-event simulator, so the MPI-flavoured
mini-apps (Jacobi3D-AMPI, HPCCG, miniMD) execute through the same machinery
as the Charm++-style tasks.

Rank programs are Python generators that ``yield`` operations::

    def program(rank: RankContext):
        token = rank.rank
        for _ in range(10):
            yield Send((rank.rank + 1) % rank.size, token)
            token = yield Recv((rank.rank - 1) % rank.size)
            yield Compute(0.01)

Blocking semantics (send/recv matching, collectives as synchronizing trees)
are honoured in simulated time; the engine detects global quiescence with
undelivered matches (deadlock) and reports it instead of hanging.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.runtime.des import Simulator
from repro.util.errors import ACRError, ConfigurationError


class MPIDeadlockError(ACRError):
    """All ranks are blocked and no message can unblock them."""


# -- operations a rank program may yield -------------------------------------------


@dataclass(frozen=True)
class Send:
    """Blocking standard-mode send (completes when matched and buffered)."""

    dest: int
    data: Any
    tag: int = 0
    nbytes: int = 1024


@dataclass(frozen=True)
class Recv:
    """Blocking receive; the yield evaluates to the received data."""

    source: int | None = None   # None = MPI_ANY_SOURCE
    tag: int | None = None      # None = MPI_ANY_TAG


@dataclass(frozen=True)
class Compute:
    """Advance simulated time doing local work."""

    seconds: float


@dataclass(frozen=True)
class Barrier:
    """Synchronize all ranks."""


@dataclass(frozen=True)
class Allreduce:
    """Combine one value from every rank; the yield evaluates to the result."""

    value: Any
    op: Callable[[Any, Any], Any] = lambda a, b: a + b


@dataclass(frozen=True)
class _Envelope:
    source: int
    tag: int
    data: Any


class RankContext:
    """What a rank program knows about itself."""

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size


class _RankState:
    def __init__(self, rank: int, gen: Generator):
        self.rank = rank
        self.gen = gen
        self.mailbox: deque[_Envelope] = deque()
        self.blocked_on: Any = None
        self.finished = False
        self.result: Any = None


class AMPIWorld:
    """An MPI communicator of virtualized ranks on one simulator.

    ``wildcard_mode`` controls MPI_ANY_SOURCE matching: ``"free"`` (default)
    matches the first compatible envelope, while ``"follow"`` only matches
    according to directives pushed via :meth:`push_match_directive` — the
    hook replicated-execution layers (rMPI-style, §3.1 of the paper) use to
    force both replicas to observe identical message orders.

    ``compute_jitter(rank, seq) -> factor`` perturbs Compute durations, which
    lets experiments create genuinely different message races between two
    replicas of the same program.
    """

    def __init__(
        self,
        sim: Simulator,
        size: int,
        program: Callable[[RankContext], Generator],
        *,
        latency: float = 5e-6,
        bandwidth: float = 167e6,
        wildcard_mode: str = "free",
        compute_jitter: Callable[[int, int], float] | None = None,
        on_wildcard_match: Callable[[int, int, int], None] | None = None,
    ):
        if size < 1:
            raise ConfigurationError("communicator size must be >= 1")
        if wildcard_mode not in ("free", "follow"):
            raise ConfigurationError(f"unknown wildcard_mode {wildcard_mode!r}")
        self.sim = sim
        self.size = size
        self.latency = latency
        self.bandwidth = bandwidth
        self.wildcard_mode = wildcard_mode
        self.compute_jitter = compute_jitter
        #: Called as (rank, matched_source, matched_tag) after every wildcard
        #: match in "free" mode - the leader side of an rMPI-style protocol.
        self.on_wildcard_match = on_wildcard_match
        self.ranks = [
            _RankState(r, program(RankContext(r, size))) for r in range(size)
        ]
        self._directives: dict[int, deque[tuple[int, int]]] = {
            r: deque() for r in range(size)
        }
        self._compute_seq = [0] * size
        self._barrier_waiting: set[int] = set()
        self._allreduce_values: dict[int, Any] = {}
        self._allreduce_op: Callable[[Any, Any], Any] | None = None
        self._live = size
        self.deadlocked = False

    # -- driving ------------------------------------------------------------------
    def start(self) -> None:
        for state in self.ranks:
            self.sim.schedule(0.0, self._step, state, None)

    def run(self, until: float | None = None) -> None:
        self.start()
        self.sim.run(until=until)
        if self._live > 0 and not self.deadlocked:
            blocked = [s.rank for s in self.ranks if not s.finished]
            if blocked:
                self.deadlocked = True
                raise MPIDeadlockError(f"ranks {blocked} blocked at quiescence")

    def results(self) -> list[Any]:
        return [s.result for s in self.ranks]

    # -- engine ---------------------------------------------------------------------
    def _step(self, state: _RankState, send_value: Any) -> None:
        if state.finished:
            return
        try:
            op = state.gen.send(send_value)
        except StopIteration as stop:
            state.finished = True
            state.result = stop.value
            self._live -= 1
            return
        self._dispatch(state, op)

    def _dispatch(self, state: _RankState, op: Any) -> None:
        if isinstance(op, Compute):
            if op.seconds < 0:
                raise ConfigurationError("compute time must be >= 0")
            seconds = op.seconds
            if self.compute_jitter is not None:
                seq = self._compute_seq[state.rank]
                self._compute_seq[state.rank] += 1
                seconds *= self.compute_jitter(state.rank, seq)
            self.sim.schedule(seconds, self._step, state, None)
        elif isinstance(op, Send):
            if not (0 <= op.dest < self.size):
                raise ConfigurationError(f"bad destination {op.dest}")
            delay = self.latency + op.nbytes / self.bandwidth
            self.sim.schedule(delay, self._deliver, op.dest,
                              _Envelope(state.rank, op.tag, op.data))
            # Standard-mode send with buffering: the sender proceeds after
            # the injection overhead.
            self.sim.schedule(self.latency, self._step, state, None)
        elif isinstance(op, Recv):
            state.blocked_on = op
            self._try_receive(state)
        elif isinstance(op, Barrier):
            self._barrier_waiting.add(state.rank)
            state.blocked_on = op
            if len(self._barrier_waiting) == self.size:
                waiting, self._barrier_waiting = self._barrier_waiting, set()
                for r in waiting:
                    st = self.ranks[r]
                    st.blocked_on = None
                    self.sim.schedule(self.latency, self._step, st, None)
        elif isinstance(op, Allreduce):
            if self._allreduce_op is None:
                self._allreduce_op = op.op
            self._allreduce_values[state.rank] = op.value
            state.blocked_on = op
            if len(self._allreduce_values) == self.size:
                acc = None
                for r in range(self.size):
                    v = self._allreduce_values[r]
                    acc = v if acc is None else self._allreduce_op(acc, v)
                values, self._allreduce_values = self._allreduce_values, {}
                self._allreduce_op = None
                # A tree allreduce costs ~2 log2(size) latency stages.
                import math

                stages = 2 * max(1, math.ceil(math.log2(max(self.size, 2))))
                for r in values:
                    st = self.ranks[r]
                    st.blocked_on = None
                    self.sim.schedule(stages * self.latency, self._step, st, acc)
        else:
            raise ConfigurationError(f"unknown MPI operation {op!r}")

    def _deliver(self, dest: int, env: _Envelope) -> None:
        state = self.ranks[dest]
        state.mailbox.append(env)
        if isinstance(state.blocked_on, Recv):
            self._try_receive(state)

    def push_match_directive(self, rank: int, source: int, tag: int) -> None:
        """Tell a "follow"-mode rank which envelope its next wildcard
        receive must match (the mirror side of an rMPI-style protocol)."""
        self._directives[rank].append((source, tag))
        state = self.ranks[rank]
        if isinstance(state.blocked_on, Recv):
            self._try_receive(state)

    def _try_receive(self, state: _RankState) -> None:
        want = state.blocked_on
        if not isinstance(want, Recv):
            return
        is_wildcard = want.source is None
        need_source, need_tag = want.source, want.tag
        if is_wildcard and self.wildcard_mode == "follow":
            queue = self._directives[state.rank]
            if not queue:
                return  # must wait for the leader's match decision
            need_source, need_tag = queue[0]
        for i, env in enumerate(state.mailbox):
            if need_source is not None and env.source != need_source:
                continue
            if need_tag is not None and env.tag != need_tag:
                continue
            if is_wildcard and self.wildcard_mode == "follow":
                self._directives[state.rank].popleft()
            del state.mailbox[i]
            state.blocked_on = None
            if is_wildcard and self.wildcard_mode == "free"                     and self.on_wildcard_match is not None:
                self.on_wildcard_match(state.rank, env.source, env.tag)
            self.sim.schedule(0.0, self._step, state, env.data)
            return


def run_world(
    size: int,
    program: Callable[[RankContext], Generator],
    *,
    until: float | None = None,
    latency: float = 5e-6,
    bandwidth: float = 167e6,
) -> list[Any]:
    """Convenience: run one communicator to completion, return rank results."""
    sim = Simulator()
    world = AMPIWorld(sim, size, program, latency=latency, bandwidth=bandwidth)
    world.run(until=until)
    return world.results()
