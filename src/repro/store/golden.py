"""Golden summary digests: the Figs. 8-11 benchmark outputs as CI artifacts.

``golden/`` holds one committed JSON file per figure dataset: the full rows
plus a canonical SHA-256 digest over them.  CI re-derives the rows from the
current source tree and diffs; any drift in the evaluation's numbers fails
the gate with a row-level report instead of slipping silently into a plot.

The covered datasets are the analytical ones (cost model + Section-5 model),
so they are deterministic functions of the source tree — no seeds, no
simulation time.

Workflow::

    python -m repro golden update   # after an intentional change, re-commit
    python -m repro golden check    # what CI runs
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.harness.figures import fig8_data, fig9_fig11_data, fig10_data
from repro.util.hashing import canonical_digest, to_jsonable

#: Default directory for committed digests (repo root / golden).
DEFAULT_GOLDEN_DIR = "golden"

#: Figure name -> zero-argument generator of its dataclass rows.
GOLDEN_FIGURES: dict[str, Callable[[], list]] = {
    "fig8": fig8_data,
    "fig9_fig11": fig9_fig11_data,
    "fig10": fig10_data,
}


def compute_figure(name: str) -> dict:
    """Rows + canonical digest for one golden figure dataset."""
    rows = [to_jsonable(row) for row in GOLDEN_FIGURES[name]()]
    return {
        "figure": name,
        "digest": canonical_digest(rows),
        "row_count": len(rows),
        "rows": rows,
    }


def golden_path(directory: str | Path, name: str) -> Path:
    return Path(directory) / f"{name}.json"


def write_golden(directory: str | Path = DEFAULT_GOLDEN_DIR) -> list[Path]:
    """(Re)derive every golden file; returns the paths written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in GOLDEN_FIGURES:
        path = golden_path(directory, name)
        path.write_text(
            json.dumps(compute_figure(name), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written


def _row_diffs(expected: list, actual: list, limit: int = 5) -> list[str]:
    """Human-readable first differences between two row lists."""
    diffs = []
    if len(expected) != len(actual):
        diffs.append(f"row count {len(actual)} != committed {len(expected)}")
    for i, (exp, act) in enumerate(zip(expected, actual)):
        if exp == act:
            continue
        if isinstance(exp, dict) and isinstance(act, dict):
            changed = sorted(
                k for k in set(exp) | set(act) if exp.get(k) != act.get(k)
            )
            detail = ", ".join(
                f"{k}: {exp.get(k)!r} -> {act.get(k)!r}" for k in changed
            )
        else:
            detail = f"{exp!r} -> {act!r}"
        diffs.append(f"row {i}: {detail}")
        if len(diffs) >= limit:
            diffs.append("... (further diffs suppressed)")
            break
    return diffs


def check_golden(directory: str | Path = DEFAULT_GOLDEN_DIR) -> list[str]:
    """Problems between committed digests and the current tree (empty = pass)."""
    directory = Path(directory)
    problems = []
    for name in GOLDEN_FIGURES:
        path = golden_path(directory, name)
        if not path.is_file():
            problems.append(
                f"{name}: missing {path} (run `python -m repro golden update`)"
            )
            continue
        try:
            committed = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            problems.append(f"{name}: unreadable {path} ({err})")
            continue
        current = compute_figure(name)
        if committed.get("digest") == current["digest"]:
            continue
        problems.append(
            f"{name}: digest drift {committed.get('digest', '?')[:12]}... -> "
            f"{current['digest'][:12]}..."
        )
        problems.extend(
            f"{name}: {d}"
            for d in _row_diffs(committed.get("rows") or [], current["rows"])
        )
    return problems
