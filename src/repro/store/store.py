"""The content-addressed result store.

Layout under a cache root (default ``.repro-cache/`` or ``$REPRO_CACHE_DIR``)::

    objects/<aa>/<key>.json   # one record per cached cell, content-addressed
    index.jsonl               # append-only journal of completed writes

Each object file records its own key material, so the store is
self-describing: ``verify`` re-derives every address from the stored
material, and ``gc`` sweeps cells computed by a different source tree.
Writes are atomic (tmp file + rename) and journaled as one JSONL line per
completed cell — an interrupted campaign leaves only whole records behind,
which is exactly what makes sweeps resumable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.store.keys import code_fingerprint, material_key

#: On-disk record format version; bump on incompatible layout changes.
STORE_FORMAT = 1

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache root (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` if set, else ``.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def fsync_dir(directory: Path) -> None:
    """Sync a directory entry; tolerated as best-effort (some filesystems
    refuse O_RDONLY fsync on directories)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: Path, payload: dict, *, fsync: bool = True) -> None:
    """Crash-consistent JSON write: same-directory temp file, fsynced before
    ``os.replace``, directory entry synced after.

    The store's object-write protocol, factored out so every durable record
    in the cache root (cells, job records, lease records) lands the same way.
    ``fsync=False`` skips both syncs for records whose loss a crash may
    tolerate (they still never appear torn — the rename is still atomic).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    if fsync:
        fsync_dir(path.parent)


def append_journal_line(path: Path, record: dict, *, fsync: bool = True) -> None:
    """Append one JSONL record as a single ``os.write`` of the encoded line.

    Appends of one small buffer land atomically, so a crash can tear at most
    the final line — which :func:`read_journal_lines` tolerates.  With
    ``fsync`` (the default) the line is durable before this returns;
    ``fsync=False`` is for high-rate journals of reconstructible events.
    """
    line = json.dumps(record, sort_keys=True)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = (line + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, payload)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)


def read_journal_lines(path: Path) -> tuple[list[dict], list[str]]:
    """Decoded JSONL records plus any problems found.

    A torn trailing line (interrupted append) is reported, not raised; whole
    lines before it are still returned.
    """
    entries: list[dict] = []
    problems: list[str] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
    except OSError:
        return entries, problems
    # A well-formed journal ends with "\n", so the final split element is
    # empty; anything else is the torn tail of an interrupted append.
    for i, line in enumerate(lines):
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            where = ("torn trailing line" if i == len(lines) - 1
                     else f"undecodable line {i + 1}")
            problems.append(f"{path.name}: {where} ({line[:40]!r}...)")
            continue
        entries.append(record)
    return entries, problems


@dataclass(frozen=True)
class StoreEntry:
    """One cached cell, as listed by :meth:`ResultStore.entries`."""

    key: str
    kind: str
    app: str
    seed: int | None
    code: str
    nbytes: int
    path: Path

    @property
    def stale(self) -> bool:
        """True when this cell was computed by a different source tree."""
        return self.code != code_fingerprint()


@dataclass
class GcResult:
    removed: int = 0
    kept: int = 0
    bytes_freed: int = 0
    removed_keys: list[str] = field(default_factory=list)
    #: Orphaned ``*.tmp.*`` files swept up (interrupted writes).
    tmp_removed: int = 0


class ResultStore:
    """Content-addressed persistence for campaign cells."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.objects_dir = self.root / "objects"
        self.index_path = self.root / "index.jsonl"

    # -- addressing -----------------------------------------------------------
    def object_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    # -- write ----------------------------------------------------------------
    def put(self, material: Mapping[str, Any], payload: dict,
            *, kind: str) -> str:
        """Persist one cell atomically; returns its content address.

        The record lands via a same-directory temp file that is fsynced
        *before* ``os.replace`` (otherwise a crash after the rename can leave
        the final name pointing at unwritten data), the directory entry is
        synced after it, and only then is one journal line appended to
        ``index.jsonl``.
        """
        key = material_key(material)
        path = self.object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "format": STORE_FORMAT,
            "key": key,
            "kind": kind,
            "material": dict(material),
            "payload": payload,
        }
        atomic_write_json(path, record)
        self._journal(key, kind, material)
        return key

    def _journal(self, key: str, kind: str, material: Mapping[str, Any]) -> None:
        append_journal_line(
            self.index_path,
            {
                "key": key,
                "kind": kind,
                "app": material.get("app"),
                "seed": material.get("seed"),
            },
        )

    def journal_entries(self) -> tuple[list[dict], list[str]]:
        """Decoded journal lines plus any problems found.

        A torn trailing line (interrupted append) is reported, not raised;
        whole lines before it are still returned.
        """
        return read_journal_lines(self.index_path)

    # -- read -----------------------------------------------------------------
    def get(self, material: Mapping[str, Any]) -> dict | None:
        """The payload cached for this key material, or None (miss)."""
        record = self._load_record(self.object_path(material_key(material)),
                                   quarantine=True)
        return None if record is None else record.get("payload")

    def has(self, material: Mapping[str, Any]) -> bool:
        return self.object_path(material_key(material)).is_file()

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def add_quarantine_artifact(self, name: str, payload: dict) -> Path:
        """Write a forensic artifact (e.g. a flight-recorder dump) into
        ``quarantine/`` and return its path.

        Quarantine is the store's "needs a human" shelf: undecodable objects
        are moved here, and chaos campaigns drop their flight recordings for
        failing seeds alongside them.  Artifacts are atomically replaced so a
        crashed writer never leaves a torn file, and ``verify`` reports them
        informationally instead of flagging them as corruption.
        """
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        path = self.quarantine_dir / name
        tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)
        return path

    def _quarantine(self, path: Path) -> None:
        """Move an undecodable object aside for post-mortem instead of leaving
        it to shadow its address (a re-run would hit the corrupt file again
        and read a miss forever)."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            pass

    def _load_record(self, path: Path, *, quarantine: bool = False) -> dict | None:
        """Load one object file; a missing or corrupt record reads as a miss.

        With ``quarantine=True`` an undecodable file is moved to
        ``quarantine/`` so the address becomes writable again (``gc`` passes
        False — it reclaims corrupt files itself).
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except OSError:
            return None
        except json.JSONDecodeError:
            if quarantine:
                self._quarantine(path)
            return None
        if not isinstance(record, dict) or record.get("format") != STORE_FORMAT:
            return None
        return record

    def _object_files(self) -> Iterator[Path]:
        if not self.objects_dir.is_dir():
            return
        yield from sorted(self.objects_dir.glob("*/*.json"))

    def entries(self) -> list[StoreEntry]:
        """Every readable cell in the store (corrupt files are skipped;
        ``verify`` reports them)."""
        out = []
        for path in self._object_files():
            record = self._load_record(path, quarantine=True)
            if record is None:
                continue
            material = record.get("material") or {}
            seed = material.get("seed")
            out.append(
                StoreEntry(
                    key=str(record.get("key", path.stem)),
                    kind=str(record.get("kind", "?")),
                    app=str(material.get("app", "?")),
                    seed=int(seed) if seed is not None else None,
                    code=str(material.get("code", "")),
                    nbytes=path.stat().st_size,
                    path=path,
                )
            )
        return out

    # -- maintenance ----------------------------------------------------------
    def gc(self, *, wipe: bool = False) -> GcResult:
        """Remove stale cells (different code fingerprint); ``wipe`` removes
        everything.  Corrupt object files and orphaned temp files from
        interrupted writes are always removed."""
        result = GcResult()
        current = code_fingerprint()
        for path in list(self._object_files()):
            record = self._load_record(path)
            if record is None:
                stale = True  # corrupt: reclaim it
            else:
                material = record.get("material") or {}
                stale = wipe or material.get("code") != current
            if stale:
                result.removed += 1
                result.bytes_freed += path.stat().st_size
                result.removed_keys.append(path.stem)
                path.unlink()
            else:
                result.kept += 1
        if self.objects_dir.is_dir():
            for tmp in sorted(self.objects_dir.glob("*/*.tmp.*")):
                result.tmp_removed += 1
                result.bytes_freed += tmp.stat().st_size
                tmp.unlink()
        if wipe and self.index_path.is_file():
            self.index_path.unlink()
        return result

    def verify(self) -> list[str]:
        """Integrity problems, empty when the store is sound.

        Checks every object parses, carries the current format, sits at the
        address its key claims, and that the key is in fact the canonical
        digest of the stored material; also flags orphaned temp files,
        quarantined objects, and torn journal lines.
        """
        problems = []
        if self.objects_dir.is_dir():
            for tmp in sorted(self.objects_dir.glob("*/*.tmp.*")):
                problems.append(
                    f"{tmp.name}: orphaned temp file (interrupted write)")
        if self.quarantine_dir.is_dir():
            for q in sorted(self.quarantine_dir.iterdir()):
                # Flight-recorder dumps are deliberate forensic artifacts
                # (add_quarantine_artifact), not corruption.
                if q.name.startswith("flight-"):
                    continue
                problems.append(
                    f"quarantine/{q.name}: undecodable object set aside")
        _, journal_problems = self.journal_entries()
        problems.extend(journal_problems)
        for path in self._object_files():
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    record = json.load(fh)
            except (OSError, json.JSONDecodeError) as err:
                problems.append(f"{path.name}: unreadable ({err})")
                continue
            if record.get("format") != STORE_FORMAT:
                problems.append(
                    f"{path.name}: format {record.get('format')!r} "
                    f"!= {STORE_FORMAT}"
                )
                continue
            key = record.get("key")
            if key != path.stem:
                problems.append(f"{path.name}: key field {key!r} != filename")
                continue
            material = record.get("material")
            if not isinstance(material, dict):
                problems.append(f"{path.name}: missing key material")
                continue
            derived = material_key(material)
            if derived != key:
                problems.append(
                    f"{path.name}: material hashes to {derived[:12]}..., "
                    f"not the stored key"
                )
        return problems
