"""In-flight cell leases and the durable job journal for ``repro serve``.

The campaign server adds two kinds of durable state next to the cached
cells, both living under the same cache root and written with the store's
own crash-consistency protocols (:func:`~repro.store.store.atomic_write_json`
and :func:`~repro.store.store.append_journal_line`)::

    leases/<key>.json    # one record per cell currently being computed
    jobs/<job-id>.json   # one record per job with work still outstanding
    jobs.jsonl           # append-only journal of job lifecycle events

**Leases** mark work in flight so a second client requesting an overlapping
sweep attaches to the running computation instead of starting its own.  They
are advisory within one server process (the in-memory cell table is
authoritative) but durable across a crash: a restarted server finds the
stale leases of its predecessor, sweeps them, and re-enqueues the cells —
exactly the protocol's "dead node's work is re-executed from the last
checkpoint" move, applied to the service itself.

**Job records** are written only for jobs that still owe work (a submission
served entirely from cache completes in-response and needs no durability —
the client already has the answer and every cell is in the store).  A killed
server therefore resumes precisely the jobs that were incomplete, validates
each recorded cell against the store (work finished before the kill is
*saved*, shelf-style), and recomputes only the rest.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.store.store import (
    append_journal_line,
    atomic_write_json,
    read_journal_lines,
)

#: On-disk job record format; bump on incompatible changes.
JOB_FORMAT = "repro-job/1"

#: On-disk lease record format.
LEASE_FORMAT = "repro-lease/1"

#: Job lifecycle states.  ``queued`` and ``running`` are resumable; the rest
#: are terminal.
JOB_ACTIVE_STATES = ("queued", "running")
JOB_TERMINAL_STATES = ("done", "failed", "cancelled")


class LeaseRegistry:
    """Durable in-flight markers, one file per cell being computed."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.dir = Path(root) / "leases"

    def path(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    def acquire(self, key: str, *, jobs: list[str], tenant: str) -> None:
        """Record that this process is computing ``key``.

        Lease loss is tolerable (the cell is recomputed), so the write skips
        fsync — it must merely never appear torn, which the atomic rename
        guarantees.
        """
        atomic_write_json(
            self.path(key),
            {
                "format": LEASE_FORMAT,
                "key": key,
                "pid": os.getpid(),
                "jobs": sorted(jobs),
                "tenant": tenant,
                "acquired": time.time(),
            },
            fsync=False,
        )

    def release(self, key: str) -> None:
        try:
            self.path(key).unlink()
        except OSError:
            pass

    def active(self) -> dict[str, dict]:
        """Every readable lease record, keyed by cell key."""
        import json

        out: dict[str, dict] = {}
        if not self.dir.is_dir():
            return out
        for path in sorted(self.dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if record.get("format") == LEASE_FORMAT:
                out[str(record.get("key", path.stem))] = record
        return out

    def sweep(self) -> list[str]:
        """Remove every lease (stale after a crash); returns swept keys."""
        swept = []
        for key in list(self.active()):
            swept.append(key)
            self.release(key)
        return swept


class JobJournal:
    """Durable job records plus an append-only lifecycle journal."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.dir = self.root / "jobs"
        self.journal_path = self.root / "jobs.jsonl"

    def path(self, job_id: str) -> Path:
        return self.dir / f"{job_id}.json"

    # -- write ----------------------------------------------------------------
    def write_job(self, payload: dict, *, durable: bool = True) -> None:
        """Persist one job record atomically.

        ``durable`` controls the fsync: jobs with outstanding work must
        survive a kill -9, while a job that completed within its submit
        request may ride on the next natural flush.
        """
        record = dict(payload)
        record["format"] = JOB_FORMAT
        atomic_write_json(self.path(str(record["job_id"])), record,
                          fsync=durable)

    def append_event(self, event: dict, *, durable: bool = True) -> None:
        """One lifecycle line (submitted / done / cancelled / ...)."""
        append_journal_line(self.journal_path, event, fsync=durable)

    # -- read -----------------------------------------------------------------
    def load_jobs(self) -> dict[str, dict]:
        """Every readable job record, keyed by job id."""
        import json

        out: dict[str, dict] = {}
        if not self.dir.is_dir():
            return out
        for path in sorted(self.dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if record.get("format") == JOB_FORMAT and "job_id" in record:
                out[str(record["job_id"])] = record
        return out

    def journal_entries(self) -> tuple[list[dict], list[str]]:
        """Decoded lifecycle journal plus any problems (torn tail, etc.)."""
        return read_journal_lines(self.journal_path)
