"""Cache-key material for campaign cells.

A *cell* is the atomic unit of cached work: one (experiment config, app,
seed) simulation, or one chaos (seed, app) monitored run.  Each cell is
addressed by the SHA-256 digest of its canonical key material
(:func:`repro.util.hashing.canonical_digest`), which always includes a
fingerprint of the source tree — results computed by a different version of
the simulator never alias, and ``repro store gc`` can sweep them.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping

from repro.util.hashing import canonical_digest, to_jsonable

#: Record kinds the store distinguishes (one per cell type).
KIND_RUN_REPORT = "run-report"
KIND_CHAOS_OUTCOME = "chaos-outcome"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (paths + contents).

    Computed once per process; any edit under ``src/repro`` changes it and
    therefore invalidates every cached cell.
    """
    import repro
    from repro.util.hashing import digest_tree

    return digest_tree(Path(repro.__file__).parent)


def experiment_cell_material(
    app: str, seed: int, experiment_kwargs: Mapping[str, Any]
) -> dict:
    """Key material for one ``run_experiment_report(app, seed, kwargs)`` cell."""
    return {
        "kind": KIND_RUN_REPORT,
        "app": str(app),
        "seed": int(seed),
        "config": to_jsonable(dict(experiment_kwargs)),
        "code": code_fingerprint(),
    }


def chaos_cell_material(seed: int, app: str) -> dict:
    """Key material for one fuzz-and-run chaos cell.

    The whole schedule (configuration axes and fault plan) is a deterministic
    function of ``(seed, app)``, so those two values plus the code
    fingerprint pin the outcome completely.
    """
    return {
        "kind": KIND_CHAOS_OUTCOME,
        "app": str(app),
        "seed": int(seed),
        "code": code_fingerprint(),
    }


def material_key(material: Mapping[str, Any]) -> str:
    """The content address (SHA-256 hex) of a cell's key material."""
    return canonical_digest(dict(material))
