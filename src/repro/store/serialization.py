"""Lossless JSON codecs for cached results.

The store persists three payload shapes: :class:`~repro.core.framework.RunReport`
(experiment campaigns), :class:`~repro.chaos.runner.ChaosOutcome` (chaos
campaigns), and the metrics snapshots both may carry.  Round-trips are exact
— ``decode(encode(x))`` reproduces every field bit-for-bit, including numpy
digest arrays (serialized as dtype + shape + hex bytes) and float statistics
(JSON's ``repr`` round-trip is exact for finite floats) — because a resumed
campaign must aggregate to a summary bitwise-identical to an uninterrupted
one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.events import Timeline, TimelineEvent, TimelineKind
from repro.core.framework import RunReport
from repro.obs.export import sanitize_snapshot
from repro.util.hashing import to_jsonable

if TYPE_CHECKING:  # imported lazily below to avoid a package import cycle
    from repro.chaos.runner import ChaosOutcome

#: Payload format version; bump on any incompatible codec change.
PAYLOAD_FORMAT = 1


def encode_array(array: np.ndarray) -> dict:
    """Exact ndarray codec: dtype + shape + raw bytes (hex)."""
    contiguous = np.ascontiguousarray(array)
    return {
        "dtype": str(contiguous.dtype),
        "shape": list(contiguous.shape),
        "data": contiguous.tobytes().hex(),
    }


def decode_array(payload: dict) -> np.ndarray:
    data = bytes.fromhex(payload["data"])
    array = np.frombuffer(data, dtype=payload["dtype"])
    return array.reshape(payload["shape"]).copy()


def encode_timeline(timeline: Timeline) -> list[dict]:
    return [
        {"time": e.time, "kind": str(e.kind), "detail": to_jsonable(e.detail)}
        for e in timeline.events
    ]


def decode_timeline(rows: list[dict]) -> Timeline:
    timeline = Timeline()
    for row in rows:
        # Append directly: a reconstructed timeline has no live subscribers
        # and must not re-fire observer hooks.
        timeline.events.append(
            TimelineEvent(
                time=float(row["time"]),
                kind=TimelineKind(row["kind"]),
                detail=dict(row["detail"]),
            )
        )
    return timeline


def report_to_dict(report: RunReport) -> dict:
    """Encode a :class:`RunReport` as a plain JSON-serializable dict."""
    return {
        "format": PAYLOAD_FORMAT,
        "final_time": report.final_time,
        "completed": report.completed,
        "aborted_reason": report.aborted_reason,
        "iterations_completed": report.iterations_completed,
        "checkpoints_completed": report.checkpoints_completed,
        "sdc_injected": report.sdc_injected,
        "sdc_detected": report.sdc_detected,
        "hard_injected": report.hard_injected,
        "hard_detected": report.hard_detected,
        "rollbacks": report.rollbacks,
        "prediction_alarms": report.prediction_alarms,
        "recoveries": dict(report.recoveries),
        "spare_nodes_used": report.spare_nodes_used,
        "checkpoint_time": report.checkpoint_time,
        "checkpoint_blocking_time": report.checkpoint_blocking_time,
        "recovery_time": report.recovery_time,
        "peak_checkpoint_memory": report.peak_checkpoint_memory,
        "rework_iterations": report.rework_iterations,
        "digests": {
            str(rank): encode_array(digest)
            for rank, digest in report.digests.items()
        },
        "reference_digest": (
            None
            if report.reference_digest is None
            else encode_array(report.reference_digest)
        ),
        "result_correct": report.result_correct,
        "timeline": encode_timeline(report.timeline),
        "interval_history": [[t, v] for t, v in report.interval_history],
        "phase_times": dict(report.phase_times),
        "metrics_snapshot": sanitize_snapshot(report.metrics_snapshot),
        "storage_counters": dict(report.storage_counters),
        "series": report.series,
    }


def report_from_dict(payload: dict) -> RunReport:
    """Reconstruct a :class:`RunReport` encoded by :func:`report_to_dict`."""
    fmt = payload.get("format")
    if fmt != PAYLOAD_FORMAT:
        raise ValueError(f"unsupported run-report payload format {fmt!r}")
    return RunReport(
        final_time=float(payload["final_time"]),
        completed=bool(payload["completed"]),
        aborted_reason=payload["aborted_reason"],
        iterations_completed=int(payload["iterations_completed"]),
        checkpoints_completed=int(payload["checkpoints_completed"]),
        sdc_injected=int(payload["sdc_injected"]),
        sdc_detected=int(payload["sdc_detected"]),
        hard_injected=int(payload["hard_injected"]),
        hard_detected=int(payload["hard_detected"]),
        rollbacks=int(payload["rollbacks"]),
        prediction_alarms=int(payload["prediction_alarms"]),
        recoveries={str(k): int(v) for k, v in payload["recoveries"].items()},
        spare_nodes_used=int(payload["spare_nodes_used"]),
        checkpoint_time=float(payload["checkpoint_time"]),
        checkpoint_blocking_time=float(payload["checkpoint_blocking_time"]),
        recovery_time=float(payload["recovery_time"]),
        peak_checkpoint_memory=int(payload["peak_checkpoint_memory"]),
        rework_iterations=int(payload["rework_iterations"]),
        digests={
            int(rank): decode_array(encoded)
            for rank, encoded in payload["digests"].items()
        },
        reference_digest=(
            None
            if payload["reference_digest"] is None
            else decode_array(payload["reference_digest"])
        ),
        result_correct=payload["result_correct"],
        timeline=decode_timeline(payload["timeline"]),
        interval_history=[(float(t), float(v))
                          for t, v in payload["interval_history"]],
        phase_times={str(k): float(v)
                     for k, v in payload["phase_times"].items()},
        metrics_snapshot=payload["metrics_snapshot"],
        # .get: absent in payloads written before the durable tiers existed.
        storage_counters={str(k): float(v)
                          for k, v in (payload.get("storage_counters")
                                       or {}).items()},
        # .get: absent in payloads written before streaming telemetry.
        series=payload.get("series"),
    )


def outcome_to_dict(outcome: ChaosOutcome) -> dict:
    """Encode a :class:`ChaosOutcome` (already picklable and JSON-shaped)."""
    return {
        "format": PAYLOAD_FORMAT,
        "seed": outcome.seed,
        "ok": outcome.ok,
        "invariant": outcome.invariant,
        "violation": outcome.violation,
        "completed": outcome.completed,
        "aborted_reason": outcome.aborted_reason,
        "final_time": outcome.final_time,
        "checkpoints": outcome.checkpoints,
        "rollbacks": outcome.rollbacks,
        "hard_injected": outcome.hard_injected,
        "hard_detected": outcome.hard_detected,
        "sdc_injected": outcome.sdc_injected,
        "sdc_detected": outcome.sdc_detected,
        "recoveries": dict(outcome.recoveries),
        "checks_performed": outcome.checks_performed,
        "fingerprint": outcome.fingerprint,
        "schedule": to_jsonable(outcome.schedule),
        "metrics": sanitize_snapshot(outcome.metrics) or {},
        "flight_path": outcome.flight_path,
    }


def outcome_from_dict(payload: dict) -> ChaosOutcome:
    # Lazy: repro.chaos pulls in the campaign engine, which imports this
    # package — a top-level import here would close that cycle.
    from repro.chaos.runner import ChaosOutcome

    fmt = payload.get("format")
    if fmt != PAYLOAD_FORMAT:
        raise ValueError(f"unsupported chaos-outcome payload format {fmt!r}")
    fields = {k: v for k, v in payload.items() if k != "format"}
    fields["recoveries"] = {str(k): int(v)
                            for k, v in fields["recoveries"].items()}
    return ChaosOutcome(**fields)
