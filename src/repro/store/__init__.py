"""Content-addressed campaign result store.

ACR's own thesis — completed work should survive interruption — applied to
the campaign engine that evaluates it: every (config, app, seed) simulation
cell is persisted under a canonical content address the moment it finishes,
so re-running a sweep loads cached cells instead of recomputing them and an
interrupted sweep resumes from its last completed shard
(:mod:`repro.harness.campaign`, :mod:`repro.chaos.campaign`).

Pieces:

* :mod:`repro.store.keys` — canonical cache-key material (config + app +
  seed + source-tree fingerprint);
* :mod:`repro.store.serialization` — exact JSON codecs for
  :class:`~repro.core.framework.RunReport` and
  :class:`~repro.chaos.runner.ChaosOutcome`;
* :mod:`repro.store.store` — the on-disk store (atomic writes, JSONL
  journal, ``ls`` / ``gc`` / ``verify``);
* :mod:`repro.store.golden` — committed Figs. 8-11 summary digests, the CI
  regression gate (imported lazily by the CLI; not re-exported here to keep
  this package import-light for campaign workers).

See ``docs/campaigns.md`` for layout, key semantics and the golden-digest
workflow.
"""

from repro.store.keys import (
    KIND_CHAOS_OUTCOME,
    KIND_RUN_REPORT,
    chaos_cell_material,
    code_fingerprint,
    experiment_cell_material,
    material_key,
)
from repro.store.leases import (
    JOB_ACTIVE_STATES,
    JOB_FORMAT,
    JOB_TERMINAL_STATES,
    LEASE_FORMAT,
    JobJournal,
    LeaseRegistry,
)
from repro.store.serialization import (
    PAYLOAD_FORMAT,
    decode_array,
    encode_array,
    outcome_from_dict,
    outcome_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.store.store import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    GcResult,
    ResultStore,
    StoreEntry,
    append_journal_line,
    atomic_write_json,
    default_cache_dir,
    read_journal_lines,
)

__all__ = [
    "KIND_CHAOS_OUTCOME",
    "KIND_RUN_REPORT",
    "chaos_cell_material",
    "code_fingerprint",
    "experiment_cell_material",
    "material_key",
    "PAYLOAD_FORMAT",
    "decode_array",
    "encode_array",
    "outcome_from_dict",
    "outcome_to_dict",
    "report_from_dict",
    "report_to_dict",
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "GcResult",
    "ResultStore",
    "StoreEntry",
    "append_journal_line",
    "atomic_write_json",
    "default_cache_dir",
    "read_journal_lines",
    "JOB_ACTIVE_STATES",
    "JOB_FORMAT",
    "JOB_TERMINAL_STATES",
    "LEASE_FORMAT",
    "JobJournal",
    "LeaseRegistry",
]
