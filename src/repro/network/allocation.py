"""Intrepid-like machine allocations.

The paper's Figure 8 behaviour hinges on *how the allocated partition's shape
grows with the job size*: "As the system size is increased from 1K to 4K cores
per replica, the Z dimension increases from 8 to 32, after which it becomes
stagnant.  Beyond 4K cores, only the X and Y dimensions change" (§6.2).  This
module encodes exactly those Blue Gene/P partition shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.topology import Torus3D
from repro.util.errors import ConfigurationError

#: SMP-mode Blue Gene/P: four cores per node share one torus endpoint.
CORES_PER_NODE = 4

#: Partition shapes by total node count, matching how Intrepid partitions grow:
#: Z doubles first (8 -> 16 -> 32), then X and Y grow.
_PARTITION_SHAPES: dict[int, tuple[int, int, int]] = {
    32: (4, 4, 2),
    64: (4, 4, 4),
    128: (4, 4, 8),
    256: (8, 4, 8),
    512: (8, 8, 8),
    1024: (8, 8, 16),
    2048: (8, 8, 32),
    4096: (8, 16, 32),
    8192: (16, 16, 32),
    16384: (16, 32, 32),
    32768: (32, 32, 32),
    65536: (32, 32, 64),
    131072: (32, 64, 64),
}


@dataclass(frozen=True)
class Allocation:
    """A job allocation: a torus partition split into two replicas plus spares.

    ``nodes_per_replica`` excludes spare nodes; the spares live outside the
    replicated partition (the torus shape covers the replicas only, matching
    the paper's Figure 6 which draws the two replicas filling the partition).
    """

    cores_per_replica: int
    torus: Torus3D
    spare_nodes: int = 0

    @property
    def nodes_per_replica(self) -> int:
        return self.cores_per_replica // CORES_PER_NODE

    @property
    def total_nodes(self) -> int:
        return 2 * self.nodes_per_replica

    @property
    def total_cores(self) -> int:
        return 2 * self.cores_per_replica

    def __post_init__(self) -> None:
        if self.cores_per_replica % CORES_PER_NODE:
            raise ConfigurationError(
                f"cores_per_replica={self.cores_per_replica} is not a multiple of "
                f"{CORES_PER_NODE} cores/node"
            )
        if self.torus.nnodes != self.total_nodes:
            raise ConfigurationError(
                f"torus {self.torus.dims} has {self.torus.nnodes} nodes, "
                f"expected {self.total_nodes}"
            )


def partition_shape(total_nodes: int) -> tuple[int, int, int]:
    """The Intrepid partition shape for a node count (powers of two only)."""
    try:
        return _PARTITION_SHAPES[int(total_nodes)]
    except KeyError:
        raise ConfigurationError(
            f"no Intrepid partition shape for {total_nodes} nodes; "
            f"known sizes: {sorted(_PARTITION_SHAPES)}"
        ) from None


def intrepid_allocation(cores_per_replica: int, spare_nodes: int = 0) -> Allocation:
    """Build the allocation used throughout the evaluation section.

    ``cores_per_replica`` follows the x-axes of Figures 8–11 (1K .. 64K cores
    per replica); the torus covers both replicas.
    """
    nodes = 2 * (int(cores_per_replica) // CORES_PER_NODE)
    return Allocation(
        cores_per_replica=int(cores_per_replica),
        torus=Torus3D(partition_shape(nodes)),
        spare_nodes=spare_nodes,
    )


def torus_for_nodes(total_nodes: int) -> Torus3D:
    """A torus covering ``total_nodes`` nodes with an even Z dimension.

    Uses the Intrepid partition shape when one exists; otherwise factors the
    count into a near-cubic box (Z even, so the replicas can split/interleave
    along it).  Supports the small node counts functional experiments use.
    """
    total_nodes = int(total_nodes)
    if total_nodes < 2 or total_nodes % 2:
        raise ConfigurationError(
            f"total_nodes must be even and >= 2, got {total_nodes}"
        )
    if total_nodes in _PARTITION_SHAPES:
        return Torus3D(_PARTITION_SHAPES[total_nodes])
    best: tuple[int, int, int] | None = None
    for z in range(2, total_nodes + 1, 2):
        if total_nodes % z:
            continue
        rest = total_nodes // z
        x = int(rest ** 0.5)
        while rest % x:
            x -= 1
        y = rest // x
        shape = (x, y, z)
        if best is None or max(shape) - min(shape) < max(best) - min(best):
            best = shape
    assert best is not None  # z = total_nodes always divides
    return Torus3D(best)


def supported_cores_per_replica() -> list[int]:
    """All sweep points available (cores per replica)."""
    return [n // 2 * CORES_PER_NODE for n in sorted(_PARTITION_SHAPES)]
