"""Replica-to-torus mapping schemes (paper §4.2, Fig. 6).

The two replicas share one torus partition.  How their nodes interleave
determines the congestion of the buddy checkpoint exchange:

* **default** — BG/P TXYZ order: ranks increase slowest along Z, so replica 1
  fills the lower half of the Z dimension and replica 2 the upper half; every
  buddy message travels Z/2 hops and the bisection links become the bottleneck
  (load proportional to the Z length).
* **column** — alternate Z-columns: buddies are one hop apart and paths never
  overlap (best case for inter-replica traffic, but interleaves the replicas,
  which can hurt application communication and correlated-failure isolation).
* **mixed** — alternate *chunks* of columns: a compromise with bounded overlap
  (≤ chunk) and ``chunk`` hops between buddies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.network.topology import LinkLoads, Torus3D
from repro.util.errors import ConfigurationError


class MappingScheme(str, Enum):
    """Inter-replica node placement policies of Figure 6."""

    DEFAULT = "default"
    COLUMN = "column"
    MIXED = "mixed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class BuddyMapping:
    """Placement of both replicas on a torus with row-aligned buddy pairs.

    Row ``i`` of ``r1_coords`` and ``r2_coords`` are buddies: the node of
    replica 1 with replica-rank ``i`` and its partner in replica 2.
    """

    scheme: MappingScheme
    torus: Torus3D
    r1_coords: np.ndarray  # (n, 3)
    r2_coords: np.ndarray  # (n, 3)

    @property
    def nodes_per_replica(self) -> int:
        return self.r1_coords.shape[0]

    def buddy_distance(self) -> np.ndarray:
        """Hop distance between each buddy pair."""
        return self.torus.hop_distance(self.r1_coords, self.r2_coords)

    def exchange_loads(self, nbytes_per_node: int | np.ndarray,
                       direction: str = "r1->r2") -> LinkLoads:
        """Link loads of the bulk buddy exchange.

        ``direction`` selects which replica sends: checkpoints travel
        ``r1->r2`` for SDC detection (§2.1); restart shipping travels from the
        healthy replica to the crashed one.
        """
        if direction == "r1->r2":
            src, dst = self.r1_coords, self.r2_coords
        elif direction == "r2->r1":
            src, dst = self.r2_coords, self.r1_coords
        else:
            raise ConfigurationError(f"unknown direction {direction!r}")
        return self.torus.route_loads(src, dst, nbytes_per_node)

    def single_message_loads(self, pair_index: int, nbytes: int,
                             direction: str = "r2->r1") -> LinkLoads:
        """Link loads of one buddy-to-buddy message (strong-resilience restart)."""
        if direction == "r1->r2":
            src, dst = self.r1_coords[pair_index], self.r2_coords[pair_index]
        else:
            src, dst = self.r2_coords[pair_index], self.r1_coords[pair_index]
        return self.torus.route_loads(src[None, :], dst[None, :], nbytes)


def _txyz_coords(torus: Torus3D, n: int) -> np.ndarray:
    return torus.rank_to_coord(np.arange(n, dtype=np.int64))


def build_mapping(
    torus: Torus3D,
    scheme: MappingScheme | str = MappingScheme.DEFAULT,
    *,
    chunk: int = 2,
) -> BuddyMapping:
    """Place two equal replicas on ``torus`` under a mapping scheme.

    The torus must have an even Z dimension (the replicas split/interleave
    along Z, the slowest-varying rank dimension on BG/P).
    """
    scheme = MappingScheme(scheme)
    x_dim, y_dim, z_dim = torus.dims
    if z_dim % 2:
        raise ConfigurationError(f"torus Z dimension must be even, got {z_dim}")
    n = torus.nnodes // 2
    all_coords = _txyz_coords(torus, torus.nnodes)

    if scheme is MappingScheme.DEFAULT:
        # Ranks 0..n-1 (z < Z/2) are replica 1; buddy shares (x, y), z + Z/2.
        r1 = all_coords[:n]
        r2 = r1.copy()
        r2[:, 2] += z_dim // 2
        return BuddyMapping(scheme, torus, r1, r2)

    if scheme is MappingScheme.COLUMN:
        # Even z-columns host replica 1, odd columns replica 2; buddies are
        # adjacent along Z so their messages use disjoint single links.
        z1 = all_coords[:, 2] % 2 == 0
        r1 = all_coords[z1]
        r2 = r1.copy()
        r2[:, 2] += 1
        return BuddyMapping(scheme, torus, r1, r2)

    # MIXED: chunks of `chunk` columns alternate between the replicas.
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
    if z_dim % (2 * chunk):
        raise ConfigurationError(
            f"mixed mapping needs Z % (2*chunk) == 0; Z={z_dim}, chunk={chunk}"
        )
    block = (all_coords[:, 2] // chunk) % 2 == 0
    r1 = all_coords[block]
    r2 = r1.copy()
    r2[:, 2] += chunk
    return BuddyMapping(MappingScheme.MIXED, torus, r1, r2)
