"""α–β–γ cost model for checkpoint, comparison, transfer, and restart phases.

The paper argues about costs in exactly these terms (§4.2): a communication
cost of β per byte, a computation cost of γ per byte, one instruction per byte
to copy checkpoint data, four extra instructions per byte for the Fletcher
checksum — so "using the checksum shows benefits only when γ < β/4".

All phase times are *simulated seconds* on an Intrepid-like machine.  The
constants live in :class:`MachineConstants`; the default values are calibrated
so the shapes and ratios of Figures 8–11 hold (see DESIGN.md §6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.network.mapping import BuddyMapping
from repro.pup.checksum import CHECKSUM_NBYTES
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class MachineConstants:
    """Calibrated Intrepid-like machine parameters (simulated seconds)."""

    #: Per-message injection latency (seconds per hop, α).
    alpha: float = 2.0e-5
    #: Torus link bandwidth usable by checkpoint traffic (bytes/second, 1/β).
    link_bandwidth: float = 167.0e6
    #: Serialization (pack/unpack) bandwidth — the "one instruction per byte"
    #: copy cost (bytes/second, 1/γ).
    serialization_bandwidth: float = 167.0e6
    #: Checkpoint comparison bandwidth (memcmp-like, bytes/second).
    compare_bandwidth: float = 167.0e6
    #: The checksum needs 4 extra instructions per byte (paper §4.2).
    checksum_instructions_per_byte: float = 4.0
    #: Fixed cost of one collective stage (barrier/broadcast hop).
    sync_per_stage: float = 1.0e-3
    #: Number of collective stages during a bulk checkpoint exchange.
    exchange_stages: int = 1
    #: Restart is an unexpected event needing "several barriers and
    #: broadcasts" (§6.3); it pays more collective stages than a checkpoint.
    restart_stages: int = 4

    def sync_time(self, nnodes: int, stages: int) -> float:
        """Cost of ``stages`` barrier/broadcast collectives over ``nnodes``."""
        if nnodes < 1:
            raise ConfigurationError(f"nnodes must be positive, got {nnodes}")
        return stages * self.sync_per_stage * max(1.0, math.log2(nnodes))

    def with_overrides(self, **kwargs) -> "MachineConstants":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class CheckpointProfile:
    """Checkpoint characteristics of one application on one node.

    ``serialize_factor`` > 1 models complicated data structures (LULESH's
    nested element/node fields) and scattered memory layouts (the MD apps),
    which slow the PUP traversal (§6.2).
    """

    nbytes_per_node: int
    serialize_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.nbytes_per_node < 0:
            raise ConfigurationError("nbytes_per_node must be non-negative")
        if self.serialize_factor <= 0:
            raise ConfigurationError("serialize_factor must be positive")


@dataclass(frozen=True)
class CheckpointBreakdown:
    """Decomposition of one checkpoint's overhead — the stacked bars of Fig. 8."""

    local: float
    transfer: float
    compare: float
    method: str

    @property
    def total(self) -> float:
        return self.local + self.transfer + self.compare


@dataclass(frozen=True)
class RestartBreakdown:
    """Decomposition of one restart's overhead — the stacked bars of Fig. 10."""

    transfer: float
    reconstruction: float
    scheme: str

    @property
    def total(self) -> float:
        return self.transfer + self.reconstruction


class CostModel:
    """Computes phase times for checkpoints and restarts on a mapped machine."""

    def __init__(self, machine: MachineConstants | None = None):
        self.machine = machine or MachineConstants()

    # -- elementary phase costs -------------------------------------------------
    def pack_time(self, profile: CheckpointProfile) -> float:
        """Local checkpoint: serialize state via the PUP framework."""
        m = self.machine
        return profile.nbytes_per_node * profile.serialize_factor / m.serialization_bandwidth

    def unpack_time(self, profile: CheckpointProfile) -> float:
        """State reconstruction from a checkpoint (same PUP traversal)."""
        return self.pack_time(profile)

    def compare_time(self, profile: CheckpointProfile) -> float:
        """Field-by-field comparison of local vs. remote checkpoint."""
        m = self.machine
        return profile.nbytes_per_node * profile.serialize_factor / m.compare_bandwidth

    def checksum_time(self, profile: CheckpointProfile) -> float:
        """Fletcher checksum computation: 4 extra instructions per byte."""
        m = self.machine
        gamma = 1.0 / m.serialization_bandwidth
        return profile.nbytes_per_node * m.checksum_instructions_per_byte * gamma

    def exchange_time(self, mapping: BuddyMapping, nbytes_per_node: int,
                      direction: str = "r1->r2", *, stages: int | None = None) -> float:
        """Bulk buddy exchange: bottleneck-link time plus collective sync.

        ``stages`` overrides the number of collective stages; tiny digest
        exchanges (32 bytes) ride the eager protocol and pay none.
        """
        m = self.machine
        loads = mapping.exchange_loads(nbytes_per_node, direction)
        hops = int(mapping.buddy_distance().max()) if mapping.nodes_per_replica else 0
        serial = loads.max_load() / m.link_bandwidth
        if stages is None:
            stages = m.exchange_stages
        sync = m.sync_time(2 * mapping.nodes_per_replica, stages)
        return m.alpha * max(1, hops) + serial + sync

    def point_transfer_time(self, mapping: BuddyMapping, pair_index: int,
                            nbytes: int, direction: str = "r2->r1") -> float:
        """One buddy-to-buddy message (strong-resilience restart shipping)."""
        m = self.machine
        loads = mapping.single_message_loads(pair_index, nbytes, direction)
        hops = int(mapping.buddy_distance()[pair_index])
        return m.alpha * max(1, hops) + loads.max_load() / m.link_bandwidth

    # -- composite phases (Fig. 8 / Fig. 10) ------------------------------------
    def checkpoint_breakdown(
        self,
        profile: CheckpointProfile,
        mapping: BuddyMapping,
        *,
        use_checksum: bool = False,
    ) -> CheckpointBreakdown:
        """Overhead of one replicated checkpoint with SDC detection.

        Full method: pack locally, ship the whole checkpoint r1→r2, compare.
        Checksum method: pack locally, compute the Fletcher digest, ship only
        32 bytes, compare digests (comparison cost is negligible).
        """
        local = self.pack_time(profile)
        if use_checksum:
            compute = self.checksum_time(profile)
            transfer = self.exchange_time(mapping, CHECKSUM_NBYTES, stages=0)
            # The digest comparison itself touches 32 bytes - negligible, but
            # the checksum computation is attributed to the compare phase to
            # mirror the paper's decomposition ("most of the time is spent in
            # computing the checksum").
            return CheckpointBreakdown(local=local, transfer=transfer,
                                       compare=compute, method="checksum")
        transfer = self.exchange_time(mapping, profile.nbytes_per_node)
        compare = self.compare_time(profile)
        return CheckpointBreakdown(local=local, transfer=transfer,
                                   compare=compare, method="full")

    def restart_breakdown(
        self,
        profile: CheckpointProfile,
        mapping: BuddyMapping,
        *,
        scheme: str,
        crashed_pair: int = 0,
    ) -> RestartBreakdown:
        """Overhead of restarting after a hard error (Fig. 10).

        Strong resilience ships one checkpoint (buddy → spare node standing in
        at the crashed node's torus slot); every other node rolls back from
        its local checkpoint.  Medium and weak resilience ship a checkpoint
        from *every* healthy node to its buddy, hitting the same congestion as
        the checkpoint exchange.  In all cases the crashed replica pays the
        reconstruction (unpack) cost plus restart synchronization collectives.
        """
        m = self.machine
        nnodes = 2 * mapping.nodes_per_replica
        reconstruction = self.unpack_time(profile) + m.sync_time(nnodes, m.restart_stages)
        if scheme == "strong":
            transfer = self.point_transfer_time(
                mapping, crashed_pair, profile.nbytes_per_node
            )
        elif scheme in ("medium", "weak"):
            transfer = self.exchange_time(mapping, profile.nbytes_per_node,
                                          direction="r2->r1")
        else:
            raise ConfigurationError(f"unknown resilience scheme {scheme!r}")
        return RestartBreakdown(transfer=transfer, reconstruction=reconstruction,
                                scheme=scheme)

    def sdc_rollback_time(self, profile: CheckpointProfile, nnodes: int) -> float:
        """Rollback after SDC detection: local unpack only, no transfer (§6.3)."""
        return self.unpack_time(profile) + self.machine.sync_time(
            nnodes, self.machine.restart_stages
        )

    # -- the paper's break-even rule --------------------------------------------
    def checksum_beneficial(self) -> bool:
        """§4.2: checksums win only when γ < β/4."""
        m = self.machine
        beta = 1.0 / m.link_bandwidth
        gamma = 1.0 / m.serialization_bandwidth
        return gamma < beta / m.checksum_instructions_per_byte


def effective_checkpoint_delta(
    breakdown: CheckpointBreakdown,
) -> float:
    """The δ the analytical model should use for a given configuration."""
    return breakdown.total


__all__ = [
    "MachineConstants",
    "CheckpointProfile",
    "CheckpointBreakdown",
    "RestartBreakdown",
    "CostModel",
    "effective_checkpoint_delta",
]
