"""Torus network substrate: topology, replica mappings, and phase cost model.

Reproduces the machine-side mechanics of the paper's evaluation on Intrepid
(IBM Blue Gene/P): dimension-ordered torus routing, the default/column/mixed
replica mappings of Fig. 6, Intrepid partition shapes, and the α–β–γ cost
model behind Figures 8–11.
"""

from repro.network.allocation import (
    CORES_PER_NODE,
    Allocation,
    intrepid_allocation,
    partition_shape,
    supported_cores_per_replica,
)
from repro.network.costs import (
    CheckpointBreakdown,
    CheckpointProfile,
    CostModel,
    MachineConstants,
    RestartBreakdown,
)
from repro.network.mapping import BuddyMapping, MappingScheme, build_mapping
from repro.network.topology import LinkLoads, Torus3D

__all__ = [
    "CORES_PER_NODE",
    "Allocation",
    "intrepid_allocation",
    "partition_shape",
    "supported_cores_per_replica",
    "CheckpointBreakdown",
    "CheckpointProfile",
    "CostModel",
    "MachineConstants",
    "RestartBreakdown",
    "BuddyMapping",
    "MappingScheme",
    "build_mapping",
    "LinkLoads",
    "Torus3D",
]
