"""3D-torus topology with dimension-ordered routing and link-load accounting.

The evaluation machine of the paper is *Intrepid*, an IBM Blue Gene/P whose
nodes are connected in a 3D torus.  The inter-replica checkpoint exchange is a
bulk-synchronous pattern (every node sends its checkpoint to its buddy at the
same time), so the transfer time is governed by the most heavily loaded link
(§4.2, Fig. 6).  This module computes exact per-link byte loads for a batch of
messages under the torus's dimension-ordered (X then Y then Z) shortest-path
routing, fully vectorized over messages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError

_DIM_NAMES = ("X", "Y", "Z")


@dataclass
class LinkLoads:
    """Per-link byte loads of a message batch on a :class:`Torus3D`.

    ``pos[d][x, y, z]`` is the number of bytes crossing the link that leaves
    node ``(x, y, z)`` in the positive direction of dimension ``d``;
    ``neg[d]`` likewise for the negative direction.
    """

    dims: tuple[int, int, int]
    pos: list[np.ndarray]
    neg: list[np.ndarray]

    @classmethod
    def zeros(cls, dims: tuple[int, int, int]) -> "LinkLoads":
        return cls(
            dims=dims,
            pos=[np.zeros(dims, dtype=np.int64) for _ in range(3)],
            neg=[np.zeros(dims, dtype=np.int64) for _ in range(3)],
        )

    def max_load(self) -> int:
        """Bytes on the most congested link — the transfer bottleneck."""
        peak = 0
        for d in range(3):
            if self.pos[d].size:
                peak = max(peak, int(self.pos[d].max()), int(self.neg[d].max()))
        return peak

    def total_bytes_hops(self) -> int:
        """Sum of bytes×hops over all links (total network work)."""
        return int(sum(a.sum() for a in self.pos) + sum(a.sum() for a in self.neg))

    def nonzero_links(self) -> int:
        return int(sum(np.count_nonzero(a) for a in self.pos + self.neg))

    def add(self, other: "LinkLoads") -> "LinkLoads":
        if self.dims != other.dims:
            raise ConfigurationError("cannot add loads of different tori")
        for d in range(3):
            self.pos[d] += other.pos[d]
            self.neg[d] += other.neg[d]
        return self

    def render_front_plane(self, *, dim: int = 2, y: int = 0) -> str:
        """An ASCII rendering of one plane's link loads along ``dim`` — the
        view Figure 6 draws ("only the mapping for the front plane (Y = 0) is
        shown"): rows are X positions, columns are links along the chosen
        dimension, cells are the byte (or message) count on that link."""
        x_dim, _, z_dim = self.dims
        if dim != 2:
            raise ConfigurationError("front-plane rendering draws Z-links only")
        combined = np.maximum(self.pos[2][:, y, :], self.neg[2][:, y, :])
        width = max(len(str(int(combined.max()))) if combined.size else 1, 1)
        lines = [f"front plane (Y={y}); cell = load on +Z/-Z link at (x, z):"]
        for x in range(x_dim):
            cells = " ".join(str(int(v)).rjust(width) for v in combined[x])
            lines.append(f"x={x}: {cells}")
        return "\n".join(lines)

    def plane_loads(self, dim: int = 2) -> np.ndarray:
        """Aggregate per-position loads along one dimension (for Fig. 6-style
        inspection): returns an array of length ``dims[dim]`` with the maximum
        link load at each position along that axis."""
        out = np.zeros(self.dims[dim], dtype=np.int64)
        axes = tuple(a for a in range(3) if a != dim)
        for arr in (self.pos[dim], self.neg[dim]):
            out = np.maximum(out, arr.max(axis=axes))
        return out


class Torus3D:
    """A 3D torus of ``X * Y * Z`` nodes with bidirectional links."""

    def __init__(self, dims: tuple[int, int, int]):
        dims = tuple(int(d) for d in dims)
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise ConfigurationError(f"invalid torus dims {dims}")
        self.dims = dims

    @property
    def nnodes(self) -> int:
        x, y, z = self.dims
        return x * y * z

    def __repr__(self) -> str:
        return f"Torus3D{self.dims}"

    # -- coordinate <-> rank (TXYZ order: X fastest, Z slowest) -----------------
    def rank_to_coord(self, ranks: np.ndarray) -> np.ndarray:
        """Default BG/P-style TXYZ ordering: rank increases fastest along X and
        slowest along Z (§4.2: "ranks increase slowest along Z dimension")."""
        ranks = np.asarray(ranks, dtype=np.int64)
        x_dim, y_dim, _ = self.dims
        x = ranks % x_dim
        y = (ranks // x_dim) % y_dim
        z = ranks // (x_dim * y_dim)
        return np.stack([x, y, z], axis=-1)

    def coord_to_rank(self, coords: np.ndarray) -> np.ndarray:
        coords = np.asarray(coords, dtype=np.int64)
        x_dim, y_dim, _ = self.dims
        return coords[..., 0] + x_dim * (coords[..., 1] + y_dim * coords[..., 2])

    # -- routing -----------------------------------------------------------------
    def hop_distance(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Shortest-path hop counts between coordinate arrays (per message)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        total = np.zeros(src.shape[:-1], dtype=np.int64)
        for d in range(3):
            size = self.dims[d]
            fwd = (dst[..., d] - src[..., d]) % size
            total += np.minimum(fwd, size - fwd)
        return total

    def route_loads(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        nbytes: np.ndarray | int,
        *,
        dim_order: tuple[int, int, int] = (0, 1, 2),
    ) -> LinkLoads:
        """Accumulate per-link byte loads for a batch of messages.

        Messages are routed dimension-ordered — by default X, then Y, then Z,
        the BG/P convention; ``dim_order`` selects a different permutation —
        taking the shorter way around each ring; ties break toward the
        positive direction, which matches deterministic torus routing.

        Parameters
        ----------
        src, dst:
            Integer coordinate arrays of shape ``(n, 3)``.
        nbytes:
            Message sizes — scalar or array of shape ``(n,)``.
        dim_order:
            Permutation of (0, 1, 2) giving the dimension traversal order.
        """
        if sorted(dim_order) != [0, 1, 2]:
            raise ConfigurationError(
                f"dim_order must be a permutation of (0, 1, 2), got {dim_order}"
            )
        src = np.asarray(src, dtype=np.int64).reshape(-1, 3).copy()
        dst = np.asarray(dst, dtype=np.int64).reshape(-1, 3)
        n = src.shape[0]
        sizes = np.broadcast_to(np.asarray(nbytes, dtype=np.int64), (n,)).copy()
        loads = LinkLoads.zeros(self.dims)

        cur = src
        for d in dim_order:
            ring = self.dims[d]
            fwd = (dst[:, d] - cur[:, d]) % ring
            bwd = (cur[:, d] - dst[:, d]) % ring
            go_fwd = fwd <= bwd  # tie -> positive direction
            hops = np.where(go_fwd, fwd, bwd)
            max_hops = int(hops.max()) if n else 0
            for h in range(max_hops):
                active = hops > h
                if not active.any():
                    break
                for direction, dir_mask in (("+", go_fwd), ("-", ~go_fwd)):
                    m = active & dir_mask
                    if not m.any():
                        continue
                    pos_along = cur[m, d]
                    if direction == "+":
                        # h-th hop departs (p + h) and uses its positive link.
                        link_at = (pos_along + h) % ring
                        target = loads.pos[d]
                    else:
                        # h-th hop departs (p - h) and uses its negative link
                        # (the link from node (p - h) to node (p - h - 1)).
                        link_at = (pos_along - h) % ring
                        target = loads.neg[d]
                    idx = [None, None, None]
                    for a in range(3):
                        idx[a] = link_at if a == d else cur[m, a]
                    np.add.at(target, tuple(idx), sizes[m])
            # After finishing dimension d, every message sits at dst[:, d].
            cur[:, d] = dst[:, d]
        return loads
