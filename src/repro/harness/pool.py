"""A long-lived worker pool for the campaign server.

:func:`~repro.harness.campaign.fan_out` is the batch engine: it owns a
``ProcessPoolExecutor`` for exactly one sweep and joins it before returning.
The campaign server needs the same workers with a different lifecycle — a
pool that outlives any single request, hands out futures the asyncio event
loop can await via ``run_in_executor``, and degrades the same way ``fan_out``
does when process pools are unavailable (serial → here, a thread pool; the
work is deterministic either way because every cell re-derives its
randomness from its own seed).

The width clamp is shared with campaigns
(:func:`~repro.harness.campaign.effective_workers`): never more processes
than cores.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool


def _watch_for_orphaning(parent_pid: int, poll_s: float = 2.0) -> None:
    """Pool-worker initializer: exit if the parent process disappears.

    A SIGKILLed server cannot shut its pool down, and an orphaned
    ``ProcessPoolExecutor`` worker blocks on the call queue forever (the
    feeder keeps the pipe's write end open inside the worker itself, so it
    never reads EOF).  The server's whole durability story is "kill -9 me",
    so every worker watches its parent and exits once it is re-parented.
    """

    def watch() -> None:
        while os.getppid() == parent_pid:
            time.sleep(poll_s)
        os._exit(0)

    threading.Thread(target=watch, daemon=True,
                     name="orphan-watchdog").start()


class WorkerPool:
    """Lazily-created process pool with a thread fallback.

    ``pool.executor`` is a live :class:`concurrent.futures.Executor`; the
    first submission that reveals a broken or unsupported process pool flips
    the pool to threads permanently (``pool.mode`` says which one is active).
    """

    def __init__(self, workers: int | None = None) -> None:
        requested = workers if workers and workers > 0 else (os.cpu_count() or 1)
        self.width = min(requested, os.cpu_count() or 1)
        self.mode = "unstarted"
        self._executor: Executor | None = None

    @property
    def executor(self) -> Executor:
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.width,
                    initializer=_watch_for_orphaning,
                    initargs=(os.getpid(),))
                self.mode = "processes"
            except (ImportError, NotImplementedError, OSError):
                self._executor = ThreadPoolExecutor(max_workers=self.width)
                self.mode = "threads"
        return self._executor

    def fall_back_to_threads(self) -> Executor:
        """Replace a broken process pool with threads (one-way)."""
        old, self._executor = self._executor, None
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        self._executor = ThreadPoolExecutor(max_workers=self.width)
        self.mode = "threads"
        return self._executor

    def submit(self, fn, *args):
        """Submit work, transparently recovering from a dead process pool."""
        try:
            return self.executor.submit(fn, *args)
        except (BrokenProcessPool, RuntimeError):
            return self.fall_back_to_threads().submit(fn, *args)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self.mode = "shutdown"
