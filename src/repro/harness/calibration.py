"""Machine calibration and figure axes for the evaluation (see DESIGN.md §6).

One place holds the Intrepid-like machine constants and every figure's sweep
axes, so the benchmarks, tests, and examples agree on the configuration.
"""

from __future__ import annotations

from repro.network.costs import MachineConstants
from repro.util.units import YEARS

#: The calibrated Blue Gene/P-like machine of the evaluation.
INTREPID = MachineConstants(
    alpha=2.0e-5,
    link_bandwidth=167.0e6,
    serialization_bandwidth=167.0e6,
    compare_bandwidth=167.0e6,
    checksum_instructions_per_byte=4.0,
    sync_per_stage=1.0e-3,
    exchange_stages=1,
    restart_stages=4,
)

#: Figure 8 / Figure 10 x-axis: cores per replica.
FIG8_CORES_PER_REPLICA = (1024, 4096, 16384, 65536)

#: Figure 8 detection/optimization variants, in the paper's legend order.
FIG8_METHODS = ("default", "mixed", "column", "checksum")

#: Figure 9 / Figure 11 x-axis: sockets (nodes) per replica.
FIG9_SOCKETS_PER_REPLICA = (1024, 4096, 16384)

#: Section 6.2 model inputs for Figures 9 and 11.
FIG9_HARD_MTBF_PER_SOCKET = 50 * YEARS
FIG9_SDC_FIT_PER_SOCKET = 10_000.0

#: Figure 12 scenario: a 30-minute Jacobi3D run on 512 cores with 19
#: failures following a Weibull process with shape 0.6.
FIG12_HORIZON_SECONDS = 1800.0
FIG12_FAILURES = 19
FIG12_WEIBULL_SHAPE = 0.6
FIG12_CORES = 512
