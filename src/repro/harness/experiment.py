"""High-level experiment helpers wrapping the full DES framework.

These are the entry points examples and integration benchmarks use: run an
application under ACR with Poisson faults, or measure forward-path overhead
in a failure-free run, without hand-assembling the machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ACRConfig
from repro.core.framework import ACR, RunReport
from repro.faults.injector import InjectionPlan, poisson_plan
from repro.model.schemes import ResilienceScheme
from repro.network.mapping import MappingScheme
from repro.util.rng import RngStream


@dataclass
class ExperimentResult:
    report: RunReport
    acr: ACR

    @property
    def ok(self) -> bool:
        return self.report.completed and self.report.aborted_reason is None


def run_acr_experiment(
    app: str = "jacobi3d-charm",
    *,
    nodes_per_replica: int = 4,
    scheme: ResilienceScheme | str = ResilienceScheme.STRONG,
    mapping: MappingScheme | str = MappingScheme.DEFAULT,
    use_checksum: bool = False,
    total_iterations: int = 200,
    checkpoint_interval: float = 5.0,
    hard_mtbf: float | None = None,
    sdc_mtbf: float | None = None,
    horizon: float = 10_000.0,
    seed: int = 0,
    tasks_per_node: int = 1,
    app_scale: float = 1e-4,
    spare_nodes: int = 64,
    injection_plan: InjectionPlan | None = None,
    storage_tiers: tuple = (),
    tracer=None,
    metrics=None,
    series=None,
    app_kwargs: dict | None = None,
) -> ExperimentResult:
    """Run one application to ``total_iterations`` under injected faults.

    ``hard_mtbf`` / ``sdc_mtbf`` draw Poisson fault schedules over the whole
    horizon; pass an explicit ``injection_plan`` for deterministic scenarios.
    ``tracer`` / ``metrics`` / ``series`` opt the run into telemetry (a
    :class:`~repro.obs.tracer.SpanTracer` /
    :class:`~repro.obs.metrics.MetricsRegistry` /
    :class:`~repro.obs.series.TimeSeriesRecorder`); by default all are
    no-ops.  Note ``series`` arms a periodic sampling timer, so a sampled
    run is not bit-identical to an un-sampled one (the other two are).
    """
    if injection_plan is None:
        injection_plan = poisson_plan(
            hard_mtbf=hard_mtbf,
            sdc_mtbf=sdc_mtbf,
            horizon=horizon,
            nodes_per_replica=nodes_per_replica,
            rng=RngStream(seed, "experiment/faults"),
        )
    config = ACRConfig(
        scheme=ResilienceScheme(scheme),
        mapping=MappingScheme(mapping),
        use_checksum=use_checksum,
        checkpoint_interval=checkpoint_interval,
        total_iterations=total_iterations,
        tasks_per_node=tasks_per_node,
        app_scale=app_scale,
        seed=seed,
        spare_nodes=spare_nodes,
        storage_tiers=storage_tiers,
    )
    acr = ACR(app, nodes_per_replica=nodes_per_replica, config=config,
              injection_plan=injection_plan, tracer=tracer, metrics=metrics,
              series=series, app_kwargs=app_kwargs)
    report = acr.run(until=horizon, max_events=100_000_000)
    return ExperimentResult(report=report, acr=acr)


def run_experiment_report(app: str, seed: int,
                          experiment_kwargs: dict) -> RunReport:
    """One campaign seed → its :class:`RunReport`.

    Module-level (hence picklable) worker for the parallel campaign runner in
    :mod:`repro.harness.campaign`; drops the ``ACR`` object so only the
    report crosses the process boundary.  Results are deterministic per seed
    regardless of which process runs them: every random draw flows from
    SHA-256-derived :class:`~repro.util.rng.RngStream` seeds.

    ``collect_metrics=True`` in ``experiment_kwargs`` gives the run its own
    :class:`~repro.obs.metrics.MetricsRegistry`; its snapshot travels back on
    ``report.metrics_snapshot`` (a plain dict) and the campaign merges the
    per-worker snapshots.  ``collect_series=<interval>`` (simulated seconds)
    additionally arms streaming time-series sampling; the series travels back
    on ``report.series`` and campaigns merge the per-cell series with
    :func:`~repro.obs.series.merge_series`.
    """
    kwargs = dict(experiment_kwargs)
    if kwargs.pop("collect_metrics", False):
        from repro.obs.metrics import MetricsRegistry

        kwargs["metrics"] = MetricsRegistry()
    series_interval = kwargs.pop("collect_series", None)
    if series_interval:
        from repro.obs.series import TimeSeriesRecorder

        kwargs["series"] = TimeSeriesRecorder(interval=float(series_interval))
    return run_acr_experiment(app, seed=seed, **kwargs).report


def forward_path_overhead(
    app: str = "jacobi3d-charm",
    *,
    nodes_per_replica: int = 4,
    checkpoints: int = 5,
    checkpoint_interval: float = 4.0,
    mapping: MappingScheme | str = MappingScheme.DEFAULT,
    use_checksum: bool = False,
    seed: int = 0,
) -> tuple[float, RunReport]:
    """Measured failure-free overhead fraction over ~``checkpoints`` periods."""
    horizon = checkpoint_interval * (checkpoints + 0.5)
    config = ACRConfig(
        checkpoint_interval=checkpoint_interval,
        mapping=MappingScheme(mapping),
        use_checksum=use_checksum,
        tasks_per_node=1,
        app_scale=1e-4,
        seed=seed,
    )
    acr = ACR(app, nodes_per_replica=nodes_per_replica, config=config)
    report = acr.run(until=horizon, max_events=100_000_000)
    return report.overhead_fraction, report
