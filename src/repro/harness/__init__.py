"""Experiment harness: calibration, per-figure data generators, reporting."""

from repro.harness.calibration import (
    FIG8_CORES_PER_REPLICA,
    FIG8_METHODS,
    FIG9_SOCKETS_PER_REPLICA,
    FIG12_CORES,
    FIG12_FAILURES,
    FIG12_HORIZON_SECONDS,
    FIG12_WEIBULL_SHAPE,
    INTREPID,
)
from repro.harness.campaign import (
    CampaignResult,
    CampaignSummary,
    FanOutError,
    effective_workers,
    fan_out,
    run_campaign,
    summarize,
)
from repro.harness.experiment import (
    ExperimentResult,
    forward_path_overhead,
    run_acr_experiment,
)
from repro.harness.figures import (
    FIG9_VARIANTS,
    FIG10_VARIANTS,
    Fig6Row,
    Fig8Row,
    Fig9Row,
    Fig10Row,
    Fig12Result,
    fig6_data,
    fig8_data,
    fig9_fig11_data,
    fig10_data,
    fig12_data,
)
from repro.harness.pool import WorkerPool
from repro.harness.report import format_table, print_table

__all__ = [
    "FIG8_CORES_PER_REPLICA",
    "FIG8_METHODS",
    "FIG9_SOCKETS_PER_REPLICA",
    "FIG12_CORES",
    "FIG12_FAILURES",
    "FIG12_HORIZON_SECONDS",
    "FIG12_WEIBULL_SHAPE",
    "INTREPID",
    "CampaignResult",
    "CampaignSummary",
    "FanOutError",
    "WorkerPool",
    "effective_workers",
    "fan_out",
    "run_campaign",
    "summarize",
    "ExperimentResult",
    "forward_path_overhead",
    "run_acr_experiment",
    "FIG9_VARIANTS",
    "FIG10_VARIANTS",
    "Fig6Row",
    "Fig8Row",
    "Fig9Row",
    "Fig10Row",
    "Fig12Result",
    "fig6_data",
    "fig8_data",
    "fig9_fig11_data",
    "fig10_data",
    "fig12_data",
    "format_table",
    "print_table",
]
