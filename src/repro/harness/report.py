"""Plain-text table rendering for benchmark output.

Every benchmark prints the same rows/series the paper plots; these helpers
keep that output aligned and diffable.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_value(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 *, title: str | None = None) -> str:
    """Render an aligned fixed-width table."""
    str_rows = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                *, title: str | None = None) -> None:
    print()
    print(format_table(headers, rows, title=title))
