"""Opt-in space-partitioned parallel DES mode (conservative lookahead).

The single-process :class:`~repro.core.framework.ACR` run is the reference
semantics: one event queue, one global protocol actor, bit-identical traces.
This module parallelizes the layer that dominates paper-scale runs — the
*distributed runtime* of nodes, ring tasks, dependency stamps, buddy
heartbeats, hard faults, and partition-local detect/restart recovery — by
splitting the rank range into contiguous partitions, each with its own
:class:`~repro.runtime.des.Simulator`, transport, and heartbeat monitor.

Why ranks: buddy pairs are rank-aligned across the two replicas, so a
partition that owns ranks ``[lo, hi)`` of *both* replicas keeps every
heartbeat, failure detection, and spare takeover local.  The only
cross-partition traffic is the dependency-stamp fan-out of *edge tasks* (the
ring wraps at partition boundaries), which makes a conservative
time-window scheme practical:

* every stamp crosses the boundary with the same transport delay ``δ``
  (latency + nbytes/bandwidth — the exact float the single-process path
  computes);
* at each window barrier every partition promises its **earliest output
  time**: the earliest instant any of its edge tasks could next announce a
  stamp (a computing task announces no earlier than its scheduled completion;
  an idle or paused task must first finish an iteration, ≥ ``min_iter``
  away; a dead task cannot announce before its revival, ≥ ``spare_boot``
  after a detection that has not happened yet);
* the next window runs every partition strictly *before* ``H = min
  promise + δ`` (events with time < H — implemented exactly with
  ``math.nextafter``), so every boundary stamp is exchanged and injected
  before any receiver could reach its delivery instant.

Determinism contract: all randomness flows from SHA-256-derived
:class:`~repro.util.rng.RngStream` draws keyed by ``(seed, name)`` and from
the per-``(seed, task, iteration)`` jitter hash — none of it depends on the
partition count or on which OS process runs a partition.  Event interleaving
*across* partitions is unconstrained, but partitions only interact through
timestamped stamps whose delivery instants are identical floats in every
decomposition, so the merged, canonically-sorted trace is byte-identical for
any ``partitions × workers`` choice (asserted in
``tests/harness/test_parallel.py``).  What this mode does **not** cover is
the globally-coordinated checkpoint consensus of the full framework — runs
that need the global protocol use the (vectorized) single-process path; see
``docs/performance.md``.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from dataclasses import dataclass, field

from repro.apps.base import _hash_unit
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.series import TimeSeriesRecorder, merge_series
from repro.runtime.des import Simulator
from repro.runtime.heartbeat import HeartbeatMonitor
from repro.runtime.messages import Transport
from repro.runtime.node import Node
from repro.runtime.soa import TaskProgressArray
from repro.runtime.task import DEP_STAMP_NBYTES, Task, TaskState
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

_INF = float("inf")


# ---------------------------------------------------------------------------
# Scenario & report
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ParallelScenario:
    """A seeded forward-path workload the partitioned mode can simulate.

    ``scheme`` picks the partition-local recovery analogue of the paper's
    spectrum: ``"strong"`` restores a revived node's tasks to their last
    periodic local snapshot stamp; ``"weak"`` restarts them from iteration 0.
    """

    nodes_per_replica: int
    total_iterations: int
    tasks_per_node: int = 1
    iteration_seconds: float = 0.05
    heartbeat_interval: float = 1.0
    heartbeat_timeout_factor: float = 4.0
    scheme: str = "strong"
    snapshot_interval: float = 5.0
    n_faults: int = 0
    fault_window: tuple[float, float] = (0.2, 0.6)
    spare_boot_time: float = 2.0
    horizon: float = 1_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nodes_per_replica < 1 or self.tasks_per_node < 1:
            raise ConfigurationError("need >= 1 node and >= 1 task per node")
        if self.scheme not in ("strong", "weak"):
            raise ConfigurationError(f"unknown scheme {self.scheme!r}")
        if self.iteration_seconds <= 0 or self.snapshot_interval <= 0:
            raise ConfigurationError("iteration/snapshot times must be > 0")

    @property
    def total_tasks(self) -> int:
        return self.nodes_per_replica * self.tasks_per_node


@dataclass
class ParallelRunReport:
    """Outcome + worker accounting for one partitioned run.

    Mirrors the campaign runner's ``effective_workers`` clamp: the requested
    worker count is recorded next to what actually ran (``min(requested,
    partitions, cpu_count)``) so reports and bench JSON can distinguish
    "asked for 8" from "got 1 on this box".
    """

    completed: bool
    sim_time: float
    events_processed: int
    windows: int
    wall_s: float
    cpu_count: int
    requested_workers: int
    effective_workers: int
    partitions: int
    per_partition_events: list[int] = field(default_factory=list)
    trace_digest: str | None = None
    trace: list[str] | None = None
    #: Merged decomposition-invariant metrics snapshot (``collect_metrics``);
    #: equal to the 1-partition run's snapshot for any decomposition.
    metrics: dict | None = None
    #: Per-partition snapshots in partition-index order (``collect_metrics``).
    partition_metrics: list[dict] | None = None
    #: Merged per-partition time series (``series_interval``); see
    #: :func:`repro.obs.series.merge_series`.
    series: dict | None = None


def effective_parallel_workers(requested: int | None, partitions: int) -> int:
    """The campaign clamp applied to partition workers."""
    return min(requested or 1, partitions, os.cpu_count() or 1)


def fault_plan(scenario: ParallelScenario) -> list[tuple[float, int, int]]:
    """Seeded hard-fault schedule: ``(time, replica, rank)``, distinct ranks.

    Drawn from one named stream, so every partition (and every worker
    process) derives the identical plan and schedules only its own ranks.
    """
    if scenario.n_faults == 0:
        return []
    n = scenario.nodes_per_replica
    if scenario.n_faults > n:
        raise ConfigurationError("more faults than ranks")
    rng = RngStream(scenario.seed, "parallel/faults")
    est_end = scenario.horizon
    lo, hi = scenario.fault_window
    times = rng.uniform(lo * est_end, hi * est_end, size=scenario.n_faults)
    ranks = rng.choice(n, size=scenario.n_faults, replace=False)
    replicas = rng.integers(0, 2, size=scenario.n_faults)
    plan = [(float(t), int(rep), int(rk))
            for t, rep, rk in zip(times, replicas, ranks)]
    plan.sort()
    return plan


# ---------------------------------------------------------------------------
# Partition internals
# ---------------------------------------------------------------------------

class _PartitionTransport(Transport):
    """Transport that diverts boundary stamp fan-outs into an outbox.

    Local targets ride the normal batched delivery event; foreign targets
    are recorded as ``(deliver_time, dst, to_task, from_task, stamp, epoch)``
    and injected into the owning partition at the next window barrier — with
    the same delay expression, so delivery instants are bit-identical to the
    single-partition run.
    """

    def __init__(self, sim: Simulator, **kwargs):
        super().__init__(sim, **kwargs)
        self.outbox: list[tuple] = []
        self._local_nodes: frozenset[int] = frozenset()

    def seal(self) -> None:
        self._local_nodes = frozenset(self._handlers)

    def send_stamps(self, src, targets, from_task, stamp, epoch, *, nbytes):
        local_nodes = self._local_nodes
        for dst, _ in targets:
            if dst not in local_nodes:
                break
        else:
            super().send_stamps(src, targets, from_task, stamp, epoch,
                                nbytes=nbytes)
            return
        if not self._alive.get(src, False):
            self.messages_dropped += len(targets)
            return
        local = [t for t in targets if t[0] in local_nodes]
        foreign = [t for t in targets if t[0] not in local_nodes]
        n = len(targets)
        self.messages_sent += n
        self.sent_by_kind["app"] += n
        self.bytes_by_kind["app"] += n * nbytes
        self.batched_messages += n
        self.batch_events += 1
        delay = self.small_delay(nbytes)
        if local:
            self.sim.post(delay, self._deliver_stamps, local, from_task,
                          stamp, epoch)
        deliver_time = self.sim.now + delay
        for dst, to_task in foreign:
            self.outbox.append(
                (deliver_time, dst, to_task, from_task, stamp, epoch))

    def inject(self, entries: list[tuple]) -> None:
        """Schedule inbound boundary stamps at their exact delivery times."""
        for t, dst, to_task, from_task, stamp, epoch in entries:
            self.sim.schedule_at(t, self._deliver_stamps, [(dst, to_task)],
                                 from_task, stamp, epoch)


class _TracedNode(Node):
    """Node with trace hooks and the harness's restart-resync reply.

    A task that rolls back resets its dependency view; if its neighbors are
    already paused at the iteration cap they would never announce again and
    the restored task would hang — the partition-local analogue of the §2.2
    resend problem.  The reply models the missing half: on receiving a stamp
    *behind* our own progress, re-announce one iteration-time later.  The
    fixed ``min_iter`` delay keeps the conservative promise sound (no
    partition can emit a boundary stamp earlier than ``T + min_iter``
    from an idle/paused state).
    """

    __trace__ = None   # set per-instance by the partition
    __resync__ = 0.0   # min_iter, set per-instance by the partition

    def on_task_progress(self, task: Task) -> None:
        tr = self.__trace__
        if tr is not None:
            tr.append((self.sim.now, "iter", self.replica, self.rank,
                       task.task_id, task.progress))
        super().on_task_progress(task)

    def _on_stamp(self, to_task: int, from_task: int, stamp: int,
                  epoch: int) -> None:
        if not self.alive:
            return
        task = self._task_by_id.get(to_task)
        if task is None:
            return
        # The framework's rollbacks are global, so task epochs advance in
        # lockstep and the epoch filter cleanly flushes pre-rollback traffic.
        # Partition-local restarts desynchronize epochs (only the revived
        # node's tasks bump), which would make a restored task drop every
        # stamp from its never-rolled-back neighbors.  Stamps in this model
        # are idempotent max-progress facts — a neighbor's completed
        # iteration stays completed across its (deterministic) re-execution —
        # so clamping the carried epoch to the receiver's is sound.
        if epoch < task.epoch:
            epoch = task.epoch
        task.on_dep_message(from_task, stamp, epoch)
        # A stamp more than one iteration behind our progress cannot occur in
        # the dependency-gated steady state (neighbors trail by at most one)
        # — it is the signature of a rollback on the sender's side.
        if stamp < task.progress - 1 and task.state is not TaskState.DEAD:
            self.sim.schedule(self.__resync__, self._resync_reply,
                              task, task.epoch)

    def _resync_reply(self, task: Task, epoch: int) -> None:
        if self.alive and epoch == task.epoch \
                and task.state is not TaskState.DEAD:
            task._announce_progress()


class _Partition:
    """One rank range of both replicas with its own simulator + monitor."""

    def __init__(self, scenario: ParallelScenario, index: int,
                 partitions: int, *, trace: bool,
                 series_interval: float | None = None):
        self.scenario = scenario
        self.index = index
        n = scenario.nodes_per_replica
        per = -(-n // partitions)  # ceil
        self.lo = min(index * per, n)
        self.hi = min(self.lo + per, n)
        self.sim = Simulator()
        self.transport = _PartitionTransport(self.sim)
        self.trace: list[tuple] | None = [] if trace else None
        self.min_iter = scenario.iteration_seconds
        self.boot = scenario.spare_boot_time
        self.stamp_delay = self.transport.small_delay(DEP_STAMP_NBYTES)

        tpn = scenario.tasks_per_node
        total_tasks = scenario.total_tasks
        seed = scenario.seed
        base = scenario.iteration_seconds

        def iteration_time(task_id: int, iteration: int) -> float:
            # Same jitter model as ReplicaApp.iteration_time — keyed only by
            # (seed, task, iteration), hence partition-independent.
            return base * (1.0 + 0.05 * _hash_unit(seed, task_id, iteration))

        def node_id(replica: int, rank: int) -> int:
            return replica * n + rank

        self.nodes: dict[int, Node] = {}
        self.tasks: list[Task] = []
        self.edge_tasks: list[Task] = []
        local_ranks = range(self.lo, self.hi)
        for replica in (0, 1):
            for rank in local_ranks:
                nid = node_id(replica, rank)
                node = _TracedNode(nid, replica, rank, self.sim, self.transport)
                node.__trace__ = self.trace
                node.__resync__ = self.min_iter
                self.nodes[nid] = node
                for j in range(tpn):
                    tid = rank * tpn + j
                    left = (tid - 1) % total_tasks
                    right = (tid + 1) % total_tasks
                    neighbors = [(node_id(replica, left // tpn), left),
                                 (node_id(replica, right // tpn), right)]
                    task = Task(tid, node, neighbors=neighbors,
                                iteration_time=iteration_time)
                    task.iteration_cap = scenario.total_iterations
                    node.add_task(task)
                    self.tasks.append(task)
                    if any(not (self.lo <= nd % n < self.hi)
                           for nd, _ in neighbors):
                        self.edge_tasks.append(task)
        self.transport.seal()

        self._soa = TaskProgressArray(len(self.tasks))
        for i, task in enumerate(self.tasks):
            task.bind_progress(self._soa, i)
        self._soa.set_cap(scenario.total_iterations)

        buddy_of = {}
        for rank in local_ranks:
            a, b = node_id(0, rank), node_id(1, rank)
            buddy_of[a] = b
            buddy_of[b] = a
        self.monitor = HeartbeatMonitor(
            list(self.nodes.values()), buddy_of,
            interval=scenario.heartbeat_interval,
            timeout_factor=scenario.heartbeat_timeout_factor,
            on_death=self._on_death)
        self._revive_at: dict[int, float] = {}
        #: Last periodic local snapshot stamp per task (strong scheme).
        self._snapshot: dict[int, int] = {t.task_id: 0 for t in self.tasks}
        self._snap_event = None
        self._faults_pending = 0
        #: Recovery accounting (decomposition-invariant: each fault is owned
        #: by exactly one partition in every decomposition).
        self._kills = 0
        self._detections = 0
        self._revives = 0
        self._restores = 0
        #: Streaming telemetry: a partition-local series sampled on this
        #: partition's own clock.  Samples are passive counter reads — no
        #: state mutation, no sends — so the canonical trace is unchanged.
        self.series: TimeSeriesRecorder | None = None
        self._series_event = None
        if series_interval:
            self.series = TimeSeriesRecorder(interval=series_interval)
            self._series_event = self.sim.schedule_periodic(
                series_interval, self._sample_series)

        for t, rep, rank in fault_plan(scenario):
            if self.lo <= rank < self.hi:
                self.sim.schedule_at(t, self._kill, node_id(rep, rank))
                self._faults_pending += 1

        self.monitor.start()
        if scenario.scheme == "strong":
            self._snap_event = self.sim.schedule_periodic(
                scenario.snapshot_interval, self._take_snapshots)
        for node in self.nodes.values():
            node.start_tasks()

    # -- recovery ---------------------------------------------------------------
    def _record(self, kind: str, node: Node, value: int) -> None:
        if self.trace is not None:
            self.trace.append((self.sim.now, kind, node.replica, node.rank,
                               -1, value))

    def _kill(self, nid: int) -> None:
        self._faults_pending -= 1
        node = self.nodes[nid]
        if not node.alive:
            return
        self._record("kill", node, node.failures_survived)
        self._kills += 1
        node.die()

    def _on_death(self, detector: Node, dead: Node) -> None:
        self._record("detect", dead, detector.replica * self.scenario.
                     nodes_per_replica + detector.rank)
        self._detections += 1
        revive_at = self.sim.now + self.boot
        self._revive_at[dead.node_id] = revive_at
        self.sim.schedule_at(revive_at, self._revive, dead.node_id)

    def _revive(self, nid: int) -> None:
        node = self.nodes[nid]
        self._revive_at.pop(nid, None)
        if node.alive:
            return
        node.revive()
        self.monitor.notify_revived(nid)
        self._record("revive", node, node.failures_survived)
        self._revives += 1
        strong = self.scenario.scheme == "strong"
        for task in node.tasks:
            target = self._snapshot[task.task_id] if strong else 0
            task.restore(target)
            self._restores += 1
            if self.trace is not None:
                self.trace.append((self.sim.now, "restore", node.replica,
                                   node.rank, task.task_id, target))

    def _take_snapshots(self) -> None:
        snap = self._snapshot
        for task in self.tasks:
            if task.state is not TaskState.DEAD:
                snap[task.task_id] = task.progress

    # -- observability -----------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Decomposition-invariant counters of this partition.

        Only quantities that sum across partitions to exactly the
        1-partition run's totals are exported: transport message/byte
        accounting (counted once, in the partition owning the sender or the
        delivery), task iteration totals, and fault/recovery counts (each
        fault is owned by exactly one partition).  Simulator event counts are
        deliberately excluded — boundary stamps are injected as individual
        events but delivered batched locally, so they differ across
        decompositions.  A fresh registry per call keeps non-monotone values
        (task progress drops on weak restore) honest.
        """
        m = MetricsRegistry()
        t = self.transport
        m.counter("transport.messages_sent").set_total(t.messages_sent)
        m.counter("transport.messages_delivered").set_total(
            t.messages_delivered)
        m.counter("transport.messages_dropped").set_total(t.messages_dropped)
        for kind, n in t.sent_by_kind.items():
            m.counter("transport.messages_sent_by_kind", kind=kind).set_total(n)
        for kind, b in t.bytes_by_kind.items():
            m.counter("transport.bytes_sent", kind=kind).set_total(b)
        # batched_messages (per message) is invariant; batch_events (one per
        # batched send) is not — each partition's heartbeat monitor emits its
        # own batches — so only the former is exported.
        m.counter("transport.batched_messages").set_total(t.batched_messages)
        m.counter("tasks.iterations_completed").set_total(
            sum(task.progress for task in self.tasks))
        m.counter("tasks.restores").set_total(self._restores)
        m.counter("nodes.kills").set_total(self._kills)
        m.counter("nodes.detections").set_total(self._detections)
        m.counter("nodes.revives").set_total(self._revives)
        return m.snapshot()

    def _sample_series(self) -> None:
        self.series.sample(self.sim.now, self.metrics_snapshot())

    # -- window protocol ---------------------------------------------------------
    def earliest_output_time(self, now: float) -> float:
        """Conservative lower bound on the next cross-partition delivery."""
        if not self.edge_tasks:
            return _INF
        best = _INF
        boot_floor = now + self.boot
        for task in self.edge_tasks:
            state = task.state
            if state is TaskState.COMPUTING:
                ev = task._compute_event
                cand = ev.time if ev is not None else now
                if self._faults_pending or self._revive_at:
                    cand = min(cand, boot_floor)
            elif state is TaskState.DEAD:
                cand = self._revive_at.get(task.node.node_id, boot_floor)
            else:  # IDLE / PAUSED: must finish an iteration (or be revived)
                cand = now + self.min_iter
                if self._faults_pending or self._revive_at:
                    cand = min(cand, boot_floor)
            if cand < best:
                best = cand
        return best + self.stamp_delay

    def run_window(self, horizon: float) -> list[tuple]:
        """Process every event strictly before ``horizon``; drain the outbox."""
        self.sim.run(until=math.nextafter(horizon, -_INF))
        out = self.transport.outbox
        self.transport.outbox = []
        return out

    @property
    def at_cap(self) -> bool:
        return self._soa.all_at_cap

    def owns(self, nid: int) -> bool:
        return nid in self.nodes

    def finish(self) -> None:
        self.monitor.stop()
        if self._snap_event is not None:
            self._snap_event.cancel()
        if self._series_event is not None:
            self._series_event.cancel()
            self._series_event = None
        if self.series is not None:
            # Final sample so every partition's series covers the horizon.
            self.series.sample(self.sim.now, self.metrics_snapshot())


# ---------------------------------------------------------------------------
# Coordinators
# ---------------------------------------------------------------------------

def _format_trace(records: list[tuple]) -> list[str]:
    """Canonical merged trace: one line per record, total-order sorted.

    ``repr(float)`` round-trips exactly, so identical event instants render
    to identical bytes regardless of which partition produced them.
    """
    records.sort()
    return [f"{t!r} {kind} r{rep} n{rank} t{task} v{val}"
            for t, kind, rep, rank, task, val in records]


def _drive(partitions: list[_Partition], scenario: ParallelScenario,
           ) -> tuple[int, float, bool]:
    """The conservative window loop over in-process partitions.

    Always runs the full ``scenario.horizon``: the end instant must not
    depend on window placement (which varies with the partition count), or
    late events — a fault landing after the last task hits its cap — would
    fire in one decomposition and not another.
    """
    windows = 0
    now = 0.0
    pending: list[tuple] = []
    for part in partitions:
        pending.extend(part.transport.outbox)
        part.transport.outbox = []
    while now < scenario.horizon:
        if pending:
            for part in partitions:
                mine = [e for e in pending if part.owns(e[1])]
                if mine:
                    part.transport.inject(mine)
            pending = []
        horizon = min(min(p.earliest_output_time(now) for p in partitions),
                      scenario.horizon)
        if horizon <= now:  # defensive: never stall
            horizon = math.nextafter(now, _INF)
        for part in partitions:
            pending.extend(part.run_window(horizon))
        now = horizon
        windows += 1
    completed = all(p.at_cap for p in partitions)
    for part in partitions:
        part.finish()
    sim_time = max(p.sim.now for p in partitions)
    return windows, sim_time, completed


def _run_inprocess(scenario: ParallelScenario, n_partitions: int,
                   trace: bool, collect_metrics: bool = False,
                   series_interval: float | None = None,
                   ) -> tuple[ParallelRunReport, list[tuple]]:
    parts = [_Partition(scenario, i, n_partitions, trace=trace,
                        series_interval=series_interval)
             for i in range(n_partitions)]
    windows, sim_time, completed = _drive(parts, scenario)
    records: list[tuple] = []
    if trace:
        for p in parts:
            records.extend(p.trace or [])
    report = ParallelRunReport(
        completed=completed, sim_time=sim_time,
        events_processed=sum(p.sim.events_processed for p in parts),
        windows=windows, wall_s=0.0, cpu_count=os.cpu_count() or 1,
        requested_workers=1, effective_workers=1, partitions=n_partitions,
        per_partition_events=[p.sim.events_processed for p in parts])
    if collect_metrics:
        report.partition_metrics = [p.metrics_snapshot() for p in parts]
    if series_interval:
        report.series = merge_series(
            [p.series.to_dict() for p in parts if p.series is not None])
    return report, records


def _worker_main(conn, scenario: ParallelScenario, indices: list[int],
                 n_partitions: int, trace: bool,
                 collect_metrics: bool = False,
                 series_interval: float | None = None) -> None:
    """Child process: own a group of partitions, obey barrier commands."""
    parts = [_Partition(scenario, i, n_partitions, trace=trace,
                        series_interval=series_interval)
             for i in indices]
    try:
        while True:
            cmd, payload = conn.recv()
            if cmd == "outbox":
                out = []
                for p in parts:
                    out.extend(p.transport.outbox)
                    p.transport.outbox = []
                conn.send(out)
            elif cmd == "inject":
                for p in parts:
                    mine = [e for e in payload if p.owns(e[1])]
                    if mine:
                        p.transport.inject(mine)
                conn.send(True)
            elif cmd == "eot":
                conn.send(min((p.earliest_output_time(payload)
                               for p in parts), default=_INF))
            elif cmd == "run":
                out = []
                for p in parts:
                    out.extend(p.run_window(payload))
                conn.send(out)
            elif cmd == "stop":
                for p in parts:
                    p.finish()
                records = []
                if trace:
                    for p in parts:
                        records.extend(p.trace or [])
                # Per-partition observability rides home on the stop reply,
                # tagged with the partition index so the parent can restore
                # global partition order across worker groups.
                obs = [(p.index,
                        p.metrics_snapshot() if collect_metrics else None,
                        p.series.to_dict() if p.series is not None else None)
                       for p in parts]
                conn.send((sum(p.sim.events_processed for p in parts),
                           [p.sim.events_processed for p in parts],
                           max(p.sim.now for p in parts),
                           all(p.at_cap for p in parts), records, obs))
                return
    finally:
        conn.close()


def _run_multiprocess(scenario: ParallelScenario, n_partitions: int,
                      n_workers: int, trace: bool,
                      collect_metrics: bool = False,
                      series_interval: float | None = None,
                      ) -> tuple[ParallelRunReport, list[tuple]]:
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    groups: list[list[int]] = [[] for _ in range(n_workers)]
    for i in range(n_partitions):
        groups[i % n_workers].append(i)
    pipes, procs = [], []
    for g in groups:
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_worker_main,
                           args=(child, scenario, g, n_partitions, trace,
                                 collect_metrics, series_interval))
        proc.start()
        child.close()
        pipes.append(parent)
        procs.append(proc)

    def broadcast(cmd, payload=None):
        for c in pipes:
            c.send((cmd, payload))
        return [c.recv() for c in pipes]

    try:
        windows = 0
        now = 0.0
        pending: list[tuple] = []
        for out in broadcast("outbox"):
            pending.extend(out)
        while now < scenario.horizon:
            if pending:
                broadcast("inject", pending)
                pending = []
            horizon = min(min(broadcast("eot", now)), scenario.horizon)
            if horizon <= now:
                horizon = math.nextafter(now, _INF)
            for out in broadcast("run", horizon):
                pending.extend(out)
            now = horizon
            windows += 1
        finals = broadcast("stop")
    finally:
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
    events = sum(f[0] for f in finals)
    per_part = [e for f in finals for e in f[1]]
    sim_time = max(f[2] for f in finals)
    completed = all(f[3] for f in finals)
    records = [r for f in finals for r in f[4]]
    obs = sorted((o for f in finals for o in f[5]), key=lambda o: o[0])
    report = ParallelRunReport(
        completed=completed, sim_time=sim_time, events_processed=events,
        windows=windows, wall_s=0.0, cpu_count=os.cpu_count() or 1,
        requested_workers=n_workers, effective_workers=n_workers,
        partitions=n_partitions, per_partition_events=per_part)
    if collect_metrics:
        report.partition_metrics = [snap for _, snap, _ in obs]
    if series_interval:
        report.series = merge_series(
            [series for _, _, series in obs if series is not None])
    return report, records


def run_parallel(scenario: ParallelScenario, *, partitions: int = 1,
                 workers: int | None = 1, trace: bool = False,
                 force_processes: bool = False,
                 collect_metrics: bool = False,
                 series_interval: float | None = None) -> ParallelRunReport:
    """Run a :class:`ParallelScenario` over ``partitions`` rank ranges.

    ``workers`` is the *requested* process count; like the campaign runner it
    is clamped to ``min(workers, partitions, cpu_count)`` and both numbers
    are recorded in the report.  ``workers <= 1`` (after clamping) runs every
    partition in-process — same windows, same trace, no fork — which is what
    1-CPU runners exercise.  ``trace=True`` collects the canonical merged
    event trace (byte-identical across any partition/worker decomposition).

    ``collect_metrics=True`` ships each partition's decomposition-invariant
    counter snapshot home (``report.partition_metrics``, partition order)
    and merges them (``report.metrics``) — the merged snapshot equals the
    1-partition run's snapshot for any decomposition.  ``series_interval``
    additionally samples those counters on each partition's clock every
    ``series_interval`` simulated seconds; the merged series lands on
    ``report.series``.  Sampling adds timer events to each partition's queue
    (so ``events_processed`` grows by the tick count) but reads counters
    passively — the canonical trace and its digest are unchanged.
    """
    if partitions < 1:
        raise ConfigurationError("partitions must be >= 1")
    if partitions > scenario.nodes_per_replica:
        raise ConfigurationError("more partitions than ranks")
    requested = workers or 1
    eff = effective_parallel_workers(requested, partitions)
    if force_processes:
        # Test hook: exercise the fork/pipe machinery even where the CPU
        # clamp would fall back in-process (1-CPU CI runners).
        eff = min(requested, partitions)
    t0 = time.perf_counter()
    if eff <= 1:
        report, records = _run_inprocess(scenario, partitions, trace,
                                         collect_metrics, series_interval)
    else:
        report, records = _run_multiprocess(scenario, partitions, eff, trace,
                                            collect_metrics, series_interval)
    report.wall_s = time.perf_counter() - t0
    if collect_metrics and report.partition_metrics is not None:
        report.metrics = merge_snapshots(report.partition_metrics)
    report.requested_workers = requested
    report.effective_workers = eff
    if trace:
        lines = _format_trace(records)
        report.trace = lines
        digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
        report.trace_digest = digest
    return report
