"""Opt-in space-partitioned parallel DES mode (conservative lookahead).

The single-process :class:`~repro.core.framework.ACR` run is the reference
semantics: one event queue, one global protocol actor, bit-identical traces.
This module parallelizes the layer that dominates paper-scale runs — the
*distributed runtime* of nodes, ring tasks, dependency stamps, buddy
heartbeats, hard faults, and partition-local detect/restart recovery — by
splitting the rank range into contiguous partitions, each with its own
:class:`~repro.runtime.des.Simulator`, transport, and heartbeat monitor.

Why ranks: buddy pairs are rank-aligned across the two replicas, so a
partition that owns ranks ``[lo, hi)`` of *both* replicas keeps every
heartbeat, failure detection, and spare takeover local.  The only
cross-partition traffic is the dependency-stamp fan-out of *edge tasks* (the
ring wraps at partition boundaries), which makes a conservative
time-window scheme practical:

* every stamp crosses the boundary with the same transport delay ``δ``
  (latency + nbytes/bandwidth — the exact float the single-process path
  computes);
* at each window barrier every partition promises its **earliest output
  time**: the earliest instant any of its edge tasks could next announce a
  stamp (a computing task announces no earlier than its scheduled completion;
  an idle or paused task must first finish an iteration, ≥ ``min_iter``
  away; a dead task cannot announce before its revival, ≥ ``spare_boot``
  after a detection that has not happened yet);
* the next window runs every partition strictly *before* ``H = min
  promise + δ`` (events with time < H — implemented exactly with
  ``math.nextafter``), so every boundary stamp is exchanged and injected
  before any receiver could reach its delivery instant.

Two multiprocess data planes implement that window protocol:

* **shm** (default on fork platforms, ≥2 effective workers): one
  :class:`~repro.runtime.soa.ShmArena` laid out *before* forking holds every
  partition's progress/liveness struct-of-arrays plus fixed-dtype numpy
  record rings, one per ordered pair of rank-adjacent partitions.  Workers
  inherit the mapping, push boundary stamps into the rings zero-copy, and
  self-synchronize through a scalar-only ``mp.Barrier`` — two waits per
  window, no per-window pipe traffic, no pickling.  The controller only
  collects final results and reads completion straight out of shared memory.
* **pipes** (fallback: ``shared_memory=False``, or no ``fork`` start
  method): the original command loop, with ``inject`` payloads routed to the
  worker owning the destination partition instead of broadcast.

On top of either plane, ``coordinated_interval`` runs the coordinated
checkpoint-consensus protocol *partitioned*: at every round instant
``T_k = k·interval`` each partition computes its local ``(min, max)`` live
progress bounds vectorized, the bounds merge through the same
conservative-window barrier (:func:`repro.core.consensus.
merge_progress_bounds` — the identical decision rule the message-passing
tree reduction uses), and the global *min* becomes the per-task checkpoint
line that ``scheme="coordinated"`` restores from.  Round instants are
multiplications (``interval * k``), window horizons clamp to them, and the
capture cut is "events strictly before ``T_k``" — all decomposition-
invariant, so global coordinated checkpoints no longer force the
single-process path.

Determinism contract: all randomness flows from SHA-256-derived
:class:`~repro.util.rng.RngStream` draws keyed by ``(seed, name)`` and from
the per-``(seed, task, iteration)`` jitter hash — none of it depends on the
partition count or on which OS process runs a partition.  Event interleaving
*across* partitions is unconstrained, but partitions only interact through
timestamped stamps whose delivery instants are identical floats in every
decomposition, so the merged, canonically-sorted trace is byte-identical for
any ``partitions × workers × data-plane`` choice (asserted in
``tests/harness/test_parallel.py``).  See docs/performance.md "Scaling to
paper-size runs" for the shared-memory lifecycle and fallback rules.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable

import numpy as np

from repro.apps.base import _hash_unit
from repro.core.consensus import merge_progress_bounds
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.series import TimeSeriesRecorder, merge_series
from repro.runtime.des import Simulator
from repro.runtime.heartbeat import HeartbeatMonitor
from repro.runtime.messages import Transport
from repro.runtime.node import Node
from repro.runtime.soa import ShmArena, TaskProgressArray
from repro.runtime.task import DEP_STAMP_NBYTES, Task, TaskState
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

_INF = float("inf")

#: Sentinel for "no live tasks" in the shared consensus slots (int64-safe).
_NO_BOUND = 2 ** 62

#: Test hook: ``(worker_index, window_index)`` makes that worker hard-exit
#: right before running that window (fork inherits the patched value).
_TEST_CRASH: tuple[int, int] | None = None


class ParallelWorkerError(RuntimeError):
    """A parallel worker died or failed mid-run.

    Carries the partition indices the failed worker owned so callers can
    report *which* slice of the rank range was lost instead of hanging on
    a barrier or a pipe read.
    """

    def __init__(self, message: str, *, partitions: list[int] | None = None):
        super().__init__(message)
        self.partitions = partitions or []


# ---------------------------------------------------------------------------
# Scenario & report
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ParallelScenario:
    """A seeded forward-path workload the partitioned mode can simulate.

    ``scheme`` picks the recovery analogue of the paper's spectrum:
    ``"strong"`` restores a revived node's tasks to their last periodic
    partition-local snapshot stamp; ``"weak"`` restarts them from iteration
    0; ``"coordinated"`` restores to the last globally-decided coordinated
    checkpoint line (requires ``coordinated_interval``).

    ``coordinated_interval`` (any scheme) runs a partitioned
    checkpoint-consensus round at every ``T_k = k·interval``:
    per-partition vectorized ``(min, max)`` live-progress bounds merged to
    the global min.  ``coordinated_pause`` additionally stalls every live
    task at its progress for that long after each round — the modeled cost
    of quiescing and writing the coordinated checkpoint (in-flight
    iterations finish; only *new* iterations wait).
    """

    nodes_per_replica: int
    total_iterations: int
    tasks_per_node: int = 1
    iteration_seconds: float = 0.05
    heartbeat_interval: float = 1.0
    heartbeat_timeout_factor: float = 4.0
    scheme: str = "strong"
    snapshot_interval: float = 5.0
    n_faults: int = 0
    fault_window: tuple[float, float] = (0.2, 0.6)
    spare_boot_time: float = 2.0
    horizon: float = 1_000.0
    seed: int = 0
    coordinated_interval: float | None = None
    coordinated_pause: float = 0.0

    def __post_init__(self) -> None:
        if self.nodes_per_replica < 1 or self.tasks_per_node < 1:
            raise ConfigurationError("need >= 1 node and >= 1 task per node")
        if self.scheme not in ("strong", "weak", "coordinated"):
            raise ConfigurationError(f"unknown scheme {self.scheme!r}")
        if self.iteration_seconds <= 0 or self.snapshot_interval <= 0:
            raise ConfigurationError("iteration/snapshot times must be > 0")
        if self.scheme == "coordinated" and self.coordinated_interval is None:
            raise ConfigurationError(
                "scheme='coordinated' needs coordinated_interval")
        if self.coordinated_interval is not None \
                and self.coordinated_interval <= 0:
            raise ConfigurationError("coordinated_interval must be > 0")
        if self.coordinated_pause < 0:
            raise ConfigurationError("coordinated_pause must be >= 0")
        if self.coordinated_interval is not None \
                and self.coordinated_pause >= self.coordinated_interval:
            raise ConfigurationError(
                "coordinated_pause must be < coordinated_interval")

    @property
    def total_tasks(self) -> int:
        return self.nodes_per_replica * self.tasks_per_node


@dataclass
class ParallelRunReport:
    """Outcome + worker accounting for one partitioned run.

    Mirrors the campaign runner's ``effective_workers`` clamp: the requested
    worker count is recorded next to what actually ran (``min(requested,
    partitions, cpu_count)``) so reports and bench JSON can distinguish
    "asked for 8" from "got 1 on this box".
    """

    completed: bool
    sim_time: float
    events_processed: int
    windows: int
    cpu_count: int
    requested_workers: int
    effective_workers: int
    partitions: int
    #: Wall-clock of the whole run; populated exactly once by
    #: :func:`run_parallel` (constructors leave it 0.0).
    wall_s: float = 0.0
    #: Wall-clock of the window loop alone (construction and teardown
    #: excluded) — the number data-plane comparisons should use.
    loop_wall_s: float = 0.0
    #: Which data plane ran: ``inprocess``, ``inprocess-shm``, ``pipes``,
    #: or ``shm``.
    data_plane: str = "inprocess"
    #: Coordinated checkpoint-consensus rounds executed (0 when
    #: ``coordinated_interval`` is unset).
    consensus_rounds: int = 0
    per_partition_events: list[int] = field(default_factory=list)
    #: Total seconds each worker spent in barrier waits (shm plane only).
    barrier_wait_s: list[float] | None = None
    #: Per-window barrier overhead: max across workers of that window's
    #: summed waits (shm plane only).
    window_barrier_s: list[float] | None = None
    #: Per-worker peak RSS in MiB at worker exit (shm plane only).
    worker_peak_rss_mib: list[float] | None = None
    trace_digest: str | None = None
    trace: list[str] | None = None
    #: Merged decomposition-invariant metrics snapshot (``collect_metrics``);
    #: equal to the 1-partition run's snapshot for any decomposition.
    metrics: dict | None = None
    #: Per-partition snapshots in partition-index order (``collect_metrics``).
    partition_metrics: list[dict] | None = None
    #: Merged per-partition time series (``series_interval``); see
    #: :func:`repro.obs.series.merge_series`.
    series: dict | None = None


def effective_parallel_workers(requested: int | None, partitions: int) -> int:
    """The campaign clamp applied to partition workers."""
    return min(requested or 1, partitions, os.cpu_count() or 1)


def _fork_available() -> bool:
    import multiprocessing as mp

    return "fork" in mp.get_all_start_methods()


def _partition_bounds(n: int, partitions: int, index: int) -> tuple[int, int]:
    """Rank range ``[lo, hi)`` of partition ``index`` (ceil division)."""
    per = -(-n // partitions)
    lo = min(index * per, n)
    return lo, min(lo + per, n)


def fault_plan(scenario: ParallelScenario) -> list[tuple[float, int, int]]:
    """Seeded hard-fault schedule: ``(time, replica, rank)``, distinct ranks.

    Drawn from one named stream, so every partition (and every worker
    process) derives the identical plan and schedules only its own ranks.
    """
    if scenario.n_faults == 0:
        return []
    n = scenario.nodes_per_replica
    if scenario.n_faults > n:
        raise ConfigurationError("more faults than ranks")
    rng = RngStream(scenario.seed, "parallel/faults")
    est_end = scenario.horizon
    lo, hi = scenario.fault_window
    times = rng.uniform(lo * est_end, hi * est_end, size=scenario.n_faults)
    ranks = rng.choice(n, size=scenario.n_faults, replace=False)
    replicas = rng.integers(0, 2, size=scenario.n_faults)
    plan = [(float(t), int(rep), int(rk))
            for t, rep, rk in zip(times, replicas, ranks)]
    plan.sort()
    return plan


# ---------------------------------------------------------------------------
# Shared-memory data plane
# ---------------------------------------------------------------------------

#: One boundary stamp, fixed dtype (48 bytes): exactly the tuple the pipe
#: path pickles, as a record the receiver reads without deserializing.
_RING_DTYPE = np.dtype([
    ("t", np.float64), ("dst", np.int64), ("to_task", np.int64),
    ("from_task", np.int64), ("stamp", np.int64), ("epoch", np.int64)])


class _SharedPlane:
    """One :class:`ShmArena` holding every partition's hot state + rings.

    Layout is planned (fixed offsets) in the controller *before* forking;
    workers inherit the mapping and build numpy views at the same offsets,
    so no attach-by-name, no copies, and the resource tracker sees exactly
    one owner.  Contents:

    * ``eot``   — f8[P]: each partition's per-window earliest-output-time
      promise (scalar barrier payload).
    * ``cons``  — i8[P]: each partition's consensus sub-round min bound
      (``_NO_BOUND`` when it has no live tasks).
    * rings     — one ``_RING_DTYPE[slots]`` record ring plus an i8 count
      per *ordered pair of rank-adjacent partitions* (the task ring wraps,
      so only adjacent partitions ever exchange stamps).  Single writer
      (the source partition), single reader (the destination), with reads
      and writes separated by the window barrier — no locks needed.
    * per partition — the progress / alive / last_seen / failures arrays
      that :class:`TaskProgressArray` and the heartbeat monitor's
      :class:`~repro.runtime.soa.NodeStateArrays` normally allocate
      privately.

    Ring capacity defaults to 1024 stamps per direction per window and is
    tunable via ``REPRO_PARALLEL_RING_SLOTS``; overflow raises a clean
    :class:`ParallelWorkerError` instead of corrupting neighbours.
    """

    def __init__(self, scenario: ParallelScenario, partitions: int, *,
                 ring_slots: int | None = None):
        n = scenario.nodes_per_replica
        self.n = n
        self.partitions = partitions
        self.per = -(-n // partitions)
        if ring_slots is None:
            ring_slots = int(os.environ.get("REPRO_PARALLEL_RING_SLOTS",
                                            "1024"))
        if ring_slots < 1:
            raise ConfigurationError("ring_slots must be >= 1")
        self.slots = ring_slots

        bounds = [_partition_bounds(n, partitions, i)
                  for i in range(partitions)]
        pair_set: set[tuple[int, int]] = set()
        for i, (lo, hi) in enumerate(bounds):
            if lo >= hi:
                continue
            for rank in ((lo - 1) % n, hi % n):
                j = rank // self.per
                if j != i:
                    pair_set.add((i, j))
                    pair_set.add((j, i))
        pairs = sorted(pair_set)
        self.ring_index: dict[tuple[int, int], int] = {
            p: k for k, p in enumerate(pairs)}
        self._inbound: list[list[int]] = [
            [self.ring_index[(src, dst)] for (src, dst) in pairs
             if dst == d] for d in range(partitions)]
        n_rings = len(pairs)

        offset = 0

        def take(nbytes: int) -> int:
            nonlocal offset
            start = (offset + 7) & ~7
            offset = start + nbytes
            return start

        self._counts_off = take(max(n_rings, 1) * 8)
        self._rings_off = take(max(n_rings, 1) * ring_slots
                               * _RING_DTYPE.itemsize)
        self._eot_off = take(partitions * 8)
        self._cons_off = take(partitions * 8)
        tpn = scenario.tasks_per_node
        self._node_offs: list[tuple[int, int, int]] = []
        self._prog_offs: list[tuple[int, int]] = []
        for lo, hi in bounds:
            m = 2 * (hi - lo)
            t = m * tpn
            self._node_offs.append((take(m), take(m * 8), take(m * 8)))
            self._prog_offs.append((take(t * 8), t))
        self._n_rings = n_rings
        self.arena = ShmArena.create(offset)
        self.counts = self.arena.view(self._counts_off, max(n_rings, 1),
                                      np.int64)
        self.rings = self.arena.view(self._rings_off,
                                     (max(n_rings, 1), ring_slots),
                                     _RING_DTYPE)
        self.eot = self.arena.view(self._eot_off, partitions, np.float64)
        self.cons = self.arena.view(self._cons_off, partitions, np.int64)

    # -- per-partition state slabs ----------------------------------------------
    def partition_of(self, nid: int) -> int:
        return (nid % self.n) // self.per

    def progress_view(self, index: int) -> np.ndarray:
        off, count = self._prog_offs[index]
        return self.arena.view(off, count, np.int64)

    def node_buffers(self, index: int) -> tuple[np.ndarray, np.ndarray,
                                                np.ndarray]:
        alive_off, seen_off, fail_off = self._node_offs[index]
        lo, hi = _partition_bounds(self.n, self.partitions, index)
        m = 2 * (hi - lo)
        return (self.arena.view(alive_off, m, np.bool_),
                self.arena.view(seen_off, m, np.float64),
                self.arena.view(fail_off, m, np.int64))

    def all_at_cap(self, cap: int) -> bool:
        """Completion read straight from shared memory (controller side)."""
        return all(bool((self.progress_view(i) >= cap).all())
                   for i in range(self.partitions))

    # -- ring exchange ------------------------------------------------------------
    def push(self, src: int, t: float, dst: int, to_task: int,
             from_task: int, stamp: int, epoch: int) -> None:
        ring = self.ring_index.get((src, self.partition_of(dst)))
        if ring is None:  # pragma: no cover - ring topology guarantees this
            raise ParallelWorkerError(
                f"stamp from partition {src} to non-adjacent node {dst}",
                partitions=[src])
        count = int(self.counts[ring])
        if count >= self.slots:
            raise ParallelWorkerError(
                f"ring {src}->{self.partition_of(dst)} overflow at "
                f"{self.slots} stamps/window; raise "
                f"REPRO_PARALLEL_RING_SLOTS", partitions=[src])
        rec = self.rings[ring, count]
        rec["t"] = t
        rec["dst"] = dst
        rec["to_task"] = to_task
        rec["from_task"] = from_task
        rec["stamp"] = stamp
        rec["epoch"] = epoch
        self.counts[ring] = count + 1

    def drain(self, dst: int) -> list[tuple]:
        """Pop every inbound stamp for partition ``dst`` (resets counts)."""
        out: list[tuple] = []
        for ring in self._inbound[dst]:
            count = int(self.counts[ring])
            if count:
                block = self.rings[ring, :count]
                out.extend(zip(block["t"].tolist(), block["dst"].tolist(),
                               block["to_task"].tolist(),
                               block["from_task"].tolist(),
                               block["stamp"].tolist(),
                               block["epoch"].tolist()))
                self.counts[ring] = 0
        return out

    # -- lifecycle ----------------------------------------------------------------
    def release(self) -> None:
        """Drop this process's views and detach the mapping."""
        self.counts = self.rings = self.eot = self.cons = None  # type: ignore
        self.arena.close()

    def destroy(self) -> None:
        """Controller teardown: detach and remove the segment."""
        self.release()
        self.arena.unlink()


class _RoundClock:
    """Deterministic coordinated-round instants ``T_k = interval * k``.

    Multiplication (not accumulation) keeps every ``T_k`` the identical
    float in every partition, worker, and decomposition — the window loop
    clamps horizons to ``next_time`` so each round instant is hit exactly.
    """

    __slots__ = ("interval", "index")

    def __init__(self, interval: float | None):
        self.interval = interval
        self.index = 1

    @property
    def next_time(self) -> float:
        if self.interval is None:
            return _INF
        return self.interval * self.index

    def advance(self) -> None:
        self.index += 1


# ---------------------------------------------------------------------------
# Partition internals
# ---------------------------------------------------------------------------

class _PartitionTransport(Transport):
    """Transport that diverts boundary stamp fan-outs into an outbox.

    Local targets ride the normal batched delivery event; foreign targets
    are recorded as ``(deliver_time, dst, to_task, from_task, stamp, epoch)``
    and injected into the owning partition at the next window barrier — with
    the same delay expression, so delivery instants are bit-identical to the
    single-partition run.  With a shared plane bound, foreign targets go
    straight into the destination partition's record ring (``ring_push``)
    instead of the pickled outbox.
    """

    def __init__(self, sim: Simulator, **kwargs):
        super().__init__(sim, **kwargs)
        self.outbox: list[tuple] = []
        self.ring_push: Callable[
            [float, int, int, int, int, int], None] | None = None
        self._local_nodes: frozenset[int] = frozenset()

    def seal(self) -> None:
        self._local_nodes = frozenset(self._handlers)

    def send_stamps(self, src, targets, from_task, stamp, epoch, *, nbytes):
        local_nodes = self._local_nodes
        for dst, _ in targets:
            if dst not in local_nodes:
                break
        else:
            super().send_stamps(src, targets, from_task, stamp, epoch,
                                nbytes=nbytes)
            return
        if not self._alive.get(src, False):
            self.messages_dropped += len(targets)
            return
        local = [t for t in targets if t[0] in local_nodes]
        foreign = [t for t in targets if t[0] not in local_nodes]
        n = len(targets)
        self.messages_sent += n
        self.sent_by_kind["app"] += n
        self.bytes_by_kind["app"] += n * nbytes
        self.batched_messages += n
        self.batch_events += 1
        delay = self.small_delay(nbytes)
        if local:
            self.sim.post(delay, self._deliver_stamps, local, from_task,
                          stamp, epoch)
        deliver_time = self.sim.now + delay
        ring_push = self.ring_push
        if ring_push is not None:
            for dst, to_task in foreign:
                ring_push(deliver_time, dst, to_task, from_task, stamp, epoch)
        else:
            for dst, to_task in foreign:
                self.outbox.append(
                    (deliver_time, dst, to_task, from_task, stamp, epoch))

    def inject(self, entries: list[tuple]) -> None:
        """Schedule inbound boundary stamps at their exact delivery times."""
        for t, dst, to_task, from_task, stamp, epoch in entries:
            self.sim.schedule_at(t, self._deliver_stamps, [(dst, to_task)],
                                 from_task, stamp, epoch)


class _TracedNode(Node):
    """Node with trace hooks and the harness's restart-resync reply.

    A task that rolls back resets its dependency view; if its neighbors are
    already paused at the iteration cap they would never announce again and
    the restored task would hang — the partition-local analogue of the §2.2
    resend problem.  The reply models the missing half: on receiving a stamp
    *behind* our own progress, re-announce one iteration-time later.  The
    fixed ``min_iter`` delay keeps the conservative promise sound (no
    partition can emit a boundary stamp earlier than ``T + min_iter``
    from an idle/paused state).
    """

    __trace__: list[tuple] | None = None  # set per-instance by the partition
    __resync__: float = 0.0  # min_iter, set per-instance by the partition

    def on_task_progress(self, task: Task) -> None:
        tr = self.__trace__
        if tr is not None:
            tr.append((self.sim.now, "iter", self.replica, self.rank,
                       task.task_id, task.progress))
        super().on_task_progress(task)

    def _on_stamp(self, to_task: int, from_task: int, stamp: int,
                  epoch: int) -> None:
        if not self.alive:
            return
        task = self._task_by_id.get(to_task)
        if task is None:
            return
        # The framework's rollbacks are global, so task epochs advance in
        # lockstep and the epoch filter cleanly flushes pre-rollback traffic.
        # Partition-local restarts desynchronize epochs (only the revived
        # node's tasks bump), which would make a restored task drop every
        # stamp from its never-rolled-back neighbors.  Stamps in this model
        # are idempotent max-progress facts — a neighbor's completed
        # iteration stays completed across its (deterministic) re-execution —
        # so clamping the carried epoch to the receiver's is sound.
        if epoch < task.epoch:
            epoch = task.epoch
        task.on_dep_message(from_task, stamp, epoch)
        # A stamp more than one iteration behind our progress cannot occur in
        # the dependency-gated steady state (neighbors trail by at most one)
        # — it is the signature of a rollback on the sender's side.
        if stamp < task.progress - 1 and task.state is not TaskState.DEAD:
            self.sim.schedule(self.__resync__, self._resync_reply,
                              task, task.epoch)

    def _resync_reply(self, task: Task, epoch: int) -> None:
        if self.alive and epoch == task.epoch \
                and task.state is not TaskState.DEAD:
            task._announce_progress()


class _Partition:
    """One rank range of both replicas with its own simulator + monitor."""

    def __init__(self, scenario: ParallelScenario, index: int,
                 partitions: int, *, trace: bool,
                 series_interval: float | None = None,
                 plane: _SharedPlane | None = None):
        self.scenario = scenario
        self.index = index
        n = scenario.nodes_per_replica
        self.lo, self.hi = _partition_bounds(n, partitions, index)
        self.sim = Simulator()
        self.transport = _PartitionTransport(self.sim)
        if plane is not None:
            self.transport.ring_push = partial(plane.push, index)
        self.trace: list[tuple] | None = [] if trace else None
        self.min_iter = scenario.iteration_seconds
        self.boot = scenario.spare_boot_time
        self.stamp_delay = self.transport.small_delay(DEP_STAMP_NBYTES)

        tpn = scenario.tasks_per_node
        total_tasks = scenario.total_tasks
        seed = scenario.seed
        base = scenario.iteration_seconds

        def iteration_time(task_id: int, iteration: int) -> float:
            # Same jitter model as ReplicaApp.iteration_time — keyed only by
            # (seed, task, iteration), hence partition-independent.
            return base * (1.0 + 0.05 * _hash_unit(seed, task_id, iteration))

        def node_id(replica: int, rank: int) -> int:
            return replica * n + rank

        self.nodes: dict[int, Node] = {}
        self.tasks: list[Task] = []
        self.edge_tasks: list[Task] = []
        local_ranks = range(self.lo, self.hi)
        for replica in (0, 1):
            for rank in local_ranks:
                nid = node_id(replica, rank)
                node = _TracedNode(nid, replica, rank, self.sim, self.transport)
                node.__trace__ = self.trace
                node.__resync__ = self.min_iter
                self.nodes[nid] = node
                for j in range(tpn):
                    tid = rank * tpn + j
                    left = (tid - 1) % total_tasks
                    right = (tid + 1) % total_tasks
                    neighbors = [(node_id(replica, left // tpn), left),
                                 (node_id(replica, right // tpn), right)]
                    task = Task(tid, node, neighbors=neighbors,
                                iteration_time=iteration_time)
                    task.iteration_cap = scenario.total_iterations
                    node.add_task(task)
                    self.tasks.append(task)
                    if any(not (self.lo <= nd % n < self.hi)
                           for nd, _ in neighbors):
                        self.edge_tasks.append(task)
        self.transport.seal()

        progress_buffer = (plane.progress_view(index)
                           if plane is not None else None)
        self._soa = TaskProgressArray(len(self.tasks),
                                      progress_buffer=progress_buffer)
        for i, task in enumerate(self.tasks):
            task.bind_progress(self._soa, i)
        self._soa.set_cap(scenario.total_iterations)

        buddy_of = {}
        for rank in local_ranks:
            a, b = node_id(0, rank), node_id(1, rank)
            buddy_of[a] = b
            buddy_of[b] = a
        self.monitor = HeartbeatMonitor(
            list(self.nodes.values()), buddy_of,
            interval=scenario.heartbeat_interval,
            timeout_factor=scenario.heartbeat_timeout_factor,
            on_death=self._on_death,
            state_buffers=(plane.node_buffers(index)
                           if plane is not None else None))
        self._revive_at: dict[int, float] = {}
        #: Last periodic local snapshot stamp per task (strong scheme).
        self._snapshot: dict[int, int] = {t.task_id: 0 for t in self.tasks}
        self._snap_event = None
        self._faults_pending = 0
        #: Recovery accounting (decomposition-invariant: each fault is owned
        #: by exactly one partition in every decomposition).
        self._kills = 0
        self._detections = 0
        self._revives = 0
        self._restores = 0
        #: Coordinated-round state: per-task decided checkpoint line (the
        #: global min each round; tasks on a dead node keep their previous
        #: line), plus an exact dead-node count so the all-alive fast path
        #: avoids per-round mask gathers at 64Ki+ tasks.
        self._dead_now = 0
        self._task_ckpts = 0
        self._ckpt: np.ndarray | None = None
        self._task_pos: dict[tuple[int, int], int] = {}
        self._task_node_slots: np.ndarray | None = None
        if scenario.coordinated_interval is not None:
            self._ckpt = np.zeros(len(self.tasks), dtype=np.int64)
            self._task_pos = {
                (t.node.node_id, t.task_id): i
                for i, t in enumerate(self.tasks)}
        #: Streaming telemetry: a partition-local series sampled on this
        #: partition's own clock.  Samples are passive counter reads — no
        #: state mutation, no sends — so the canonical trace is unchanged.
        self.series: TimeSeriesRecorder | None = None
        self._series_event = None
        if series_interval:
            self.series = TimeSeriesRecorder(interval=series_interval)
            self._series_event = self.sim.schedule_periodic(
                series_interval, self._sample_series)

        for t, rep, rank in fault_plan(scenario):
            if self.lo <= rank < self.hi:
                self.sim.schedule_at(t, self._kill, node_id(rep, rank))
                self._faults_pending += 1

        self.monitor.start()
        node_soa = self.monitor.state_arrays
        if scenario.coordinated_interval is not None and node_soa is not None:
            self._task_node_slots = np.array(
                [node_soa.slot_of[t.node.node_id] for t in self.tasks],
                dtype=np.int64)
        if scenario.scheme == "strong":
            self._snap_event = self.sim.schedule_periodic(
                scenario.snapshot_interval, self._take_snapshots)
        for node in self.nodes.values():
            node.start_tasks()

    # -- recovery ---------------------------------------------------------------
    def _record(self, kind: str, node: Node, value: int) -> None:
        if self.trace is not None:
            self.trace.append((self.sim.now, kind, node.replica, node.rank,
                               -1, value))

    def _kill(self, nid: int) -> None:
        self._faults_pending -= 1
        node = self.nodes[nid]
        if not node.alive:
            return
        self._record("kill", node, node.failures_survived)
        self._kills += 1
        self._dead_now += 1
        node.die()

    def _on_death(self, detector: Node, dead: Node) -> None:
        self._record("detect", dead, detector.replica * self.scenario.
                     nodes_per_replica + detector.rank)
        self._detections += 1
        revive_at = self.sim.now + self.boot
        self._revive_at[dead.node_id] = revive_at
        self.sim.schedule_at(revive_at, self._revive, dead.node_id)

    def _revive(self, nid: int) -> None:
        node = self.nodes[nid]
        self._revive_at.pop(nid, None)
        if node.alive:
            return
        node.revive()
        self.monitor.notify_revived(nid)
        self._record("revive", node, node.failures_survived)
        self._revives += 1
        self._dead_now -= 1
        scheme = self.scenario.scheme
        for task in node.tasks:
            if scheme == "strong":
                target = self._snapshot[task.task_id]
            elif scheme == "coordinated":
                assert self._ckpt is not None
                target = int(self._ckpt[self._task_pos[(nid, task.task_id)]])
            else:
                target = 0
            task.restore(target)
            self._restores += 1
            if self.trace is not None:
                self.trace.append((self.sim.now, "restore", node.replica,
                                   node.rank, task.task_id, target))

    def _take_snapshots(self) -> None:
        snap = self._snapshot
        for task in self.tasks:
            if task.state is not TaskState.DEAD:
                snap[task.task_id] = task.progress

    # -- coordinated checkpoint-consensus sub-rounds ------------------------------
    def consensus_local(self) -> tuple[int, int] | None:
        """This partition's ``(min, max)`` live progress bounds at the cut.

        The vectorized local half of a consensus round: every event strictly
        before the round instant has run, so the struct-of-arrays stamps
        *are* the local state — no tree messages needed inside a partition.
        Returns ``None`` when no task here is on a live node.
        """
        if not self.tasks:
            return None
        prog = self._soa.progress
        if self._dead_now == 0:
            return int(prog.min()), int(prog.max())
        assert self._task_node_slots is not None
        node_soa = self.monitor.state_arrays
        assert node_soa is not None
        alive = node_soa.alive[self._task_node_slots]
        live = prog[alive]
        if live.size == 0:
            return None
        return int(live.min()), int(live.max())

    def apply_consensus(self, decided: int | None, now: float) -> None:
        """Commit a round: record the decided line for every live task.

        ``decided`` is the global min — every live task has completed it, so
        "checkpoint at iteration ``decided``" is coherent without waiting.
        Tasks on dead nodes keep their previous line (their state at that
        older line is what a revival can actually restore).
        ``coordinated_pause`` then stalls new iterations for the modeled
        write-out time; in-flight iterations finish normally.
        """
        if decided is None or self._ckpt is None or not self.tasks:
            return
        if self._dead_now == 0:
            self._ckpt[:] = decided
            alive = None
            captured = len(self.tasks)
        else:
            assert self._task_node_slots is not None
            node_soa = self.monitor.state_arrays
            assert node_soa is not None
            alive = node_soa.alive[self._task_node_slots]
            np.copyto(self._ckpt, decided, where=alive)
            captured = int(np.count_nonzero(alive))
        self._task_ckpts += captured
        if self.trace is not None:
            if alive is None:
                for task in self.tasks:
                    self.trace.append((now, "ckpt", task.node.replica,
                                       task.node.rank, task.task_id, decided))
            else:
                for task, ok in zip(self.tasks, alive.tolist()):
                    if ok:
                        self.trace.append(
                            (now, "ckpt", task.node.replica, task.node.rank,
                             task.task_id, decided))
        pause = self.scenario.coordinated_pause
        if pause > 0.0 and captured:
            for task in self.tasks:
                task.request_pause_at(None)
            self.sim.schedule_at(now + pause, self._coord_resume)

    def _coord_resume(self) -> None:
        for task in self.tasks:
            task.resume()

    # -- observability -----------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Decomposition-invariant counters of this partition.

        Only quantities that sum across partitions to exactly the
        1-partition run's totals are exported: transport message/byte
        accounting (counted once, in the partition owning the sender or the
        delivery), task iteration totals, fault/recovery counts (each fault
        is owned by exactly one partition), and per-task coordinated
        checkpoint captures.  Simulator event counts are deliberately
        excluded — boundary stamps are injected as individual events but
        delivered batched locally, so they differ across decompositions.  A
        fresh registry per call keeps non-monotone values (task progress
        drops on weak restore) honest.
        """
        m = MetricsRegistry()
        t = self.transport
        m.counter("transport.messages_sent").set_total(t.messages_sent)
        m.counter("transport.messages_delivered").set_total(
            t.messages_delivered)
        m.counter("transport.messages_dropped").set_total(t.messages_dropped)
        for kind, n in t.sent_by_kind.items():
            m.counter("transport.messages_sent_by_kind", kind=kind).set_total(n)
        for kind, b in t.bytes_by_kind.items():
            m.counter("transport.bytes_sent", kind=kind).set_total(b)
        # batched_messages (per message) is invariant; batch_events (one per
        # batched send) is not — each partition's heartbeat monitor emits its
        # own batches — so only the former is exported.
        m.counter("transport.batched_messages").set_total(t.batched_messages)
        m.counter("tasks.iterations_completed").set_total(
            sum(task.progress for task in self.tasks))
        m.counter("tasks.restores").set_total(self._restores)
        m.counter("nodes.kills").set_total(self._kills)
        m.counter("nodes.detections").set_total(self._detections)
        m.counter("nodes.revives").set_total(self._revives)
        m.counter("consensus.task_checkpoints").set_total(self._task_ckpts)
        return m.snapshot()

    def _sample_series(self) -> None:
        self.series.sample(self.sim.now, self.metrics_snapshot())

    # -- window protocol ---------------------------------------------------------
    def earliest_output_time(self, now: float) -> float:
        """Conservative lower bound on the next cross-partition delivery."""
        if not self.edge_tasks:
            return _INF
        best = _INF
        boot_floor = now + self.boot
        for task in self.edge_tasks:
            state = task.state
            if state is TaskState.COMPUTING:
                ev = task._compute_event
                cand = ev.time if ev is not None else now
                if self._faults_pending or self._revive_at:
                    cand = min(cand, boot_floor)
            elif state is TaskState.DEAD:
                cand = self._revive_at.get(task.node.node_id, boot_floor)
            else:  # IDLE / PAUSED: must finish an iteration (or be revived)
                cand = now + self.min_iter
                if self._faults_pending or self._revive_at:
                    cand = min(cand, boot_floor)
            if cand < best:
                best = cand
        return best + self.stamp_delay

    def run_window(self, horizon: float) -> list[tuple]:
        """Process every event strictly before ``horizon``; drain the outbox."""
        self.sim.run(until=math.nextafter(horizon, -_INF))
        out = self.transport.outbox
        self.transport.outbox = []
        return out

    @property
    def at_cap(self) -> bool:
        return self._soa.all_at_cap

    def owns(self, nid: int) -> bool:
        return nid in self.nodes

    def finish(self) -> None:
        self.monitor.stop()
        if self._snap_event is not None:
            self._snap_event.cancel()
        if self._series_event is not None:
            self._series_event.cancel()
            self._series_event = None
        if self.series is not None:
            # Final sample so every partition's series covers the horizon.
            self.series.sample(self.sim.now, self.metrics_snapshot())


# ---------------------------------------------------------------------------
# Coordinators
# ---------------------------------------------------------------------------

def _format_trace(records: list[tuple]) -> list[str]:
    """Canonical merged trace: one line per record, total-order sorted.

    ``repr(float)`` round-trips exactly, so identical event instants render
    to identical bytes regardless of which partition produced them.
    """
    records.sort()
    return [f"{t!r} {kind} r{rep} n{rank} t{task} v{val}"
            for t, kind, rep, rank, task, val in records]


def _window_horizon(eot_min: float, now: float, scenario: ParallelScenario,
                    clock: _RoundClock) -> float:
    """Next window end: promises, the run horizon, and the round clock.

    The round instant participates in the min, so every decomposition ends
    a window *exactly at* each ``T_k`` — that shared cut is what makes the
    partitioned consensus rounds decomposition-invariant.
    """
    horizon = min(eot_min, scenario.horizon, clock.next_time)
    if horizon <= now:  # defensive: never stall
        horizon = math.nextafter(now, _INF)
    return horizon


def _drive(partitions: list[_Partition], scenario: ParallelScenario,
           plane: _SharedPlane | None = None,
           ) -> tuple[int, int, float, bool, float]:
    """The conservative window loop over in-process partitions.

    Always runs the full ``scenario.horizon``: the end instant must not
    depend on window placement (which varies with the partition count), or
    late events — a fault landing after the last task hits its cap — would
    fire in one decomposition and not another.
    """
    windows = 0
    rounds = 0
    now = 0.0
    clock = _RoundClock(scenario.coordinated_interval)
    pending: list[tuple] = []
    if plane is None:
        for part in partitions:
            pending.extend(part.transport.outbox)
            part.transport.outbox = []
    t_loop = time.perf_counter()
    while now < scenario.horizon:
        if plane is not None:
            for part in partitions:
                entries = plane.drain(part.index)
                if entries:
                    part.transport.inject(entries)
        elif pending:
            for part in partitions:
                mine = [e for e in pending if part.owns(e[1])]
                if mine:
                    part.transport.inject(mine)
            pending = []
        horizon = _window_horizon(
            min(p.earliest_output_time(now) for p in partitions),
            now, scenario, clock)
        for part in partitions:
            pending.extend(part.run_window(horizon))
        now = horizon
        windows += 1
        if now == clock.next_time and now < scenario.horizon:
            merged = merge_progress_bounds(
                [p.consensus_local() for p in partitions])
            decided = merged[0] if merged is not None else None
            for part in partitions:
                part.apply_consensus(decided, now)
            rounds += 1
            clock.advance()
    loop_wall = time.perf_counter() - t_loop
    completed = all(p.at_cap for p in partitions)
    for part in partitions:
        part.finish()
    sim_time = max(p.sim.now for p in partitions)
    return windows, rounds, sim_time, completed, loop_wall


def _run_inprocess(scenario: ParallelScenario, n_partitions: int,
                   trace: bool, collect_metrics: bool = False,
                   series_interval: float | None = None,
                   plane: _SharedPlane | None = None,
                   ) -> tuple[ParallelRunReport, list[tuple]]:
    parts = [_Partition(scenario, i, n_partitions, trace=trace,
                        series_interval=series_interval, plane=plane)
             for i in range(n_partitions)]
    windows, rounds, sim_time, completed, loop_wall = _drive(
        parts, scenario, plane)
    records: list[tuple] = []
    if trace:
        for p in parts:
            records.extend(p.trace or [])
    report = ParallelRunReport(
        completed=completed, sim_time=sim_time,
        events_processed=sum(p.sim.events_processed for p in parts),
        windows=windows, cpu_count=os.cpu_count() or 1,
        requested_workers=1, effective_workers=1, partitions=n_partitions,
        per_partition_events=[p.sim.events_processed for p in parts])
    report.consensus_rounds = rounds
    report.loop_wall_s = loop_wall
    if collect_metrics:
        report.partition_metrics = [p.metrics_snapshot() for p in parts]
    if series_interval:
        report.series = merge_series(
            [p.series.to_dict() for p in parts if p.series is not None])
    return report, records


def _worker_payload(parts: list[_Partition], trace: bool,
                    collect_metrics: bool) -> dict:
    """Final per-worker results (both multiprocess planes)."""
    records: list[tuple] = []
    if trace:
        for p in parts:
            records.extend(p.trace or [])
    # Per-partition observability rides home on the final reply, tagged
    # with the partition index so the parent can restore global partition
    # order across worker groups.
    obs = [(p.index,
            p.metrics_snapshot() if collect_metrics else None,
            p.series.to_dict() if p.series is not None else None)
           for p in parts]
    return {
        "events": sum(p.sim.events_processed for p in parts),
        "per_part": [(p.index, p.sim.events_processed) for p in parts],
        "sim_time": max(p.sim.now for p in parts),
        "at_cap": all(p.at_cap for p in parts),
        "records": records,
        "obs": obs,
    }


def _peak_rss_mib() -> float:
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


# ---------------------------------------------------------------------------
# Pipes plane (fallback)
# ---------------------------------------------------------------------------

def _worker_main(conn, scenario: ParallelScenario, indices: list[int],
                 n_partitions: int, trace: bool,
                 collect_metrics: bool = False,
                 series_interval: float | None = None,
                 worker_index: int = 0) -> None:
    """Child process: own a group of partitions, obey pipe commands."""
    parts = [_Partition(scenario, i, n_partitions, trace=trace,
                        series_interval=series_interval)
             for i in indices]
    windows_run = 0
    try:
        while True:
            cmd, payload = conn.recv()
            if cmd == "outbox":
                out = []
                for p in parts:
                    out.extend(p.transport.outbox)
                    p.transport.outbox = []
                conn.send(out)
            elif cmd == "inject":
                for p in parts:
                    mine = [e for e in payload if p.owns(e[1])]
                    if mine:
                        p.transport.inject(mine)
                conn.send(True)
            elif cmd == "eot":
                conn.send(min((p.earliest_output_time(payload)
                               for p in parts), default=_INF))
            elif cmd == "run":
                if _TEST_CRASH == (worker_index, windows_run):
                    os._exit(17)
                windows_run += 1
                out = []
                for p in parts:
                    out.extend(p.run_window(payload))
                conn.send(out)
            elif cmd == "consensus":
                conn.send(merge_progress_bounds(
                    p.consensus_local() for p in parts))
            elif cmd == "apply":
                decided, now = payload
                for p in parts:
                    p.apply_consensus(decided, now)
                conn.send(True)
            elif cmd == "stop":
                for p in parts:
                    p.finish()
                conn.send(_worker_payload(parts, trace, collect_metrics))
                return
    finally:
        conn.close()


def _checked_recv(conn, proc, group: list[int]):
    """Receive a worker reply, surfacing worker death instead of hanging."""
    while not conn.poll(0.05):
        if not proc.is_alive():
            raise ParallelWorkerError(
                f"parallel worker owning partitions {group} died mid-window "
                f"(exit code {proc.exitcode})", partitions=group)
    try:
        return conn.recv()
    except EOFError:
        raise ParallelWorkerError(
            f"parallel worker owning partitions {group} closed its pipe "
            f"mid-window (exit code {proc.exitcode})",
            partitions=group) from None


def _reap(procs, timeout: float = 5.0) -> None:
    for proc in procs:
        proc.join(timeout=timeout)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)


def _run_pipes(scenario: ParallelScenario, n_partitions: int,
               n_workers: int, trace: bool,
               collect_metrics: bool = False,
               series_interval: float | None = None,
               ) -> tuple[ParallelRunReport, list[tuple]]:
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    groups: list[list[int]] = [[] for _ in range(n_workers)]
    for i in range(n_partitions):
        groups[i % n_workers].append(i)
    owner_of = {i: w for w, g in enumerate(groups) for i in g}
    per = -(-scenario.nodes_per_replica // n_partitions)
    n = scenario.nodes_per_replica
    pipes, procs = [], []
    for w, g in enumerate(groups):
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_worker_main,
                           args=(child, scenario, g, n_partitions, trace,
                                 collect_metrics, series_interval, w))
        proc.start()
        child.close()
        pipes.append(parent)
        procs.append(proc)

    def broadcast(cmd, payload=None):
        for c in pipes:
            c.send((cmd, payload))
        return [_checked_recv(c, p, g)
                for c, p, g in zip(pipes, procs, groups)]

    try:
        windows = 0
        rounds = 0
        now = 0.0
        clock = _RoundClock(scenario.coordinated_interval)
        pending: list[tuple] = []
        for out in broadcast("outbox"):
            pending.extend(out)
        t_loop = time.perf_counter()
        while now < scenario.horizon:
            if pending:
                # Route each boundary stamp to the worker owning its
                # destination partition — no more pickling the whole list
                # to every pipe.
                buckets: list[list[tuple]] = [[] for _ in range(n_workers)]
                for entry in pending:
                    buckets[owner_of[(entry[1] % n) // per]].append(entry)
                targets = [w for w in range(n_workers) if buckets[w]]
                for w in targets:
                    pipes[w].send(("inject", buckets[w]))
                for w in targets:
                    _checked_recv(pipes[w], procs[w], groups[w])
                pending = []
            horizon = _window_horizon(min(broadcast("eot", now)), now,
                                      scenario, clock)
            for out in broadcast("run", horizon):
                pending.extend(out)
            now = horizon
            windows += 1
            if now == clock.next_time and now < scenario.horizon:
                merged = merge_progress_bounds(broadcast("consensus"))
                decided = merged[0] if merged is not None else None
                broadcast("apply", (decided, now))
                rounds += 1
                clock.advance()
        loop_wall = time.perf_counter() - t_loop
        finals = broadcast("stop")
    except ParallelWorkerError:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        raise
    finally:
        _reap(procs)
    report, records = _assemble_multiprocess(
        finals, scenario, n_partitions, n_workers, windows, rounds,
        collect_metrics, series_interval)
    report.loop_wall_s = loop_wall
    return report, records


def _assemble_multiprocess(finals: list[dict], scenario: ParallelScenario,
                           n_partitions: int, n_workers: int, windows: int,
                           rounds: int, collect_metrics: bool,
                           series_interval: float | None,
                           completed: bool | None = None,
                           ) -> tuple[ParallelRunReport, list[tuple]]:
    per_part = sorted((pp for f in finals for pp in f["per_part"]))
    records = [r for f in finals for r in f["records"]]
    obs = sorted((o for f in finals for o in f["obs"]), key=lambda o: o[0])
    report = ParallelRunReport(
        completed=(all(f["at_cap"] for f in finals)
                   if completed is None else completed),
        sim_time=max(f["sim_time"] for f in finals),
        events_processed=sum(f["events"] for f in finals),
        windows=windows, cpu_count=os.cpu_count() or 1,
        requested_workers=n_workers, effective_workers=n_workers,
        partitions=n_partitions,
        per_partition_events=[e for _, e in per_part])
    report.consensus_rounds = rounds
    if collect_metrics:
        report.partition_metrics = [snap for _, snap, _ in obs]
    if series_interval:
        report.series = merge_series(
            [series for _, _, series in obs if series is not None])
    return report, records


# ---------------------------------------------------------------------------
# Shared-memory plane
# ---------------------------------------------------------------------------

def _worker_shm_main(conn, barrier, plane: _SharedPlane,
                     scenario: ParallelScenario, indices: list[int],
                     n_partitions: int, trace: bool, collect_metrics: bool,
                     series_interval: float | None,
                     worker_index: int) -> None:
    """Child process: run the window loop autonomously over shared memory.

    Unlike the pipe worker there is no command loop — every worker derives
    the identical horizon sequence from the shared scalar slots, so the
    only synchronization is the barrier (two waits per window, one more per
    consensus round) and the only pipe traffic is the single final payload.
    """
    import threading

    timeout = float(os.environ.get("REPRO_PARALLEL_BARRIER_TIMEOUT_S", "120"))
    try:
        parts = [_Partition(scenario, i, n_partitions, trace=trace,
                            series_interval=series_interval, plane=plane)
                 for i in indices]
        clock = _RoundClock(scenario.coordinated_interval)
        now = 0.0
        windows = 0
        rounds = 0
        window_waits: list[float] = []
        barrier_total = 0.0

        def wait() -> float:
            t0 = time.perf_counter()
            barrier.wait(timeout)
            return time.perf_counter() - t0

        # Construction fence: every partition's initial announcements are in
        # the rings before anyone drains.
        barrier.wait(timeout)
        t_loop = time.perf_counter()
        while now < scenario.horizon:
            spent = 0.0
            for p in parts:
                entries = plane.drain(p.index)
                if entries:
                    p.transport.inject(entries)
            for p in parts:
                plane.eot[p.index] = p.earliest_output_time(now)
            spent += wait()
            horizon = _window_horizon(float(plane.eot.min()), now,
                                      scenario, clock)
            if _TEST_CRASH == (worker_index, windows):
                os._exit(17)
            for p in parts:
                p.run_window(horizon)
            spent += wait()
            now = horizon
            windows += 1
            if now == clock.next_time and now < scenario.horizon:
                for p in parts:
                    bounds = p.consensus_local()
                    plane.cons[p.index] = (_NO_BOUND if bounds is None
                                           else bounds[0])
                spent += wait()
                decided_raw = int(plane.cons.min())
                decided = None if decided_raw >= _NO_BOUND else decided_raw
                for p in parts:
                    p.apply_consensus(decided, now)
                rounds += 1
                clock.advance()
            window_waits.append(spent)
            barrier_total += spent
        loop_wall = time.perf_counter() - t_loop
        for p in parts:
            p.finish()
        payload = _worker_payload(parts, trace, collect_metrics)
        payload.update(windows=windows, rounds=rounds,
                       barrier_wait_s=barrier_total,
                       window_waits=window_waits, loop_wall_s=loop_wall,
                       peak_rss_mib=_peak_rss_mib())
        conn.send(("done", payload))
    except threading.BrokenBarrierError:
        try:
            conn.send(("error",
                       f"worker {worker_index} (partitions {indices}): "
                       f"window barrier broken or timed out"))
        except OSError:  # pragma: no cover - parent already gone
            pass
    except Exception as exc:
        try:
            conn.send(("error",
                       f"worker {worker_index} (partitions {indices}) "
                       f"failed: {exc!r}"))
        except OSError:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


def _run_shm(scenario: ParallelScenario, n_partitions: int, n_workers: int,
             trace: bool, collect_metrics: bool = False,
             series_interval: float | None = None,
             ) -> tuple[ParallelRunReport, list[tuple]]:
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    plane = _SharedPlane(scenario, n_partitions)
    barrier = ctx.Barrier(n_workers)
    # Contiguous partition groups: rank-adjacent partitions share a worker
    # where possible, which keeps most ring traffic within one process's
    # cache footprint.
    groups: list[list[int]] = []
    base, extra = divmod(n_partitions, n_workers)
    start = 0
    for w in range(n_workers):
        count = base + (1 if w < extra else 0)
        groups.append(list(range(start, start + count)))
        start += count
    pipes, procs = [], []
    try:
        for w, g in enumerate(groups):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_shm_main,
                args=(child, barrier, plane, scenario, g, n_partitions,
                      trace, collect_metrics, series_interval, w))
            proc.start()
            child.close()
            pipes.append(parent)
            procs.append(proc)

        results: dict[int, dict] = {}
        waiting = set(range(n_workers))
        while waiting:
            for w in sorted(waiting):
                conn, proc = pipes[w], procs[w]
                msg: tuple | None = None
                if conn.poll(0.02):
                    try:
                        msg = conn.recv()
                    except EOFError:
                        msg = ("error",
                               f"worker {w} (partitions {groups[w]}) closed "
                               f"its pipe (exit code {proc.exitcode})")
                elif not proc.is_alive():
                    # One more poll: the exit may have raced the last send.
                    if conn.poll(0.0):
                        try:
                            msg = conn.recv()
                        except EOFError:
                            msg = None
                    if msg is None:
                        msg = ("error",
                               f"worker {w} (partitions {groups[w]}) died "
                               f"(exit code {proc.exitcode})")
                if msg is None:
                    continue
                kind, payload = msg
                if kind == "done":
                    results[w] = payload
                    waiting.discard(w)
                else:
                    barrier.abort()
                    for other in procs:
                        if other.is_alive():
                            other.terminate()
                    raise ParallelWorkerError(str(payload),
                                              partitions=groups[w])
        # Completion is read straight out of the shared arrays — the
        # controller never shipped any per-window state over a pipe.
        completed = plane.all_at_cap(scenario.total_iterations)
    except Exception:
        barrier.abort()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        raise
    finally:
        _reap(procs)
        plane.destroy()
    finals = [results[w] for w in range(n_workers)]
    if len({f["windows"] for f in finals}) != 1:  # pragma: no cover
        raise ParallelWorkerError(
            f"workers disagree on window count: "
            f"{[f['windows'] for f in finals]}")
    report, records = _assemble_multiprocess(
        finals, scenario, n_partitions, n_workers, finals[0]["windows"],
        finals[0]["rounds"], collect_metrics, series_interval,
        completed=completed)
    report.loop_wall_s = max(f["loop_wall_s"] for f in finals)
    report.barrier_wait_s = [f["barrier_wait_s"] for f in finals]
    report.window_barrier_s = [
        max(vals) for vals in zip(*(f["window_waits"] for f in finals))]
    report.worker_peak_rss_mib = [f["peak_rss_mib"] for f in finals]
    return report, records


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run_parallel(scenario: ParallelScenario, *, partitions: int = 1,
                 workers: int | None = 1, trace: bool = False,
                 force_processes: bool = False,
                 collect_metrics: bool = False,
                 series_interval: float | None = None,
                 shared_memory: bool | None = None) -> ParallelRunReport:
    """Run a :class:`ParallelScenario` over ``partitions`` rank ranges.

    ``workers`` is the *requested* process count; like the campaign runner it
    is clamped to ``min(workers, partitions, cpu_count)`` and both numbers
    are recorded in the report.  ``workers <= 1`` (after clamping) runs every
    partition in-process — same windows, same trace, no fork — which is what
    1-CPU runners exercise.  ``trace=True`` collects the canonical merged
    event trace (byte-identical across any partition/worker decomposition).

    ``shared_memory`` selects the multiprocess data plane: ``None`` (the
    default) uses the shared-memory plane whenever the ``fork`` start method
    exists and ≥2 workers run, ``True`` forces it, ``False`` forces the
    pickled-pipe plane.  In-process runs honor ``shared_memory=True`` too
    (arena + rings without a barrier) so the shm code path is testable on
    one CPU.  ``report.data_plane`` records the choice.

    ``collect_metrics=True`` ships each partition's decomposition-invariant
    counter snapshot home (``report.partition_metrics``, partition order)
    and merges them (``report.metrics``) — the merged snapshot equals the
    1-partition run's snapshot for any decomposition.  ``series_interval``
    additionally samples those counters on each partition's clock every
    ``series_interval`` simulated seconds; the merged series lands on
    ``report.series``.  Sampling adds timer events to each partition's queue
    (so ``events_processed`` grows by the tick count) but reads counters
    passively — the canonical trace and its digest are unchanged.
    """
    if partitions < 1:
        raise ConfigurationError("partitions must be >= 1")
    if partitions > scenario.nodes_per_replica:
        raise ConfigurationError("more partitions than ranks")
    requested = workers or 1
    eff = effective_parallel_workers(requested, partitions)
    if force_processes:
        # Test hook: exercise the fork machinery even where the CPU clamp
        # would fall back in-process (1-CPU CI runners).
        eff = min(requested, partitions)
    t0 = time.perf_counter()
    if eff <= 1:
        plane = (_SharedPlane(scenario, partitions) if shared_memory
                 else None)
        try:
            report, records = _run_inprocess(scenario, partitions, trace,
                                             collect_metrics, series_interval,
                                             plane=plane)
        finally:
            if plane is not None:
                plane.destroy()
        report.data_plane = "inprocess-shm" if shared_memory else "inprocess"
    else:
        use_shm = shared_memory if shared_memory is not None \
            else _fork_available()
        if use_shm and not _fork_available():
            # Spawn-only platforms (e.g. macOS default) cannot inherit the
            # arena mapping; fall back to the pipe plane.
            use_shm = False
        if use_shm:
            report, records = _run_shm(scenario, partitions, eff, trace,
                                       collect_metrics, series_interval)
            report.data_plane = "shm"
        else:
            report, records = _run_pipes(scenario, partitions, eff, trace,
                                         collect_metrics, series_interval)
            report.data_plane = "pipes"
    report.wall_s = time.perf_counter() - t0
    if collect_metrics and report.partition_metrics is not None:
        report.metrics = merge_snapshots(report.partition_metrics)
    report.requested_workers = requested
    report.effective_workers = eff
    if trace:
        lines = _format_trace(records)
        report.trace = lines
        digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
        report.trace_digest = digest
    return report
