"""Data generators for every evaluation figure (Figs. 6, 8, 9, 10, 11, 12).

Each function returns structured rows; the benchmarks print them and assert
the paper's qualitative claims.  Figures 1 and 7 come from the analytical
model (:mod:`repro.model.surfaces`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.registry import MINIAPP_NAMES, descriptor
from repro.core.config import ACRConfig
from repro.core.events import TimelineKind
from repro.core.framework import ACR, RunReport
from repro.faults.injector import FaultKind, draw_plan
from repro.faults.distributions import WeibullProcess
from repro.harness.calibration import (
    FIG8_CORES_PER_REPLICA,
    FIG8_METHODS,
    FIG9_HARD_MTBF_PER_SOCKET,
    FIG9_SDC_FIT_PER_SOCKET,
    FIG9_SOCKETS_PER_REPLICA,
    FIG12_FAILURES,
    FIG12_HORIZON_SECONDS,
    FIG12_WEIBULL_SHAPE,
    INTREPID,
)
from repro.model.params import ModelParams
from repro.model.schemes import ResilienceScheme, optimal_tau, solve_scheme
from repro.network.allocation import CORES_PER_NODE, intrepid_allocation
from repro.network.costs import CheckpointProfile, CostModel
from repro.network.mapping import MappingScheme, build_mapping
from repro.network.topology import Torus3D
from repro.util.rng import RngStream
from repro.util.units import HOURS


def _profile_for(app_name: str) -> CheckpointProfile:
    d = descriptor(app_name)
    return CheckpointProfile(
        nbytes_per_node=d.declared_bytes_per_core * CORES_PER_NODE,
        serialize_factor=d.serialize_factor,
    )


def _mapping_for(method: str, torus) -> tuple[MappingScheme, bool]:
    """Figure-8 legend entry -> (mapping scheme, use_checksum)."""
    if method == "checksum":
        return MappingScheme.DEFAULT, True
    return MappingScheme(method), False


# -- Figure 6: per-link inter-replica message counts --------------------------------


@dataclass(frozen=True)
class Fig6Row:
    mapping: str
    max_link_load: int
    buddy_hops_max: int
    total_bytes_hops: int
    plane_profile: tuple[int, ...]


def fig6_data(torus_dims: tuple[int, int, int] = (8, 8, 8)) -> list[Fig6Row]:
    """Unit-size buddy messages on a 512-node partition, per mapping."""
    torus = Torus3D(torus_dims)
    rows = []
    for scheme in (MappingScheme.DEFAULT, MappingScheme.COLUMN, MappingScheme.MIXED):
        mapping = build_mapping(torus, scheme)
        loads = mapping.exchange_loads(1)
        rows.append(
            Fig6Row(
                mapping=str(scheme),
                max_link_load=loads.max_load(),
                buddy_hops_max=int(mapping.buddy_distance().max()),
                total_bytes_hops=loads.total_bytes_hops(),
                plane_profile=tuple(int(v) for v in loads.plane_loads(2)),
            )
        )
    return rows


# -- Figure 8: single-checkpoint overhead decomposition -------------------------------


@dataclass(frozen=True)
class Fig8Row:
    app: str
    cores_per_replica: int
    method: str
    local: float
    transfer: float
    compare: float
    total: float


def fig8_data(
    apps=MINIAPP_NAMES,
    cores_axis=FIG8_CORES_PER_REPLICA,
    methods=FIG8_METHODS,
) -> list[Fig8Row]:
    cost = CostModel(INTREPID)
    rows = []
    for app in apps:
        profile = _profile_for(app)
        for cores in cores_axis:
            alloc = intrepid_allocation(cores)
            for method in methods:
                scheme, checksum = _mapping_for(method, alloc.torus)
                mapping = build_mapping(alloc.torus, scheme)
                b = cost.checkpoint_breakdown(profile, mapping, use_checksum=checksum)
                rows.append(
                    Fig8Row(app=app, cores_per_replica=cores, method=method,
                            local=b.local, transfer=b.transfer, compare=b.compare,
                            total=b.total)
                )
    return rows


# -- Figures 9 & 11: overhead at the model-optimal checkpoint period --------------------

#: Figure 9/11 legend: optimization variants.
FIG9_VARIANTS = ("default", "default+checksum", "column", "column+checksum")


@dataclass(frozen=True)
class Fig9Row:
    app: str
    sockets_per_replica: int
    scheme: str
    variant: str
    delta: float
    tau_opt: float
    checkpoint_overhead_pct: float    # forward path (Fig. 9)
    overall_overhead_pct: float       # + restart + rework (Fig. 11)


def _variant_breakdown(cost: CostModel, profile: CheckpointProfile, torus,
                       variant: str):
    mapping_scheme = (MappingScheme.COLUMN if variant.startswith("column")
                      else MappingScheme.DEFAULT)
    mapping = build_mapping(torus, mapping_scheme)
    checksum = variant.endswith("checksum")
    return mapping, cost.checkpoint_breakdown(profile, mapping, use_checksum=checksum)


def fig9_fig11_data(
    apps=("jacobi3d-charm", "leanmd"),
    sockets_axis=FIG9_SOCKETS_PER_REPLICA,
    variants=FIG9_VARIANTS,
    *,
    job_hours: float = 24.0,
) -> list[Fig9Row]:
    """Forward-path (Fig. 9) and overall (Fig. 11) overhead per replica.

    δ comes from the topology-aware cost model per optimization variant; the
    optimal period and total time come from the Section-5 model with the
    paper's parameters (M_H = 50 years/socket, 10,000 FIT/socket).
    """
    cost = CostModel(INTREPID)
    rows = []
    for app in apps:
        profile = _profile_for(app)
        for sockets in sockets_axis:
            # sockets == nodes on BG/P; the torus covers both replicas.
            alloc = intrepid_allocation(sockets * CORES_PER_NODE)
            for variant in variants:
                mapping, breakdown = _variant_breakdown(cost, profile,
                                                        alloc.torus, variant)
                delta = breakdown.total
                restart = cost.restart_breakdown(profile, mapping,
                                                 scheme="medium").total
                params = ModelParams(
                    work=job_hours * HOURS,
                    delta=delta,
                    sockets_per_replica=int(sockets),
                    hard_mtbf_socket=FIG9_HARD_MTBF_PER_SOCKET,
                    sdc_fit_socket=FIG9_SDC_FIT_PER_SOCKET,
                    restart_hard=restart,
                    restart_sdc=cost.sdc_rollback_time(profile, alloc.total_nodes),
                )
                for scheme in ResilienceScheme:
                    tau = optimal_tau(params, scheme)
                    sol = solve_scheme(params, scheme, tau)
                    ckpt_pct = 100.0 * sol.checkpoint_time / sol.total_time
                    overall_pct = 100.0 * sol.overhead_fraction
                    rows.append(
                        Fig9Row(app=app, sockets_per_replica=int(sockets),
                                scheme=str(scheme), variant=variant,
                                delta=delta, tau_opt=tau,
                                checkpoint_overhead_pct=ckpt_pct,
                                overall_overhead_pct=overall_pct)
                    )
    return rows


# -- Figure 10: single-restart overhead ------------------------------------------------

#: Figure 10 legend order: strong, then medium under three mappings.
FIG10_VARIANTS = ("strong", "medium (default)", "medium (mixed)", "medium (column)")


@dataclass(frozen=True)
class Fig10Row:
    app: str
    cores_per_replica: int
    variant: str
    transfer: float
    reconstruction: float
    total: float


def fig10_data(
    apps=MINIAPP_NAMES,
    cores_axis=FIG8_CORES_PER_REPLICA,
    variants=FIG10_VARIANTS,
) -> list[Fig10Row]:
    cost = CostModel(INTREPID)
    rows = []
    for app in apps:
        profile = _profile_for(app)
        for cores in cores_axis:
            alloc = intrepid_allocation(cores)
            for variant in variants:
                if variant == "strong":
                    scheme, mapping_name = "strong", "default"
                else:
                    scheme = "medium"
                    mapping_name = variant.split("(")[1].rstrip(")")
                mapping = build_mapping(alloc.torus, MappingScheme(mapping_name))
                b = cost.restart_breakdown(profile, mapping, scheme=scheme)
                rows.append(
                    Fig10Row(app=app, cores_per_replica=cores, variant=variant,
                             transfer=b.transfer, reconstruction=b.reconstruction,
                             total=b.total)
                )
    return rows


# -- Figure 12: adaptivity under a decreasing failure rate -------------------------------


@dataclass
class Fig12Result:
    report: RunReport
    injected_failures: list[float]
    checkpoint_times: list[float]
    intervals: list[tuple[float, float]]
    early_mean_interval: float
    late_mean_interval: float
    ascii_timeline: str


def fig12_data(
    *,
    nodes_per_replica: int = 16,
    horizon: float = FIG12_HORIZON_SECONDS,
    failures: int = FIG12_FAILURES,
    shape: float = FIG12_WEIBULL_SHAPE,
    seed: int = 3,
    app: str = "jacobi3d-charm",
    initial_interval: float = 6.0,
) -> Fig12Result:
    """Run the Figure-12 scenario on the full DES with adaptive checkpointing.

    The paper's run uses 512 cores (128 nodes, 64 per replica); the default
    here is smaller so benchmarks stay fast — pass ``nodes_per_replica=64``
    for the paper-sized run.
    """
    rng = RngStream(seed, "fig12")
    process = WeibullProcess.with_expected_count(
        shape, horizon=horizon, expected_failures=failures, rng=rng.child("times")
    )
    plan = draw_plan(process, kind=FaultKind.HARD, horizon=horizon,
                     nodes_per_replica=nodes_per_replica, rng=rng.child("victims"))
    config = ACRConfig(
        scheme=ResilienceScheme.MEDIUM,
        adaptive=True,
        adaptive_initial_interval=initial_interval,
        adaptive_min_interval=2.0,
        adaptive_max_interval=120.0,
        tasks_per_node=1,
        app_scale=1e-4,
        seed=seed,
        heartbeat_interval=0.5,
        spare_nodes=4 * failures,
    )
    acr = ACR(app, nodes_per_replica=nodes_per_replica, config=config,
              injection_plan=plan)
    report = acr.run(until=horizon, max_events=100_000_000)
    intervals = list(report.interval_history)
    gaps = report.timeline.checkpoint_intervals()
    k = max(len(gaps) // 5, 1)
    early = float(np.mean(gaps[:k])) if gaps else 0.0
    late = float(np.mean(gaps[-k:])) if gaps else 0.0
    return Fig12Result(
        report=report,
        injected_failures=[e.time for e in plan.events],
        checkpoint_times=report.timeline.times_of(TimelineKind.CHECKPOINT_DONE),
        intervals=intervals,
        early_mean_interval=early,
        late_mean_interval=late,
        ascii_timeline=report.timeline.render_ascii(width=110, horizon=horizon),
    )
