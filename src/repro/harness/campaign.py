"""Multi-seed experiment campaigns: aggregate statistics, resumable sweeps.

One seed is an anecdote; claims like "ACR recovers with low overhead" need
distributions.  A campaign replays the same experiment across seeds (fault
schedules and victim choices re-drawn each time) and aggregates outcomes.

Campaigns practice what ACR simulates: pass ``cache_dir=`` (or a
:class:`~repro.store.ResultStore`) and every completed cell is persisted the
moment it finishes — a re-run loads cached cells instead of recomputing, and
an interrupted sweep resumes from its last completed shard with an aggregate
bitwise-identical to an uninterrupted run.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.framework import RunReport
from repro.harness.experiment import run_experiment_report
from repro.obs.metrics import merge_snapshots
from repro.obs.progress import ProgressTracker
from repro.obs.series import merge_series
from repro.store import (
    KIND_RUN_REPORT,
    ResultStore,
    experiment_cell_material,
    report_from_dict,
    report_to_dict,
)


@dataclass
class CampaignSummary:
    """Aggregate statistics over a campaign's runs."""

    runs: int
    completed_runs: int
    correct_runs: int
    aborted_runs: int
    mean_overhead: float
    std_overhead: float
    mean_checkpoints: float
    mean_rework_iterations: float
    total_hard_faults: int
    total_sdc: int
    total_recoveries: dict[str, int] = field(default_factory=dict)
    #: Summed per-phase protocol time across all runs (same keys as
    #: :attr:`RunReport.phase_times`).
    phase_times: dict[str, float] = field(default_factory=dict)
    #: Merged metrics snapshot across workers (None when no run collected
    #: metrics); see :func:`repro.obs.metrics.merge_snapshots`.
    metrics: dict | None = None
    #: Merged time series across cells (None when no run sampled a series);
    #: see :func:`repro.obs.series.merge_series`.
    series: dict | None = None

    @property
    def completion_rate(self) -> float:
        return self.completed_runs / self.runs if self.runs else 0.0

    @property
    def correctness_rate(self) -> float:
        """Fraction of *completed* runs whose result was bit-correct."""
        return self.correct_runs / self.completed_runs if self.completed_runs else 0.0


@dataclass
class CampaignResult:
    reports: list[RunReport]
    seeds: list[int]
    summary: CampaignSummary
    #: Cells loaded from the result store instead of simulated.
    cache_hits: int = 0
    #: Cells actually simulated this invocation.
    cache_misses: int = 0


class FanOutError(RuntimeError):
    """A campaign worker failed on one specific argument tuple.

    Wraps the worker's original exception (as ``__cause__``) and names the
    failing call, so a sweep that dies on seed 17 of 500 says so instead of
    surfacing a bare pool traceback.
    """

    def __init__(self, fn_name: str, args: tuple, cause: BaseException):
        self.fn_name = fn_name
        self.args_tuple = tuple(args)
        super().__init__(
            f"{fn_name}{self.args_tuple!r} failed: "
            f"{type(cause).__name__}: {cause}"
        )


def summarize(reports: Sequence[RunReport]) -> CampaignSummary:
    """Aggregate a set of run reports."""
    completed = [r for r in reports if r.completed]
    overheads = (
        np.asarray([r.overhead_fraction for r in completed])
        if completed
        else np.zeros(0)
    )
    recoveries: dict[str, int] = {}
    phase_times: dict[str, float] = {}
    for r in reports:
        for key, count in r.recoveries.items():
            recoveries[key] = recoveries.get(key, 0) + count
        for phase, t in r.phase_times.items():
            phase_times[phase] = phase_times.get(phase, 0.0) + t
    snapshots = [r.metrics_snapshot for r in reports if r.metrics_snapshot]
    series_list = [r.series for r in reports if r.series]
    return CampaignSummary(
        runs=len(reports),
        completed_runs=len(completed),
        correct_runs=sum(1 for r in completed if r.result_correct),
        aborted_runs=sum(1 for r in reports if r.aborted_reason),
        mean_overhead=float(overheads.mean()) if overheads.size else 0.0,
        std_overhead=float(overheads.std()) if overheads.size else 0.0,
        mean_checkpoints=(
            float(np.mean([r.checkpoints_completed for r in reports]))
            if reports
            else 0.0
        ),
        mean_rework_iterations=(
            float(np.mean([r.rework_iterations for r in reports]))
            if reports
            else 0.0
        ),
        total_hard_faults=sum(r.hard_detected for r in reports),
        total_sdc=sum(r.sdc_detected for r in reports),
        total_recoveries=recoveries,
        phase_times=phase_times,
        metrics=merge_snapshots(snapshots) if snapshots else None,
        series=merge_series(series_list) if series_list else None,
    )


def effective_workers(requested: int | None, n_items: int) -> int:
    """Clamp a worker request to what can actually help.

    Never more workers than items, never more than the machine has cores —
    on a 1-CPU box a process pool can only add fork/IPC overhead on top of a
    workload that already saturates the core (the campaign micro-benchmark
    measured 0.65x "speedup" exactly this way).
    """
    return min(requested or 1, n_items, os.cpu_count() or 1)


def fan_out(
    fn: Callable,
    arg_tuples: Sequence[tuple],
    workers: int,
    *,
    on_result: Callable[[int, object], None] | None = None,
) -> list | None:
    """Fan ``fn(*args)`` calls out over a process pool.

    The shared engine behind experiment and chaos campaigns.  Results come
    back ordered by input position regardless of completion order, and every
    worker re-derives its randomness from its own arguments, so the aggregate
    is bitwise-identical to a serial loop.

    ``on_result(position, result)`` fires in the parent as each call
    completes (not at join), which is what lets campaigns persist finished
    cells incrementally — an interrupted sweep keeps everything already done.

    Returns ``None`` — meaning "fall back to serial" — only on
    *environmental* failures (no process support, a pool that dies before
    doing work, or unpicklable arguments).  A genuine task error raises
    :class:`FanOutError` naming the failing argument tuple, with the original
    exception chained as its cause.
    """
    try:
        executor = ProcessPoolExecutor(max_workers=workers)
    except (ImportError, NotImplementedError, OSError):
        return None
    try:
        with executor:
            futures = [executor.submit(fn, *args) for args in arg_tuples]
            by_future = {f: i for i, f in enumerate(futures)}
            results: list = [None] * len(futures)
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                failed: tuple[int, BaseException] | None = None
                for f in done:
                    i = by_future[f]
                    err = f.exception()
                    if err is None:
                        # Commit every success in this batch before raising:
                        # an interrupted sweep keeps everything already done.
                        results[i] = f.result()
                        if on_result is not None:
                            on_result(i, results[i])
                    elif failed is None:
                        failed = (i, err)
                if failed is not None:
                    i, err = failed
                    if isinstance(
                        err, (BrokenProcessPool, TypeError, AttributeError)
                    ):
                        # Environmental: the pool broke or the arguments
                        # would not pickle — let the caller run serially.
                        raise err
                    for not_started in pending:
                        not_started.cancel()
                    raise FanOutError(
                        getattr(fn, "__name__", repr(fn)), arg_tuples[i], err
                    ) from err
            return results
    except (BrokenProcessPool, TypeError, AttributeError):
        # TypeError/AttributeError: unpicklable arguments (e.g. a
        # closure-built injection plan) surface at submit or result time.
        return None


def run_campaign(
    app: str = "jacobi3d-charm",
    *,
    seeds: Sequence[int] = range(5),
    workers: int | None = None,
    cache: ResultStore | None = None,
    cache_dir: str | None = None,
    resume: bool = True,
    progress: ProgressTracker | None = None,
    **experiment_kwargs,
) -> CampaignResult:
    """Run :func:`run_acr_experiment` once per seed and aggregate.

    ``workers`` > 1 replays seeds concurrently on a ``ProcessPoolExecutor``
    (each seed is an independent simulation — campaigns are embarrassingly
    parallel).  The result is bitwise-identical to the serial path: reports
    are ordered by seed and every worker derives its randomness from the
    seed alone.  The request is clamped to ``os.cpu_count()`` (see
    :func:`effective_workers`) — extra processes beyond the core count only
    add fork/IPC overhead.  Where process pools are unavailable the runner
    silently degrades to serial execution.

    ``cache`` (a :class:`~repro.store.ResultStore`) or ``cache_dir`` turns
    the sweep into a resumable work-queue: with ``resume`` (the default),
    cells already in the store are loaded instead of simulated, and every
    freshly computed cell is persisted the moment its worker finishes.
    ``resume=False`` recomputes everything but still writes the store.

    ``progress`` (a :class:`~repro.obs.progress.ProgressTracker`) receives a
    per-cell tick as each cell is served from cache or committed — the live
    ``repro campaign --progress`` view and the machine-readable progress
    file both hang off it.
    """
    seed_list = [int(s) for s in seeds]
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    store = cache if cache is not None else (
        ResultStore(cache_dir) if cache_dir is not None else None
    )

    reports: list[RunReport | None] = [None] * len(seed_list)
    materials: dict[int, dict] = {}
    hits = 0
    pending: list[tuple[int, int]] = []  # (position, seed)
    for pos, seed in enumerate(seed_list):
        if store is not None:
            materials[pos] = experiment_cell_material(
                app, seed, experiment_kwargs
            )
            if resume:
                payload = store.get(materials[pos])
                if payload is not None:
                    reports[pos] = report_from_dict(payload)
                    hits += 1
                    if progress is not None:
                        progress.cell_cached()
                    continue
        pending.append((pos, seed))

    def commit(pos: int, report: RunReport) -> None:
        reports[pos] = report
        if store is not None:
            store.put(
                materials[pos], report_to_dict(report), kind=KIND_RUN_REPORT
            )
        if progress is not None:
            progress.cell_completed()

    if pending:
        nworkers = effective_workers(workers, len(pending))
        done = None
        if nworkers > 1:
            positions = [pos for pos, _ in pending]
            done = fan_out(
                run_experiment_report,
                [(app, seed, experiment_kwargs) for _, seed in pending],
                nworkers,
                on_result=lambda j, rep: commit(positions[j], rep),
            )
        if done is None:
            for pos, seed in pending:
                if reports[pos] is None:  # skip cells a broken pool finished
                    commit(pos, run_experiment_report(app, seed,
                                                      experiment_kwargs))

    if progress is not None:
        progress.finish()
    final = [r for r in reports if r is not None]
    assert len(final) == len(seed_list)
    return CampaignResult(
        reports=final,
        seeds=seed_list,
        summary=summarize(final),
        cache_hits=hits,
        cache_misses=len(seed_list) - hits,
    )
