"""Multi-seed experiment campaigns with aggregate statistics.

One seed is an anecdote; claims like "ACR recovers with low overhead" need
distributions.  A campaign replays the same experiment across seeds (fault
schedules and victim choices re-drawn each time) and aggregates outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.framework import RunReport
from repro.harness.experiment import run_acr_experiment


@dataclass
class CampaignSummary:
    """Aggregate statistics over a campaign's runs."""

    runs: int
    completed_runs: int
    correct_runs: int
    aborted_runs: int
    mean_overhead: float
    std_overhead: float
    mean_checkpoints: float
    mean_rework_iterations: float
    total_hard_faults: int
    total_sdc: int
    total_recoveries: dict[str, int] = field(default_factory=dict)

    @property
    def completion_rate(self) -> float:
        return self.completed_runs / self.runs if self.runs else 0.0

    @property
    def correctness_rate(self) -> float:
        """Fraction of *completed* runs whose result was bit-correct."""
        return self.correct_runs / self.completed_runs if self.completed_runs else 0.0


@dataclass
class CampaignResult:
    reports: list[RunReport]
    seeds: list[int]
    summary: CampaignSummary


def summarize(reports: Sequence[RunReport]) -> CampaignSummary:
    """Aggregate a set of run reports."""
    completed = [r for r in reports if r.completed]
    overheads = np.asarray([r.overhead_fraction for r in completed]) \
        if completed else np.zeros(0)
    recoveries: dict[str, int] = {}
    for r in reports:
        for key, count in r.recoveries.items():
            recoveries[key] = recoveries.get(key, 0) + count
    return CampaignSummary(
        runs=len(reports),
        completed_runs=len(completed),
        correct_runs=sum(1 for r in completed if r.result_correct),
        aborted_runs=sum(1 for r in reports if r.aborted_reason),
        mean_overhead=float(overheads.mean()) if overheads.size else 0.0,
        std_overhead=float(overheads.std()) if overheads.size else 0.0,
        mean_checkpoints=float(np.mean([r.checkpoints_completed
                                        for r in reports])) if reports else 0.0,
        mean_rework_iterations=float(np.mean([r.rework_iterations
                                              for r in reports])) if reports else 0.0,
        total_hard_faults=sum(r.hard_detected for r in reports),
        total_sdc=sum(r.sdc_detected for r in reports),
        total_recoveries=recoveries,
    )


def run_campaign(
    app: str = "jacobi3d-charm",
    *,
    seeds: Sequence[int] = range(5),
    **experiment_kwargs,
) -> CampaignResult:
    """Run :func:`run_acr_experiment` once per seed and aggregate."""
    reports = []
    seed_list = [int(s) for s in seeds]
    for seed in seed_list:
        result = run_acr_experiment(app, seed=seed, **experiment_kwargs)
        reports.append(result.report)
    return CampaignResult(reports=reports, seeds=seed_list,
                          summary=summarize(reports))
