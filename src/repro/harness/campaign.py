"""Multi-seed experiment campaigns with aggregate statistics.

One seed is an anecdote; claims like "ACR recovers with low overhead" need
distributions.  A campaign replays the same experiment across seeds (fault
schedules and victim choices re-drawn each time) and aggregates outcomes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.framework import RunReport
from repro.harness.experiment import run_experiment_report
from repro.obs.metrics import merge_snapshots


@dataclass
class CampaignSummary:
    """Aggregate statistics over a campaign's runs."""

    runs: int
    completed_runs: int
    correct_runs: int
    aborted_runs: int
    mean_overhead: float
    std_overhead: float
    mean_checkpoints: float
    mean_rework_iterations: float
    total_hard_faults: int
    total_sdc: int
    total_recoveries: dict[str, int] = field(default_factory=dict)
    #: Summed per-phase protocol time across all runs (same keys as
    #: :attr:`RunReport.phase_times`).
    phase_times: dict[str, float] = field(default_factory=dict)
    #: Merged metrics snapshot across workers (None when no run collected
    #: metrics); see :func:`repro.obs.metrics.merge_snapshots`.
    metrics: dict | None = None

    @property
    def completion_rate(self) -> float:
        return self.completed_runs / self.runs if self.runs else 0.0

    @property
    def correctness_rate(self) -> float:
        """Fraction of *completed* runs whose result was bit-correct."""
        return self.correct_runs / self.completed_runs if self.completed_runs else 0.0


@dataclass
class CampaignResult:
    reports: list[RunReport]
    seeds: list[int]
    summary: CampaignSummary


def summarize(reports: Sequence[RunReport]) -> CampaignSummary:
    """Aggregate a set of run reports."""
    completed = [r for r in reports if r.completed]
    overheads = np.asarray([r.overhead_fraction for r in completed]) \
        if completed else np.zeros(0)
    recoveries: dict[str, int] = {}
    phase_times: dict[str, float] = {}
    for r in reports:
        for key, count in r.recoveries.items():
            recoveries[key] = recoveries.get(key, 0) + count
        for phase, t in r.phase_times.items():
            phase_times[phase] = phase_times.get(phase, 0.0) + t
    snapshots = [r.metrics_snapshot for r in reports if r.metrics_snapshot]
    return CampaignSummary(
        runs=len(reports),
        completed_runs=len(completed),
        correct_runs=sum(1 for r in completed if r.result_correct),
        aborted_runs=sum(1 for r in reports if r.aborted_reason),
        mean_overhead=float(overheads.mean()) if overheads.size else 0.0,
        std_overhead=float(overheads.std()) if overheads.size else 0.0,
        mean_checkpoints=float(np.mean([r.checkpoints_completed
                                        for r in reports])) if reports else 0.0,
        mean_rework_iterations=float(np.mean([r.rework_iterations
                                              for r in reports])) if reports else 0.0,
        total_hard_faults=sum(r.hard_detected for r in reports),
        total_sdc=sum(r.sdc_detected for r in reports),
        total_recoveries=recoveries,
        phase_times=phase_times,
        metrics=merge_snapshots(snapshots) if snapshots else None,
    )


def fan_out(fn, arg_tuples: Sequence[tuple], workers: int) -> list | None:
    """Fan ``fn(*args)`` calls out over a process pool.

    The shared engine behind experiment and chaos campaigns.  Results come
    back ordered by input position regardless of completion order, and every
    worker re-derives its randomness from its own arguments, so the aggregate
    is bitwise-identical to a serial loop.  Returns ``None`` — meaning "fall
    back to serial" — only on *environmental* failures (no process support, a
    pool that dies before doing work, or unpicklable arguments); a genuine
    task error propagates with its original type.
    """
    try:
        executor = ProcessPoolExecutor(max_workers=workers)
    except (ImportError, NotImplementedError, OSError):
        return None
    try:
        with executor:
            futures = [executor.submit(fn, *args) for args in arg_tuples]
            return [f.result() for f in futures]
    except (BrokenProcessPool, TypeError, AttributeError):
        # TypeError/AttributeError: unpicklable arguments (e.g. a
        # closure-built injection plan) surface at submit or result time.
        return None


def _run_serial(app: str, seed_list: list[int],
                experiment_kwargs: dict) -> list[RunReport]:
    return [run_experiment_report(app, seed, experiment_kwargs)
            for seed in seed_list]


def _run_parallel(app: str, seed_list: list[int], workers: int,
                  experiment_kwargs: dict) -> list[RunReport] | None:
    """Fan seeds out over a process pool; ``None`` means "fall back to serial"."""
    return fan_out(run_experiment_report,
                   [(app, seed, experiment_kwargs) for seed in seed_list],
                   workers)


def run_campaign(
    app: str = "jacobi3d-charm",
    *,
    seeds: Sequence[int] = range(5),
    workers: int | None = None,
    **experiment_kwargs,
) -> CampaignResult:
    """Run :func:`run_acr_experiment` once per seed and aggregate.

    ``workers`` > 1 replays seeds concurrently on a ``ProcessPoolExecutor``
    (each seed is an independent simulation — campaigns are embarrassingly
    parallel).  The result is bitwise-identical to the serial path: reports
    are ordered by seed and every worker derives its randomness from the
    seed alone.  Where process pools are unavailable the runner silently
    degrades to serial execution.
    """
    seed_list = [int(s) for s in seeds]
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    nworkers = min(workers or 1, len(seed_list))
    reports = None
    if nworkers > 1:
        reports = _run_parallel(app, seed_list, nworkers, experiment_kwargs)
    if reports is None:
        reports = _run_serial(app, seed_list, experiment_kwargs)
    return CampaignResult(reports=reports, seeds=seed_list,
                          summary=summarize(reports))
