"""Position-dependent Fletcher checksums (paper §4.2).

ACR's network-congestion optimization replaces shipping the full checkpoint to
the buddy with shipping a small checksum.  The paper uses *Fletcher's
position-dependent checksum*: unlike a plain additive checksum, Fletcher's
second running sum weights each word by its position, so transposed or
relocated corruption is detected.

The paper's cost argument — copying a byte costs 1 instruction while summing it
into a Fletcher checksum costs 4 — is mirrored by the network cost model in
:mod:`repro.network.costs` (checksum wins only when ``gamma < beta / 4``).
That argument only holds if the implementation stays close to those 4
instructions per word, so the hot path here avoids every avoidable copy:

* words are *viewed* in place (no ``astype(int64)`` expansion of the buffer;
  the per-block weighted products are the only int64 temporaries);
* only the final partial word is padded — the aligned prefix is checksummed
  where it lies instead of being concatenated into a padded copy;
* block weight vectors are cached across calls instead of re-``arange``-d;
* the 32-byte striped digest gathers each stripe in a single strided pass and
  feeds it straight to the in-place Fletcher kernel — the seed's per-stripe
  pad-concatenate and ``astype(int64)`` expansion copies are gone.

For incremental checkpoints, :func:`field_digest` captures one field's
striped partial sums; :func:`combine_digests` composes them into the 32-byte
digest using Fletcher's concatenation identity, and :class:`DigestCache`
keyed on ``PackedState.versions`` means a round that dirtied one field of
sixteen rehashes only that field.

Both sums are computed blockwise with vectorized numpy arithmetic; the modulus
is only applied per block, which is exact because block sizes are chosen so the
int64 accumulators cannot overflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

#: Fletcher-32 operates on 16-bit words modulo 65535.
_M32 = np.int64(65535)
#: Fletcher-64 operates on 32-bit words modulo 2**32 - 1.
_M64 = np.int64(2**32 - 1)

#: Block sizes guaranteeing no int64 overflow in the weighted sums:
#: sum(weight_i * word_i) <= block * block * word_max.
_BLOCK32 = 1 << 20
_BLOCK64 = 1 << 14

#: Cached descending weight vectors (block, block-1, ..., 1) per block size.
#: A partial final block of k words slices the suffix (k, ..., 1).
_WEIGHTS: dict[int, np.ndarray] = {}


def _weights(block: int) -> np.ndarray:
    w = _WEIGHTS.get(block)
    if w is None:
        w = np.arange(block, 0, -1, dtype=np.int64)
        _WEIGHTS[block] = w
    return w


def _as_bytes(data: np.ndarray | bytes) -> np.ndarray:
    if isinstance(data, (bytes, bytearray, memoryview)):
        return np.frombuffer(bytes(data), dtype=np.uint8)
    return np.ascontiguousarray(data).view(np.uint8).reshape(-1)


def _split_words(raw: np.ndarray, word_dtype: np.dtype) -> tuple[np.ndarray, int | None]:
    """View the aligned prefix as little-endian words in place; return the
    zero-padded final partial word (if any) as a plain int."""
    word_size = word_dtype.itemsize
    rem = raw.nbytes % word_size
    head = raw[: raw.nbytes - rem].view(word_dtype.newbyteorder("<"))
    if not rem:
        return head, None
    tail = int.from_bytes(raw[raw.nbytes - rem :].tobytes(), "little")
    return head, tail


def _fletcher(words: np.ndarray, tail: int | None, modulus: np.int64,
              block: int) -> tuple[int, int]:
    s1 = np.int64(0)
    s2 = np.int64(0)
    n = words.size
    full = _weights(block)
    for start in range(0, n, block):
        chunk = words[start : start + block]
        k = chunk.size
        # Within the block: s1 advances by sum(chunk); s2 advances by
        # k * s1_before + sum((k - i) * chunk[i]) with i zero-based.
        weights = full if k == block else full[block - k :]
        chunk_sum = chunk.sum(dtype=np.int64) % modulus
        weighted = (weights * chunk).sum(dtype=np.int64) % modulus
        s2 = (s2 + (np.int64(k) % modulus) * s1 + weighted) % modulus
        s1 = (s1 + chunk_sum) % modulus
    if tail is not None:
        s1 = (s1 + np.int64(tail)) % modulus
        s2 = (s2 + s1) % modulus
    return int(s1), int(s2)


def fletcher32(data: np.ndarray | bytes) -> int:
    """Fletcher-32 checksum of a byte buffer (16-bit words mod 65535)."""
    words, tail = _split_words(_as_bytes(data), np.dtype(np.uint16))
    s1, s2 = _fletcher(words, tail, _M32, _BLOCK32)
    return (s2 << 16) | s1


def fletcher64(data: np.ndarray | bytes) -> int:
    """Fletcher-64 checksum of a byte buffer (32-bit words mod 2**32-1)."""
    words, tail = _split_words(_as_bytes(data), np.dtype(np.uint32))
    s1, s2 = _fletcher(words, tail, _M64, _BLOCK64)
    return (s2 << 32) | s1


#: Size of the checksum message ACR ships between buddies.  The paper reports
#: "the checksum data size is only 32 bytes": the implementation checksums the
#: checkpoint in four interleaved stripes of Fletcher-64, which we reproduce.
CHECKSUM_NBYTES = 32
_STRIPES = 4


def _striped_sums(raw: np.ndarray) -> list[tuple[int, int]]:
    """Fletcher-64 partial sums (s1, s2) of each of the 4 byte stripes.

    ``fletcher64(raw[s::4])`` for each stripe ``s``: one strided gather per
    stripe straight into the in-place Fletcher kernel.  Alternatives that
    lose to this on every tested size, kept on record so they are not
    re-tried: (a) word sums recovered from weighted column sums of 16-byte
    rows — numpy's integer matvec is scalar, and routing it through BLAS in
    float64 costs more than the gather; (b) stripe-byte extraction from a
    contiguous ``uint32`` view via shift/mask/``astype(uint8)`` — three full
    vectorized passes per stripe measured ~2x slower than the single strided
    gather.  The gathers remain ~40% of the budget, which is why the striped
    digest trails plain :func:`fletcher64` (each stripe touches every cache
    line); ``bench_checkpoint.py`` gates the ratio against the seed's
    copying implementation instead of against ``fletcher64``.
    """
    sums = []
    for stripe in range(_STRIPES):
        part = np.ascontiguousarray(raw[stripe::_STRIPES])
        words, tail = _split_words(part, np.dtype(np.uint32))
        sums.append(_fletcher(words, tail, _M64, _BLOCK64))
    return sums


def _stripe_nwords(nbytes: int) -> tuple[int, ...]:
    """Padded 32-bit word count of each byte stripe of an ``nbytes`` buffer."""
    counts = []
    for stripe in range(_STRIPES):
        stripe_bytes = (nbytes - stripe + 3) // 4 if nbytes > stripe else 0
        counts.append((stripe_bytes + 3) // 4)
    return tuple(counts)


@dataclass(frozen=True)
class FieldDigest:
    """Striped Fletcher-64 partial sums of one field's bytes.

    Each stripe records ``(s1, s2, nwords)`` — enough to compose digests of
    concatenated fields via Fletcher's identity without touching the bytes
    again (see :func:`combine_digests`).
    """

    nbytes: int
    stripes: tuple[tuple[int, int, int], ...]


def field_digest(data: np.ndarray | bytes) -> FieldDigest:
    """Striped partial sums of one field, striped from the field's own start.

    Fields are striped independently (each field's stripe word stream is
    padded to whole words), so digests stay composable regardless of the
    field's byte offset inside the checkpoint.
    """
    raw = _as_bytes(data)
    sums = _striped_sums(raw)
    nwords = _stripe_nwords(raw.nbytes)
    return FieldDigest(
        nbytes=raw.nbytes,
        stripes=tuple((s1, s2, nw) for (s1, s2), nw in zip(sums, nwords)),
    )


def combine_digests(digests: Sequence[FieldDigest]) -> bytes:
    """Compose per-field digests into the 32-byte checkpoint digest.

    Uses Fletcher's concatenation identity per stripe: appending a segment B
    (``nB`` words, standalone sums ``s1B``/``s2B``) to a prefix with sums
    ``s1A``/``s2A`` gives ``s1 = s1A + s1B`` and ``s2 = s2A + nB*s1A + s2B``.
    """
    modulus = int(_M64)
    out = bytearray()
    for stripe in range(_STRIPES):
        s1 = s2 = 0
        for digest in digests:
            d1, d2, nwords = digest.stripes[stripe]
            s2 = (s2 + nwords * s1 + d2) % modulus
            s1 = (s1 + d1) % modulus
        out += ((s2 << 32) | s1).to_bytes(8, "little")
    assert len(out) == CHECKSUM_NBYTES
    return bytes(out)


class DigestCache:
    """Per-field digest cache for incremental checkpoint checksums.

    Keyed on field name and the ``PackedState.versions`` counter bumped by
    ``pack_into``: a field whose bytes did not change since its digest was
    cached is never rehashed.  One cache serves one checkpoint stream (one
    ``PackedState`` reused across rounds) — do not share it between states.
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple[int, FieldDigest]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, name: str, version: int) -> FieldDigest | None:
        entry = self._entries.get(name)
        if entry is not None and entry[0] == version:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def put(self, name: str, version: int, digest: FieldDigest) -> None:
        self._entries[name] = (version, digest)

    def __len__(self) -> int:
        return len(self._entries)


def checkpoint_checksum(
    data: Any,
    *,
    fields: Sequence[Any] | None = None,
    versions: dict[str, int] | None = None,
    cache: DigestCache | None = None,
) -> bytes:
    """The 32-byte striped Fletcher-64 digest ACR exchanges between buddies.

    Two granularities:

    * **byte-level** (default, ``fields=None``): stripes the whole buffer —
      bit-compatible with what compare_checksums has always shipped.
    * **field-granular**: pass ``fields`` (``FieldRecord``-likes with
      ``name``/``offset``/``nbytes``) — or a ``PackedState``, whose directory
      and versions are picked up automatically — and the digest is composed
      from per-field digests.  With a :class:`DigestCache`, only fields whose
      version changed since the last call are rehashed, so an incremental
      checkpoint that dirtied one field rehashes one field.

    The two granularities are distinct digests (fields pad their stripe words
    independently); both replicas must use the same one.
    """
    if hasattr(data, "buffer") and hasattr(data, "fields"):
        if fields is None:
            fields = data.fields
        if versions is None:
            versions = getattr(data, "versions", None)
        data = data.buffer
    raw = _as_bytes(data)
    if fields is None:
        out = bytearray()
        for s1, s2 in _striped_sums(raw):
            out += ((s2 << 32) | s1).to_bytes(8, "little")
        assert len(out) == CHECKSUM_NBYTES
        return bytes(out)
    digests = []
    for rec in fields:
        version = versions.get(rec.name, 0) if versions else 0
        digest = cache.get(rec.name, version) if cache is not None else None
        if digest is None:
            digest = field_digest(raw[rec.offset : rec.offset + rec.nbytes])
            if cache is not None:
                cache.put(rec.name, version, digest)
        digests.append(digest)
    return combine_digests(digests)
