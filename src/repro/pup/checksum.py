"""Position-dependent Fletcher checksums (paper §4.2).

ACR's network-congestion optimization replaces shipping the full checkpoint to
the buddy with shipping a small checksum.  The paper uses *Fletcher's
position-dependent checksum*: unlike a plain additive checksum, Fletcher's
second running sum weights each word by its position, so transposed or
relocated corruption is detected.

The paper's cost argument — copying a byte costs 1 instruction while summing it
into a Fletcher checksum costs 4 — is mirrored by the network cost model in
:mod:`repro.network.costs` (checksum wins only when ``gamma < beta / 4``).

Both sums are computed blockwise with vectorized numpy arithmetic; the modulus
is only applied per block, which is exact because block sizes are chosen so the
int64 accumulators cannot overflow.
"""

from __future__ import annotations

import numpy as np

#: Fletcher-32 operates on 16-bit words modulo 65535.
_M32 = np.int64(65535)
#: Fletcher-64 operates on 32-bit words modulo 2**32 - 1.
_M64 = np.int64(2**32 - 1)

#: Block sizes guaranteeing no int64 overflow in the weighted sums:
#: sum(weight_i * word_i) <= block * block * word_max.
_BLOCK32 = 1 << 20
_BLOCK64 = 1 << 14


def _to_words(data: np.ndarray, word_dtype: np.dtype) -> np.ndarray:
    """View byte data as little-endian words, zero-padding the tail."""
    raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    word_size = word_dtype.itemsize
    rem = raw.nbytes % word_size
    if rem:
        raw = np.concatenate([raw, np.zeros(word_size - rem, dtype=np.uint8)])
    return raw.view(word_dtype.newbyteorder("<")).astype(np.int64)


def _fletcher(words: np.ndarray, modulus: np.int64, block: int) -> tuple[int, int]:
    s1 = np.int64(0)
    s2 = np.int64(0)
    n = words.size
    for start in range(0, n, block):
        chunk = words[start : start + block]
        k = chunk.size
        # Within the block: s1 advances by sum(chunk); s2 advances by
        # k * s1_before + sum((k - i) * chunk[i]) with i zero-based.
        weights = np.arange(k, 0, -1, dtype=np.int64)
        chunk_sum = np.int64(chunk.sum() % modulus)
        weighted = np.int64((weights * chunk).sum() % modulus)
        s2 = (s2 + (np.int64(k) % modulus) * s1 + weighted) % modulus
        s1 = (s1 + chunk_sum) % modulus
    return int(s1), int(s2)


def fletcher32(data: np.ndarray | bytes) -> int:
    """Fletcher-32 checksum of a byte buffer (16-bit words mod 65535)."""
    if isinstance(data, (bytes, bytearray, memoryview)):
        data = np.frombuffer(bytes(data), dtype=np.uint8)
    words = _to_words(data, np.dtype(np.uint16))
    s1, s2 = _fletcher(words, _M32, _BLOCK32)
    return (s2 << 16) | s1


def fletcher64(data: np.ndarray | bytes) -> int:
    """Fletcher-64 checksum of a byte buffer (32-bit words mod 2**32-1)."""
    if isinstance(data, (bytes, bytearray, memoryview)):
        data = np.frombuffer(bytes(data), dtype=np.uint8)
    words = _to_words(data, np.dtype(np.uint32))
    s1, s2 = _fletcher(words, _M64, _BLOCK64)
    return (s2 << 32) | s1


#: Size of the checksum message ACR ships between buddies.  The paper reports
#: "the checksum data size is only 32 bytes": the implementation checksums the
#: checkpoint in four interleaved stripes of Fletcher-64, which we reproduce.
CHECKSUM_NBYTES = 32
_STRIPES = 4


def checkpoint_checksum(data: np.ndarray | bytes) -> bytes:
    """The 32-byte striped Fletcher-64 digest ACR exchanges between buddies."""
    if isinstance(data, (bytes, bytearray, memoryview)):
        data = np.frombuffer(bytes(data), dtype=np.uint8)
    raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    out = bytearray()
    for stripe in range(_STRIPES):
        out += fletcher64(raw[stripe::_STRIPES]).to_bytes(8, "little")
    assert len(out) == CHECKSUM_NBYTES
    return bytes(out)
