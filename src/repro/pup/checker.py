"""Checkpoint comparison — the ``PUPer::checker`` of the paper (§4.1).

Every node in replica 2 receives the remote checkpoint of its buddy in
replica 1 and compares it against its own local checkpoint.  The comparison is
field-aware:

* bit-exact by default;
* per-field relative/absolute tolerances let applications accept floating-point
  round-off differences between replicas;
* fields marked ``skip_compare`` (timers, rank-dependent bookkeeping, ...) are
  serialized but never compared.

The checksum path compares 32-byte Fletcher digests instead of full buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pup.checksum import checkpoint_checksum
from repro.pup.puper import PackedState, PUPError


@dataclass(frozen=True)
class FieldMismatch:
    """One field that differed between the local and remote checkpoints."""

    name: str
    kind: str  # "value", "structure"
    n_differing: int = 0
    max_abs_diff: float = 0.0
    detail: str = ""


@dataclass
class ComparisonResult:
    """Outcome of comparing two checkpoints of supposedly identical state."""

    match: bool
    mismatches: list[FieldMismatch] = field(default_factory=list)
    compared_bytes: int = 0
    skipped_bytes: int = 0
    method: str = "full"

    def summary(self) -> str:
        if self.match:
            return f"checkpoints match ({self.compared_bytes} bytes compared, {self.method})"
        names = ", ".join(m.name for m in self.mismatches[:5])
        more = "" if len(self.mismatches) <= 5 else f" (+{len(self.mismatches) - 5} more)"
        return f"SDC detected in fields: {names}{more}"


def _field_view(state: PackedState, rec) -> np.ndarray:
    raw = state.buffer[rec.offset : rec.offset + rec.nbytes]
    return raw.view(np.dtype(rec.dtype)).reshape(rec.shape)


def compare_checkpoints(
    local: PackedState,
    remote: PackedState,
    *,
    default_rtol: float = 0.0,
    default_atol: float = 0.0,
) -> ComparisonResult:
    """Field-by-field comparison of two packed checkpoints.

    Parameters
    ----------
    local, remote:
        Checkpoints produced by the *same* pup description on the two replicas.
    default_rtol, default_atol:
        Global tolerances applied to floating-point fields that did not set
        their own; mirrors the user-customizable comparison function of §4.1.
    """
    result = ComparisonResult(match=True)
    if len(local.fields) != len(remote.fields):
        result.match = False
        result.mismatches.append(
            FieldMismatch(
                name="<directory>",
                kind="structure",
                detail=f"{len(local.fields)} vs {len(remote.fields)} fields",
            )
        )
        return result

    for lrec, rrec in zip(local.fields, remote.fields):
        if (lrec.name, lrec.dtype, lrec.shape) != (rrec.name, rrec.dtype, rrec.shape):
            result.match = False
            result.mismatches.append(
                FieldMismatch(
                    name=lrec.name,
                    kind="structure",
                    detail=f"{(lrec.dtype, lrec.shape)} vs {(rrec.dtype, rrec.shape)}",
                )
            )
            continue
        if lrec.skip_compare:
            result.skipped_bytes += lrec.nbytes
            continue

        lview = _field_view(local, lrec)
        rview = _field_view(remote, rrec)
        result.compared_bytes += lrec.nbytes

        rtol = lrec.rtol if lrec.rtol > 0 else default_rtol
        atol = lrec.atol if lrec.atol > 0 else default_atol
        is_float = np.issubdtype(lview.dtype, np.floating)
        if is_float and (rtol > 0 or atol > 0):
            ok = np.allclose(lview, rview, rtol=rtol, atol=atol, equal_nan=True)
            if not ok:
                with np.errstate(invalid="ignore"):
                    diff = np.abs(np.asarray(lview, dtype=np.float64)
                                  - np.asarray(rview, dtype=np.float64))
                bad = ~np.isclose(lview, rview, rtol=rtol, atol=atol, equal_nan=True)
                result.match = False
                result.mismatches.append(
                    FieldMismatch(
                        name=lrec.name,
                        kind="value",
                        n_differing=int(np.count_nonzero(bad)),
                        max_abs_diff=float(np.nanmax(diff)) if diff.size else 0.0,
                    )
                )
        else:
            lraw = local.buffer[lrec.offset : lrec.offset + lrec.nbytes]
            rraw = remote.buffer[rrec.offset : rrec.offset + rrec.nbytes]
            if not np.array_equal(lraw, rraw):
                bad = lraw != rraw
                result.match = False
                max_diff = 0.0
                if is_float:
                    with np.errstate(invalid="ignore"):
                        d = np.abs(np.asarray(lview, dtype=np.float64)
                                   - np.asarray(rview, dtype=np.float64))
                    max_diff = float(np.nanmax(d)) if d.size else 0.0
                result.mismatches.append(
                    FieldMismatch(
                        name=lrec.name,
                        kind="value",
                        n_differing=int(np.count_nonzero(bad)),
                        max_abs_diff=max_diff,
                    )
                )
    return result


def compare_checksums(local: PackedState, remote_digest: bytes) -> ComparisonResult:
    """Compare a local checkpoint against the buddy's 32-byte Fletcher digest.

    This is the low-bandwidth detection path (§4.2).  It cannot report *which*
    field was corrupted — only that corruption happened — and it cannot honour
    per-field tolerances; the paper accepts both limitations.
    """
    if len(remote_digest) != len(checkpoint_checksum(np.empty(0, dtype=np.uint8))):
        raise PUPError(f"bad checksum digest length {len(remote_digest)}")
    local_digest = checkpoint_checksum(local.buffer)
    match = local_digest == remote_digest
    result = ComparisonResult(match=match, compared_bytes=local.nbytes, method="checksum")
    if not match:
        result.mismatches.append(
            FieldMismatch(name="<checksum>", kind="value", detail="Fletcher digest differs")
        )
    return result
