"""PUP (Pack/UnPack) serialization framework — the checkpoint substrate.

Mirrors the Charm++ PUP framework ACR builds on (paper §4.1): one ``pup``
description per application drives sizing, packing, unpacking, and SDC
comparison, plus the Fletcher checksum optimization of §4.2.
"""

from repro.pup.checker import (
    ComparisonResult,
    FieldMismatch,
    compare_checkpoints,
    compare_checksums,
)
from repro.pup.checksum import (
    CHECKSUM_NBYTES,
    DigestCache,
    FieldDigest,
    checkpoint_checksum,
    combine_digests,
    field_digest,
    fletcher32,
    fletcher64,
)
from repro.pup.puper import (
    BufferPackingPUPer,
    FieldRecord,
    PackedState,
    PackingPUPer,
    Pupable,
    PUPError,
    PUPer,
    SizingPUPer,
    UnpackingPUPer,
    pack,
    pack_into,
    sizeof,
    unpack,
)

__all__ = [
    "ComparisonResult",
    "FieldMismatch",
    "compare_checkpoints",
    "compare_checksums",
    "CHECKSUM_NBYTES",
    "DigestCache",
    "FieldDigest",
    "checkpoint_checksum",
    "combine_digests",
    "field_digest",
    "fletcher32",
    "fletcher64",
    "BufferPackingPUPer",
    "FieldRecord",
    "PackedState",
    "PackingPUPer",
    "Pupable",
    "PUPError",
    "PUPer",
    "SizingPUPer",
    "UnpackingPUPer",
    "pack",
    "pack_into",
    "sizeof",
    "unpack",
]
