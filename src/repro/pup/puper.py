"""Pack/UnPack (PUP) serialization framework.

This mirrors the Charm++ PUP framework that ACR builds on (paper §4.1): an
application describes its state once in a ``pup(p)`` method, and the same
description drives four operations:

* **sizing** — compute the checkpoint footprint (:class:`SizingPUPer`);
* **packing** — serialize state into a flat byte buffer (:class:`PackingPUPer`);
* **unpacking** — restore state from a buffer (:class:`UnpackingPUPer`);
* **checking** — compare two checkpoints field-by-field to detect silent data
  corruption (:mod:`repro.pup.checker`), including user-customizable per-field
  tolerances and skipped fields, exactly as the paper's ``PUPer::checker``.

All pup methods *return* the field value; during unpacking the returned value
is the deserialized one, so application code is written direction-agnostically::

    def pup(self, p):
        self.iteration = p.pup_int("iteration", self.iteration)
        self.grid = p.pup_array("grid", self.grid)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.util.errors import ACRError


class PUPError(ACRError):
    """Raised on malformed pup descriptions or corrupt buffers."""


@runtime_checkable
class Pupable(Protocol):
    """Anything that exposes its checkpointable state through ``pup``."""

    def pup(self, p: "PUPer") -> None:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class FieldRecord:
    """Directory entry for one pupped field inside a packed buffer."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int
    #: Relative tolerance for SDC comparison; 0.0 means bit-exact.
    rtol: float = 0.0
    #: Absolute tolerance for SDC comparison.
    atol: float = 0.0
    #: Fields marked skip are serialized but never compared (paper §4.1:
    #: "ignore comparing data that may vary between different replicas").
    skip_compare: bool = False


def _as_array(name: str, value: Any) -> np.ndarray:
    arr = np.asarray(value)
    if arr.dtype == object:
        raise PUPError(f"field {name!r}: object dtypes cannot be pupped")
    return arr


class PUPer:
    """Base class defining the pup vocabulary.

    Subclasses implement :meth:`_handle` to size, write, or read the field.
    """

    #: True when the PUPer restores state (application code may branch on it,
    #: e.g. to rebuild derived data after restart).
    is_unpacking: bool = False
    #: True when the PUPer only measures sizes.
    is_sizing: bool = False

    def _handle(
        self,
        name: str,
        arr: np.ndarray,
        *,
        rtol: float,
        atol: float,
        skip_compare: bool,
    ) -> np.ndarray:
        raise NotImplementedError

    def _dispatch(self, name: str, arr: np.ndarray, *, rtol: float = 0.0,
                  atol: float = 0.0, skip_compare: bool = False) -> np.ndarray:
        return self._handle(_qualify(name), arr, rtol=rtol, atol=atol,
                            skip_compare=skip_compare)

    # -- scalar helpers --------------------------------------------------------
    def pup_int(self, name: str, value: int) -> int:
        out = self._dispatch(name, np.asarray(int(value), dtype=np.int64))
        return int(out)

    def pup_float(
        self, name: str, value: float, *, rtol: float = 0.0, atol: float = 0.0,
        skip_compare: bool = False,
    ) -> float:
        out = self._dispatch(name, np.asarray(float(value), dtype=np.float64),
                             rtol=rtol, atol=atol, skip_compare=skip_compare)
        return float(out)

    def pup_bool(self, name: str, value: bool) -> bool:
        out = self._dispatch(name, np.asarray(1 if value else 0, dtype=np.int64))
        return bool(int(out))

    def pup_str(self, name: str, value: str) -> str:
        data = np.frombuffer(value.encode("utf-8"), dtype=np.uint8).copy()
        # The buffer is a transient copy: mark it read-only so in-place fault
        # injectors know corrupting it would never reach the application.
        data.flags.writeable = False
        out = self._dispatch(name, data)
        return bytes(np.asarray(out, dtype=np.uint8)).decode("utf-8")

    def pup_bytes(self, name: str, value: bytes) -> bytes:
        data = np.frombuffer(value, dtype=np.uint8).copy()
        data.flags.writeable = False
        out = self._dispatch(name, data)
        return bytes(np.asarray(out, dtype=np.uint8))

    # -- array / composite helpers ---------------------------------------------
    def pup_array(
        self,
        name: str,
        value: np.ndarray,
        *,
        rtol: float = 0.0,
        atol: float = 0.0,
        skip_compare: bool = False,
    ) -> np.ndarray:
        """Pup a numpy array (the common case for HPC state)."""
        return self._dispatch(name, _as_array(name, value),
                              rtol=rtol, atol=atol, skip_compare=skip_compare)

    def pup_object(self, name: str, obj: Pupable) -> Pupable:
        """Pup a nested object that itself implements ``pup``."""
        with _scope(name):
            obj.pup(self)
        return obj

    def pup_list_of_arrays(
        self, name: str, values: list[np.ndarray], *, rtol: float = 0.0,
        atol: float = 0.0,
    ) -> list[np.ndarray]:
        """Pup a list of arrays whose length is part of the state."""
        n = self.pup_int(f"{name}.__len__", len(values))
        if self.is_unpacking and n != len(values):
            # The caller restores into a list of possibly different length:
            # grow/shrink with empty placeholders before reading elements.
            values = [np.empty(0) for _ in range(n)]
        out = []
        for i in range(n):
            src = values[i] if i < len(values) else np.empty(0)
            out.append(self.pup_array(f"{name}[{i}]", src, rtol=rtol, atol=atol))
        if not self.is_unpacking:
            return values
        return out


# -- field-name scoping for nested objects --------------------------------------
_SCOPE_STACK: list[str] = []


class _scope:
    def __init__(self, name: str):
        self.name = name

    def __enter__(self):
        _SCOPE_STACK.append(self.name)

    def __exit__(self, *exc):
        _SCOPE_STACK.pop()


def _qualify(name: str) -> str:
    if _SCOPE_STACK:
        return ".".join(_SCOPE_STACK) + "." + name
    return name


class SizingPUPer(PUPer):
    """Counts the serialized size of an object without copying data."""

    is_sizing = True

    def __init__(self) -> None:
        self.nbytes = 0
        self.nfields = 0

    def _handle(self, name, arr, *, rtol, atol, skip_compare):
        self.nbytes += arr.nbytes
        self.nfields += 1
        return arr


class PackingPUPer(PUPer):
    """Serializes an object into a flat ``uint8`` buffer with a field directory."""

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self.fields: list[FieldRecord] = []
        self._offset = 0
        self._names: set[str] = set()

    def _handle(self, name, arr, *, rtol, atol, skip_compare):
        if name in self._names:
            raise PUPError(f"duplicate pup field name {name!r}")
        self._names.add(name)
        flat = np.ascontiguousarray(arr).view(np.uint8).reshape(-1)
        self.fields.append(
            FieldRecord(
                name=name,
                dtype=str(arr.dtype),
                shape=tuple(arr.shape),
                offset=self._offset,
                nbytes=flat.nbytes,
                rtol=rtol,
                atol=atol,
                skip_compare=skip_compare,
            )
        )
        self._chunks.append(flat.copy())
        self._offset += flat.nbytes
        return arr

    def buffer(self) -> np.ndarray:
        """Concatenate all packed chunks into one contiguous buffer."""
        if not self._chunks:
            return np.empty(0, dtype=np.uint8)
        return np.concatenate(self._chunks)


class UnpackingPUPer(PUPer):
    """Restores an object from a buffer produced by :class:`PackingPUPer`.

    Fields are matched positionally *and* validated by name/dtype/shape, so a
    drifting pup description fails loudly rather than silently misreading.
    """

    is_unpacking = True

    def __init__(self, buffer: np.ndarray, fields: list[FieldRecord]):
        self._buffer = np.asarray(buffer, dtype=np.uint8)
        self._fields = fields
        self._index = 0

    def _handle(self, name, arr, *, rtol, atol, skip_compare):
        if self._index >= len(self._fields):
            raise PUPError(f"pup description reads past checkpoint end at {name!r}")
        rec = self._fields[self._index]
        self._index += 1
        if rec.name != name:
            raise PUPError(f"pup field order mismatch: expected {rec.name!r}, got {name!r}")
        raw = self._buffer[rec.offset : rec.offset + rec.nbytes]
        if raw.nbytes != rec.nbytes:
            raise PUPError(f"field {name!r}: truncated checkpoint buffer")
        restored = raw.view(np.dtype(rec.dtype)).reshape(rec.shape)
        if (arr.shape == rec.shape and str(arr.dtype) == rec.dtype
                and arr.flags.writeable and arr.ndim > 0):
            # In-place restore: large state arrays keep their identity, which
            # matters for applications holding views into them.
            np.copyto(arr, restored)
            return arr
        return restored.copy()

    def finish(self) -> None:
        """Assert the pup description consumed exactly the whole directory."""
        if self._index != len(self._fields):
            raise PUPError(
                f"pup description consumed {self._index} of {len(self._fields)} fields"
            )


@dataclass
class PackedState:
    """A serialized object state: buffer plus field directory.

    This is the unit that ACR stores, ships between buddies, and compares.
    """

    buffer: np.ndarray
    fields: list[FieldRecord] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return int(self.buffer.nbytes)

    def copy(self) -> "PackedState":
        return PackedState(self.buffer.copy(), list(self.fields))


def pack(obj: Pupable) -> PackedState:
    """Serialize ``obj`` via its pup method."""
    p = PackingPUPer()
    obj.pup(p)
    return PackedState(p.buffer(), p.fields)


def unpack(obj: Pupable, state: PackedState) -> None:
    """Restore ``obj`` in place from a :class:`PackedState`."""
    p = UnpackingPUPer(state.buffer, state.fields)
    obj.pup(p)
    p.finish()


def sizeof(obj: Pupable) -> int:
    """Checkpoint footprint of ``obj`` in bytes."""
    p = SizingPUPer()
    obj.pup(p)
    return p.nbytes
