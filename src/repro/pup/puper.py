"""Pack/UnPack (PUP) serialization framework.

This mirrors the Charm++ PUP framework that ACR builds on (paper §4.1): an
application describes its state once in a ``pup(p)`` method, and the same
description drives four operations:

* **sizing** — compute the checkpoint footprint (:class:`SizingPUPer`);
* **packing** — serialize state into a flat byte buffer.  The default
  :func:`pack` path sizes the object first and then writes every field
  directly into one preallocated buffer (:class:`BufferPackingPUPer`); the
  chunk-and-concatenate :class:`PackingPUPer` remains as the streaming
  fallback for objects whose size cannot be measured up front.
* **unpacking** — restore state from a buffer (:class:`UnpackingPUPer`);
* **checking** — compare two checkpoints field-by-field to detect silent data
  corruption (:mod:`repro.pup.checker`), including user-customizable per-field
  tolerances and skipped fields, exactly as the paper's ``PUPer::checker``.

All pup methods *return* the field value; during unpacking the returned value
is the deserialized one, so application code is written direction-agnostically::

    def pup(self, p):
        self.iteration = p.pup_int("iteration", self.iteration)
        self.grid = p.pup_array("grid", self.grid)

Steady-state checkpointing should use :func:`pack_into`, which reuses the
buffer (and field directory) of the previous round: after the first call the
hot path allocates nothing and optionally tracks which fields actually
changed, enabling incremental checksums (:mod:`repro.pup.checksum`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.util.errors import ACRError


class PUPError(ACRError):
    """Raised on malformed pup descriptions or corrupt buffers."""


@runtime_checkable
class Pupable(Protocol):
    """Anything that exposes its checkpointable state through ``pup``."""

    def pup(self, p: "PUPer") -> None:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class FieldRecord:
    """Directory entry for one pupped field inside a packed buffer."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int
    #: Relative tolerance for SDC comparison; 0.0 means bit-exact.
    rtol: float = 0.0
    #: Absolute tolerance for SDC comparison.
    atol: float = 0.0
    #: Fields marked skip are serialized but never compared (paper §4.1:
    #: "ignore comparing data that may vary between different replicas").
    skip_compare: bool = False


def _as_array(name: str, value: Any) -> np.ndarray:
    arr = np.asarray(value)
    if arr.dtype == object:
        raise PUPError(f"field {name!r}: object dtypes cannot be pupped")
    return arr


class PUPer:
    """Base class defining the pup vocabulary.

    Subclasses implement :meth:`_handle` to size, write, or read the field.
    """

    #: True when the PUPer restores state (application code may branch on it,
    #: e.g. to rebuild derived data after restart).
    is_unpacking: bool = False
    #: True when the PUPer only measures sizes.
    is_sizing: bool = False
    #: Per-instance stack of nested-object scope names.  Kept on the instance
    #: (not the module) so independent PUPers — e.g. on different campaign
    #: worker processes or threads — can pup nested objects concurrently.
    #: Lazily created so subclasses need not call ``super().__init__``.
    _scopes: list[str] | None = None

    def _handle(
        self,
        name: str,
        arr: np.ndarray,
        *,
        rtol: float,
        atol: float,
        skip_compare: bool,
    ) -> np.ndarray:
        raise NotImplementedError

    def _dispatch(self, name: str, arr: np.ndarray, *, rtol: float = 0.0,
                  atol: float = 0.0, skip_compare: bool = False) -> np.ndarray:
        return self._handle(self._qualify(name), arr, rtol=rtol, atol=atol,
                            skip_compare=skip_compare)

    def _qualify(self, name: str) -> str:
        if self._scopes:
            return ".".join(self._scopes) + "." + name
        return name

    # -- scalar helpers --------------------------------------------------------
    def pup_int(self, name: str, value: int) -> int:
        out = self._dispatch(name, np.asarray(int(value), dtype=np.int64))
        return int(out)

    def pup_float(
        self, name: str, value: float, *, rtol: float = 0.0, atol: float = 0.0,
        skip_compare: bool = False,
    ) -> float:
        out = self._dispatch(name, np.asarray(float(value), dtype=np.float64),
                             rtol=rtol, atol=atol, skip_compare=skip_compare)
        return float(out)

    def pup_bool(self, name: str, value: bool) -> bool:
        out = self._dispatch(name, np.asarray(1 if value else 0, dtype=np.int64))
        return bool(int(out))

    def pup_str(self, name: str, value: str) -> str:
        data = np.frombuffer(value.encode("utf-8"), dtype=np.uint8).copy()
        # The buffer is a transient copy: mark it read-only so in-place fault
        # injectors know corrupting it would never reach the application.
        data.flags.writeable = False
        out = self._dispatch(name, data)
        return bytes(np.asarray(out, dtype=np.uint8)).decode("utf-8")

    def pup_bytes(self, name: str, value: bytes) -> bytes:
        data = np.frombuffer(value, dtype=np.uint8).copy()
        data.flags.writeable = False
        out = self._dispatch(name, data)
        return bytes(np.asarray(out, dtype=np.uint8))

    # -- array / composite helpers ---------------------------------------------
    def pup_array(
        self,
        name: str,
        value: np.ndarray,
        *,
        rtol: float = 0.0,
        atol: float = 0.0,
        skip_compare: bool = False,
    ) -> np.ndarray:
        """Pup a numpy array (the common case for HPC state)."""
        return self._dispatch(name, _as_array(name, value),
                              rtol=rtol, atol=atol, skip_compare=skip_compare)

    def pup_object(self, name: str, obj: Pupable) -> Pupable:
        """Pup a nested object that itself implements ``pup``."""
        if self._scopes is None:
            self._scopes = []
        self._scopes.append(name)
        try:
            obj.pup(self)
        finally:
            self._scopes.pop()
        return obj

    def pup_list_of_arrays(
        self, name: str, values: list[np.ndarray], *, rtol: float = 0.0,
        atol: float = 0.0,
    ) -> list[np.ndarray]:
        """Pup a list of arrays whose length is part of the state."""
        n = self.pup_int(f"{name}.__len__", len(values))
        if self.is_unpacking and n != len(values):
            # The caller restores into a list of possibly different length:
            # grow/shrink with empty placeholders before reading elements.
            values = [np.empty(0) for _ in range(n)]
        out = []
        for i in range(n):
            src = values[i] if i < len(values) else np.empty(0)
            out.append(self.pup_array(f"{name}[{i}]", src, rtol=rtol, atol=atol))
        if not self.is_unpacking:
            return values
        return out


class SizingPUPer(PUPer):
    """Counts the serialized size of an object without copying data."""

    is_sizing = True

    def __init__(self) -> None:
        self.nbytes = 0
        self.nfields = 0

    def _handle(self, name, arr, *, rtol, atol, skip_compare):
        self.nbytes += arr.nbytes
        self.nfields += 1
        return arr


class PackingPUPer(PUPer):
    """Streaming packer: collects per-field chunks, concatenated on demand.

    Copies every field twice (once into its chunk, once in the final
    concatenation).  :func:`pack` no longer uses it — it sizes first and
    writes through :class:`BufferPackingPUPer` in a single pass — but the
    streaming path survives for objects whose pup description is too
    expensive or side-effectful to run twice, and as the reference baseline
    for the packing micro-benchmarks.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self.fields: list[FieldRecord] = []
        self._offset = 0
        self._names: set[str] = set()

    def _handle(self, name, arr, *, rtol, atol, skip_compare):
        if name in self._names:
            raise PUPError(f"duplicate pup field name {name!r}")
        self._names.add(name)
        flat = np.ascontiguousarray(arr).view(np.uint8).reshape(-1)
        self.fields.append(
            FieldRecord(
                name=name,
                dtype=str(arr.dtype),
                shape=tuple(arr.shape),
                offset=self._offset,
                nbytes=flat.nbytes,
                rtol=rtol,
                atol=atol,
                skip_compare=skip_compare,
            )
        )
        self._chunks.append(flat.copy())
        self._offset += flat.nbytes
        return arr

    def buffer(self) -> np.ndarray:
        """Concatenate all packed chunks into one contiguous buffer."""
        if not self._chunks:
            return np.empty(0, dtype=np.uint8)
        return np.concatenate(self._chunks)


class BufferPackingPUPer(PUPer):
    """Zero-copy packer: writes each field directly into a preallocated buffer.

    Two modes:

    * **first pass** (``expect=None``) — builds the field directory while
      writing; the caller preallocates ``buffer`` from :class:`SizingPUPer`.
    * **reuse** (``expect`` = previous round's directory) — every field is
      validated against the previous round (name, dtype, shape) and written
      into the same slice, so a drifting pup description raises
      :class:`PUPError` instead of silently writing out of bounds.  With
      ``track_dirty=True``, a field whose bytes are unchanged is left alone
      (its cached checksum digest stays valid); changed fields bump their
      entry in ``versions`` so incremental checksums know what to rehash.
    """

    def __init__(
        self,
        buffer: np.ndarray,
        *,
        expect: list[FieldRecord] | None = None,
        versions: dict[str, int] | None = None,
        track_dirty: bool = False,
    ) -> None:
        buf = np.asarray(buffer)
        if buf.dtype != np.uint8 or buf.ndim != 1:
            raise PUPError("pack buffer must be a flat uint8 array")
        if not buf.flags.writeable or not buf.flags.c_contiguous:
            raise PUPError("pack buffer must be writable and contiguous")
        self._buffer = buf
        self._expect = expect
        self.versions: dict[str, int] = versions if versions is not None else {}
        self._track_dirty = track_dirty
        self.fields: list[FieldRecord] = [] if expect is None else expect
        self._offset = 0
        self._index = 0
        self._names: set[str] = set()

    def _handle(self, name, arr, *, rtol, atol, skip_compare):
        flat = np.ascontiguousarray(arr).view(np.uint8).reshape(-1)
        if self._expect is None:
            if name in self._names:
                raise PUPError(f"duplicate pup field name {name!r}")
            self._names.add(name)
            end = self._offset + flat.nbytes
            if end > self._buffer.nbytes:
                raise PUPError(
                    f"field {name!r} overflows the sized pack buffer "
                    f"({end} > {self._buffer.nbytes} bytes); the pup "
                    "description changed between sizing and packing"
                )
            self._buffer[self._offset:end] = flat
            self.fields.append(
                FieldRecord(
                    name=name,
                    dtype=str(arr.dtype),
                    shape=tuple(arr.shape),
                    offset=self._offset,
                    nbytes=flat.nbytes,
                    rtol=rtol,
                    atol=atol,
                    skip_compare=skip_compare,
                )
            )
            self._offset = end
            return arr

        # Reuse: the directory from the previous round is the contract.
        if self._index >= len(self._expect):
            raise PUPError(
                f"pup description grew since last pack: unexpected field {name!r}"
            )
        rec = self._expect[self._index]
        self._index += 1
        if rec.name != name:
            raise PUPError(
                f"pup field order mismatch: expected {rec.name!r}, got {name!r}"
            )
        if str(arr.dtype) != rec.dtype or tuple(arr.shape) != rec.shape:
            raise PUPError(
                f"field {name!r} drifted since last pack: "
                f"({rec.dtype}, {rec.shape}) -> ({arr.dtype}, {tuple(arr.shape)}); "
                "repack from scratch instead of pack_into"
            )
        dst = self._buffer[rec.offset : rec.offset + rec.nbytes]
        if self._track_dirty and np.array_equal(dst, flat):
            return arr
        dst[:] = flat
        self.versions[name] = self.versions.get(name, 0) + 1
        return arr

    def finish(self) -> None:
        """Assert the pup description matched the buffer / directory exactly."""
        if self._expect is not None:
            if self._index != len(self._expect):
                raise PUPError(
                    f"pup description consumed {self._index} of "
                    f"{len(self._expect)} fields"
                )
        elif self._offset != self._buffer.nbytes:
            raise PUPError(
                f"pup description wrote {self._offset} of "
                f"{self._buffer.nbytes} sized bytes"
            )


class UnpackingPUPer(PUPer):
    """Restores an object from a buffer produced by :class:`PackingPUPer`.

    Fields are matched positionally *and* validated by name/dtype/shape, so a
    drifting pup description fails loudly rather than silently misreading.
    """

    is_unpacking = True

    def __init__(self, buffer: np.ndarray, fields: list[FieldRecord]):
        self._buffer = np.asarray(buffer, dtype=np.uint8)
        self._fields = fields
        self._index = 0

    def _handle(self, name, arr, *, rtol, atol, skip_compare):
        if self._index >= len(self._fields):
            raise PUPError(f"pup description reads past checkpoint end at {name!r}")
        rec = self._fields[self._index]
        self._index += 1
        if rec.name != name:
            raise PUPError(f"pup field order mismatch: expected {rec.name!r}, got {name!r}")
        raw = self._buffer[rec.offset : rec.offset + rec.nbytes]
        if raw.nbytes != rec.nbytes:
            raise PUPError(f"field {name!r}: truncated checkpoint buffer")
        restored = raw.view(np.dtype(rec.dtype)).reshape(rec.shape)
        if (arr.shape == rec.shape and str(arr.dtype) == rec.dtype
                and arr.flags.writeable and arr.ndim > 0):
            # In-place restore: large state arrays keep their identity, which
            # matters for applications holding views into them.
            np.copyto(arr, restored)
            return arr
        return restored.copy()

    def finish(self) -> None:
        """Assert the pup description consumed exactly the whole directory."""
        if self._index != len(self._fields):
            raise PUPError(
                f"pup description consumed {self._index} of {len(self._fields)} fields"
            )


@dataclass
class PackedState:
    """A serialized object state: buffer plus field directory.

    This is the unit that ACR stores, ships between buddies, and compares.
    ``versions`` counts how many times each field's bytes have changed across
    :func:`pack_into` rounds (missing name = 0); incremental checksum caches
    key on it to decide which fields need rehashing.
    """

    buffer: np.ndarray
    fields: list[FieldRecord] = field(default_factory=list)
    versions: dict[str, int] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return int(self.buffer.nbytes)

    def version_of(self, name: str) -> int:
        return self.versions.get(name, 0)

    def copy(self) -> "PackedState":
        return PackedState(self.buffer.copy(), list(self.fields),
                           dict(self.versions))


def pack(obj: Pupable) -> PackedState:
    """Serialize ``obj`` via its pup method.

    Sizes the object first, then writes every field straight into one
    preallocated buffer — a single copy of the payload, no chunk list, no
    concatenation.  Requires the pup description to be deterministic across
    the two passes (true for checkpoint state by construction; a description
    that disagrees with its own sizing raises :class:`PUPError`).
    """
    sizer = SizingPUPer()
    obj.pup(sizer)
    buf = np.empty(sizer.nbytes, dtype=np.uint8)
    p = BufferPackingPUPer(buf)
    obj.pup(p)
    p.finish()
    return PackedState(buf, p.fields)


def pack_into(
    obj: Pupable,
    state: PackedState | None = None,
    *,
    track_dirty: bool = False,
) -> PackedState:
    """Serialize ``obj``, reusing ``state``'s buffer and directory in place.

    The steady-state checkpoint hot path: the first call (``state=None``)
    allocates the buffer once; subsequent calls with the returned state write
    into the *same* buffer object (identity is preserved — zero allocations
    per round) and validate every field against the previous round's
    directory, raising :class:`PUPError` on shape/dtype/order drift.

    With ``track_dirty=True`` unchanged fields are detected (one compare, no
    write) and their ``state.versions`` entry stays put, so an incremental
    checksum cache (:class:`repro.pup.checksum.DigestCache`) only rehashes
    fields that actually changed.  Leave it off when most fields change every
    round — an unconditional write is cheaper than compare-then-write.
    """
    if state is None:
        out = pack(obj)
        out.versions = {}
        return out
    p = BufferPackingPUPer(state.buffer, expect=state.fields,
                           versions=state.versions, track_dirty=track_dirty)
    obj.pup(p)
    p.finish()
    return state


def unpack(obj: Pupable, state: PackedState) -> None:
    """Restore ``obj`` in place from a :class:`PackedState`."""
    p = UnpackingPUPer(state.buffer, state.fields)
    obj.pup(p)
    p.finish()


def sizeof(obj: Pupable) -> int:
    """Checkpoint footprint of ``obj`` in bytes."""
    p = SizingPUPer()
    obj.pup(p)
    return p.nbytes
