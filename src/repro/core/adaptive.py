"""Online adaptation of the checkpoint period (paper §2.2, Fig. 12).

"It is important to fit the actual observed failures during application
execution to a certain distribution and dynamically schedule the checkpoints
based on the current trend of the distribution."

We fit the observed failure stream to a Weibull (power-law) process — the
distribution Schroeder & Gibson found to describe real HPC failure logs —
using the closed-form maximum-likelihood estimators of the Crow-AMSAA model:
with failures at times ``t_1 < ... < t_n`` observed up to time ``T``,

    k̂ = n / Σ ln(T / t_i),        current hazard  h(T) = k̂ · n / T,

so the current MTBF estimate is ``T / (k̂ n)``.  For a decreasing failure
rate (k < 1) this estimate *grows* as the run ages, and the Daly period
``√(2 δ M)`` grows with it — exactly the 6 s → 17 s adaptation of Fig. 12.
A plain exponential fit (k forced to 1) is available for comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.daly import daly_tau
from repro.util.errors import ConfigurationError, SimulationError


@dataclass(frozen=True)
class FitResult:
    """Current distribution fit of the observed failure stream."""

    n_failures: int
    shape: float          # Weibull shape k (1.0 = Poisson)
    current_mtbf: float   # 1 / hazard at the observation time
    observed_mean: float  # plain mean inter-arrival time


class AdaptiveIntervalController:
    """Decides each next checkpoint interval from the failure history."""

    def __init__(
        self,
        *,
        delta: float,
        initial_interval: float,
        min_interval: float = 1.0,
        max_interval: float = 3600.0,
        min_failures_to_fit: int = 2,
        assume_weibull: bool = True,
    ):
        if initial_interval <= 0 or delta < 0:
            raise ConfigurationError("bad adaptive controller parameters")
        if min_interval <= 0 or max_interval < min_interval:
            raise ConfigurationError("bad interval clamp")
        self.delta = delta
        self.initial_interval = initial_interval
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.min_failures_to_fit = min_failures_to_fit
        self.assume_weibull = assume_weibull
        self.failure_times: list[float] = []
        self.interval_history: list[tuple[float, float]] = []  # (time, interval)
        #: Per-durable-tier interval decisions: level -> [(time, interval)].
        self.tier_interval_history: dict[int, list[tuple[float, float]]] = {}

    def record_failure(self, time: float) -> None:
        """Feed one observed failure (detection time) into the history.

        Detection times are runtime-observed data, not configuration: two
        detections can land in the same simulated instant (a heartbeat and the
        consensus watchdog racing), so a slightly out-of-order arrival is
        clamped to the last recorded time rather than rejected.  Only a value
        that cannot be a time at all is an error.
        """
        t = float(time)
        if not math.isfinite(t) or t < 0.0:
            raise SimulationError(
                f"failure time must be finite and non-negative, got {time}")
        if self.failure_times and t < self.failure_times[-1]:
            t = self.failure_times[-1]
        self.failure_times.append(t)

    # -- fitting -----------------------------------------------------------------
    def fit(self, now: float) -> FitResult | None:
        """MLE fit of the stream observed up to ``now``; None if too sparse."""
        times = [t for t in self.failure_times if 0.0 < t <= now]
        n = len(times)
        if n < self.min_failures_to_fit or now <= 0:
            return None
        mean_gap = now / n
        if not self.assume_weibull:
            return FitResult(n, 1.0, mean_gap, mean_gap)
        log_sum = sum(math.log(now / t) for t in times)
        # A failure at exactly ``now`` contributes ln(now/now) = 0 to the sum
        # while still counting in ``n``, biasing the shape upward: the window
        # is then *failure*-truncated, and the Crow-AMSAA estimator divides by
        # n - 1 instead of n (Crow 1975).
        k_numerator = n - 1 if times[-1] >= now else n
        if log_sum <= 0 or k_numerator < 1:
            shape = 1.0
        else:
            shape = k_numerator / log_sum
        shape = min(max(shape, 0.05), 20.0)
        hazard = shape * n / now
        return FitResult(n, shape, 1.0 / hazard, mean_gap)

    # -- the decision ----------------------------------------------------------------
    def next_interval(self, now: float) -> float:
        """Checkpoint period to use from ``now`` on (Daly at the current MTBF)."""
        fit = self.fit(now)
        if fit is None:
            interval = self.initial_interval
        else:
            interval = daly_tau(max(self.delta, 1e-6), fit.current_mtbf)
        interval = min(max(interval, self.min_interval), self.max_interval)
        self.interval_history.append((now, interval))
        return interval

    def tier_interval(self, now: float, *, level: int, delta: float,
                      fallback: float, failure_share: float = 1.0) -> float:
        """Persist period for one durable storage tier (§5 model, per level).

        Uses the same Weibull fit as :meth:`next_interval`, but scales the
        fitted MTBF by ``1 / failure_share``: only that fraction of observed
        failures is deep enough to need this tier, so its effective MTBF is
        correspondingly longer and its Daly period wider.  Before the fit has
        data the model-planned ``fallback`` period is used.
        """
        fit = self.fit(now)
        if fit is None:
            interval = fallback
        else:
            mtbf = fit.current_mtbf / max(failure_share, 1e-9)
            interval = daly_tau(max(delta, 1e-6), mtbf)
        interval = min(max(interval, self.min_interval), self.max_interval)
        self.tier_interval_history.setdefault(level, []).append((now, interval))
        return interval
