"""Silent-data-corruption detection between buddy checkpoints (§2.1, §4.2).

In the real system every node of replica 2 compares the remote checkpoint
shipped by its replica-1 buddy against its own local checkpoint.  Here the two
candidate checkpoint generations hold exactly those per-rank buffers, and we
run the same rank-wise comparison — either field-aware full comparison through
the ``PUPer::checker`` machinery, or 32-byte Fletcher digest comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.checkpoint import CheckpointGeneration
from repro.pup.checker import ComparisonResult, compare_checkpoints, compare_checksums
from repro.pup.checksum import checkpoint_checksum
from repro.util.errors import SimulationError


@dataclass
class SDCScanResult:
    """Outcome of comparing one checkpoint generation pair across all buddies."""

    clean: bool
    mismatched_ranks: set[int] = field(default_factory=set)
    per_rank: dict[int, ComparisonResult] = field(default_factory=dict)
    method: str = "full"


def detect_sdc(
    local: CheckpointGeneration | None,
    remote: CheckpointGeneration | None,
    *,
    use_checksum: bool = False,
    rtol: float = 0.0,
) -> SDCScanResult:
    """Compare two replicas' candidate checkpoints rank by rank."""
    if local is None or remote is None:
        raise SimulationError("both candidate generations are required for SDC scan")
    if local.iteration != remote.iteration:
        raise SimulationError(
            f"comparing checkpoints of different iterations: "
            f"{local.iteration} vs {remote.iteration}"
        )
    if set(local.shards) != set(remote.shards):
        raise SimulationError("checkpoint generations cover different ranks")

    result = SDCScanResult(clean=True, method="checksum" if use_checksum else "full")
    for rank in sorted(local.shards):
        a, b = local.shards[rank], remote.shards[rank]
        if use_checksum:
            cmp = compare_checksums(a, checkpoint_checksum(b.buffer))
        else:
            cmp = compare_checkpoints(a, b, default_rtol=rtol)
        result.per_rank[rank] = cmp
        if not cmp.match:
            result.clean = False
            result.mismatched_ranks.add(rank)
    return result
