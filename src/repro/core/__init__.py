"""The ACR framework — the paper's primary contribution.

Replication-enhanced checkpointing, consensus-driven checkpoint decisions,
SDC detection, three hard-error recovery schemes, and adaptive checkpoint
intervals, orchestrated over the simulated runtime.
"""

from repro.core.adaptive import AdaptiveIntervalController, FitResult
from repro.core.checkpoint import CheckpointGeneration, CheckpointStore
from repro.core.config import ACRConfig
from repro.core.consensus import ConsensusController
from repro.core.events import Timeline, TimelineEvent, TimelineKind
from repro.core.framework import ACR, RunReport
from repro.core.sdc import SDCScanResult, detect_sdc

__all__ = [
    "AdaptiveIntervalController",
    "FitResult",
    "CheckpointGeneration",
    "CheckpointStore",
    "ACRConfig",
    "ConsensusController",
    "Timeline",
    "TimelineEvent",
    "TimelineKind",
    "ACR",
    "RunReport",
    "SDCScanResult",
    "detect_sdc",
]
