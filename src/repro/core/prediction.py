"""Online failure prediction driving proactive checkpoints (paper §2.2).

"Moreover, as online failure prediction becomes more accurate, checkpointing
right before a potential failure occurs can help increase the mean time
between failures visible to applications.  ACR is capable of scheduling
dynamic checkpoints in both the scenarios described."

This module models a predictor the way the prediction literature (the paper's
reference [19]) characterizes one — by *precision*, *recall*, and *lead
time* — and turns a ground-truth fault schedule into the alarm stream ACR
would have received:

* each real hard fault is predicted with probability ``recall``, the alarm
  firing ``lead_time`` seconds before the fault;
* false alarms are added so the alarm stream's precision matches
  ``precision`` (uniformly over the horizon).

ACR reacts to every alarm with an immediate dynamic checkpoint, so a
correctly-predicted fault loses at most ``lead_time`` worth of work instead
of a whole checkpoint period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.injector import FaultKind, InjectionPlan
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


@dataclass(frozen=True)
class Alarm:
    """One predictor alarm: a checkpoint-now signal."""

    time: float
    true_positive: bool
    fault_time: float | None = None  # the fault this alarm anticipates


@dataclass
class PredictionTrace:
    """The alarm stream a predictor would have emitted for one run."""

    alarms: list[Alarm] = field(default_factory=list)
    precision: float = 1.0
    recall: float = 1.0
    lead_time: float = 0.0

    def times(self) -> list[float]:
        return [a.time for a in self.alarms]

    @property
    def true_positives(self) -> int:
        return sum(1 for a in self.alarms if a.true_positive)

    @property
    def false_positives(self) -> int:
        return sum(1 for a in self.alarms if not a.true_positive)

    def achieved_precision(self) -> float:
        total = len(self.alarms)
        return self.true_positives / total if total else 1.0


class FailurePredictor:
    """Generates alarm streams from ground-truth fault schedules."""

    def __init__(self, *, precision: float = 0.8, recall: float = 0.7,
                 lead_time: float = 5.0, rng: RngStream | None = None):
        if not (0 < precision <= 1.0):
            raise ConfigurationError(f"precision must be in (0, 1], got {precision}")
        if not (0 <= recall <= 1.0):
            raise ConfigurationError(f"recall must be in [0, 1], got {recall}")
        if lead_time < 0:
            raise ConfigurationError(f"lead_time must be >= 0, got {lead_time}")
        self.precision = precision
        self.recall = recall
        self.lead_time = lead_time
        self.rng = rng or RngStream(0, "predictor")

    def predict(self, plan: InjectionPlan, horizon: float) -> PredictionTrace:
        """Turn a fault schedule into the alarms ACR would have received."""
        trace = PredictionTrace(precision=self.precision, recall=self.recall,
                                lead_time=self.lead_time)
        hard = [e for e in plan.events
                if e.kind is FaultKind.HARD and e.time < horizon]
        for event in hard:
            if float(self.rng.uniform()) < self.recall:
                at = max(event.time - self.lead_time, 0.0)
                trace.alarms.append(Alarm(time=at, true_positive=True,
                                          fault_time=event.time))
        tp = trace.true_positives
        if self.precision < 1.0 and tp:
            n_false = int(round(tp * (1.0 - self.precision) / self.precision))
            for t in self.rng.uniform(0.0, horizon, size=n_false):
                trace.alarms.append(Alarm(time=float(t), true_positive=False))
        trace.alarms.sort(key=lambda a: a.time)
        return trace
