"""The ACR framework: replication-enhanced automatic checkpoint/restart.

This wires every substrate together on the discrete-event runtime:

* two replicas of the application on a mapped torus partition (§2.1),
* buddy heartbeat failure detection (§6.1),
* consensus-driven coordinated checkpointing (§2.2, Fig. 3),
* SDC detection by buddy checkpoint comparison or Fletcher digests (§2.1, §4.2),
* the strong / medium / weak hard-error recovery schemes (§2.3, Figs. 4–5),
* adaptive checkpoint-period control from the live failure stream (§2.2),

and runs the whole thing under injected faults, producing a
:class:`RunReport` with the timeline that Figure 12 visualizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.base import ReplicaApp
from repro.apps.registry import make_app
from repro.core.adaptive import AdaptiveIntervalController
from repro.core.checkpoint import CheckpointGeneration, CheckpointStore
from repro.core.config import ACRConfig
from repro.core.consensus import ConsensusController
from repro.core.events import Timeline, TimelineKind
from repro.core.prediction import PredictionTrace
from repro.core.sdc import detect_sdc
from repro.faults.bitflip import BitFlipInjector
from repro.faults.injector import (
    STORAGE_FAULT_KINDS,
    FaultEvent,
    FaultKind,
    InjectionPlan,
)
from repro.model.daly import daly_tau
from repro.model.schemes import ResilienceScheme
from repro.network.allocation import torus_for_nodes
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.series import NULL_SERIES
from repro.obs.tracer import NULL_TRACER
from repro.network.costs import CostModel, MachineConstants
from repro.network.mapping import build_mapping
from repro.pup.puper import pack, unpack
from repro.runtime.des import EventHandle, Simulator
from repro.runtime.heartbeat import HeartbeatMonitor
from repro.runtime.messages import Transport
from repro.runtime.node import Node
from repro.runtime.soa import TaskProgressArray
from repro.runtime.task import Task
from repro.storage.hierarchy import DurableHierarchy
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.rng import RngStream


@dataclass
class RunReport:
    """Outcome and accounting of one simulated ACR run."""

    final_time: float = 0.0
    completed: bool = False
    aborted_reason: str | None = None
    iterations_completed: int = 0
    checkpoints_completed: int = 0
    sdc_injected: int = 0
    sdc_detected: int = 0
    hard_injected: int = 0
    hard_detected: int = 0
    rollbacks: int = 0
    #: Dynamic checkpoints requested by failure-prediction alarms (§2.2).
    prediction_alarms: int = 0
    recoveries: dict[str, int] = field(default_factory=dict)
    spare_nodes_used: int = 0
    checkpoint_time: float = 0.0
    #: Time the application was actually blocked by checkpointing (equals
    #: checkpoint_time in blocking mode; only the local-pack time in
    #: asynchronous mode).
    checkpoint_blocking_time: float = 0.0
    recovery_time: float = 0.0
    #: High-water mark of in-memory checkpoint storage (bytes, both replicas).
    peak_checkpoint_memory: int = 0
    rework_iterations: int = 0
    digests: dict[int, np.ndarray] = field(default_factory=dict)
    reference_digest: np.ndarray | None = None
    result_correct: bool | None = None
    timeline: Timeline = field(default_factory=Timeline)
    interval_history: list[tuple[float, float]] = field(default_factory=list)
    #: Per-phase decomposition of the protocol time charged to
    #: ``checkpoint_time`` + ``recovery_time`` (keys like
    #: ``checkpoint.local`` or ``recovery.strong``); the values sum to
    #: exactly those two fields — the Fig. 8–10 breakdown for this run.
    phase_times: dict[str, float] = field(default_factory=dict)
    #: Metrics-registry snapshot taken at finalization (None when telemetry
    #: was disabled); picklable, so campaigns can merge it across workers.
    metrics_snapshot: dict | None = None
    #: Time-series of metric snapshots over simulated time
    #: (:meth:`~repro.obs.series.TimeSeriesRecorder.to_dict` payload; None
    #: when streaming sampling was disabled).  Picklable and mergeable via
    #: :func:`~repro.obs.series.merge_series`.
    series: dict | None = None
    #: Durable-tier counters (``tier<level>.<name>`` plus hierarchy totals,
    #: see :meth:`~repro.storage.hierarchy.DurableHierarchy.counters`);
    #: empty when no storage tiers were configured.
    storage_counters: dict[str, float] = field(default_factory=dict)

    @property
    def overhead_fraction(self) -> float:
        busy = self.checkpoint_time + self.recovery_time
        return busy / self.final_time if self.final_time > 0 else 0.0

    @property
    def phase_time_sum(self) -> float:
        """Sum of the per-phase breakdown (== checkpoint_time + recovery_time)."""
        return sum(self.phase_times.values())


class ACR:
    """One replicated, fault-tolerant application run under ACR."""

    def __init__(
        self,
        app_name: str = "jacobi3d-charm",
        *,
        nodes_per_replica: int = 8,
        config: ACRConfig | None = None,
        machine: MachineConstants | None = None,
        injection_plan: InjectionPlan | None = None,
        prediction_trace: PredictionTrace | None = None,
        tracer=None,
        metrics=None,
        series=None,
        app_kwargs: dict | None = None,
    ):
        #: Telemetry: a no-op tracer/registry unless the caller opts in
        #: (``repro run --trace-out/--metrics-out``, campaigns, chaos runs).
        #: Neither ever schedules simulator events, so instrumented and
        #: un-instrumented runs are bit-identical executions.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Streaming time-series sampling (a TimeSeriesRecorder).  Unlike the
        #: tracer/registry this *does* arm an engine-level periodic timer when
        #: enabled, so a sampled run is a different — still deterministic —
        #: execution; the NULL_SERIES default arms nothing and stays
        #: bit-identical to an un-instrumented run.
        self.series = series if series is not None else NULL_SERIES
        if self.series.enabled and not self.metrics.enabled:
            # Sampling implies metrics: there is nothing to sample out of the
            # no-op registry, so opt the run into a real one.
            self.metrics = MetricsRegistry()
        #: Protocol observers (e.g. the chaos InvariantMonitor).  Each may
        #: implement ``on_phase_change(acr, old, new)``; attached before any
        #: phase assignment so even construction-time transitions are seen.
        self.observers: list = []
        self.config = config or ACRConfig()
        self.app_name = app_name
        self.n = int(nodes_per_replica)
        if self.n < 1:
            raise ConfigurationError("nodes_per_replica must be >= 1")

        # --- machine & costs ---------------------------------------------------
        self.torus = torus_for_nodes(2 * self.n)
        self.mapping = build_mapping(self.torus, self.config.mapping,
                                     chunk=self.config.mapping_chunk)
        self.cost = CostModel(machine or MachineConstants())

        # --- runtime -----------------------------------------------------------
        self.sim = Simulator()
        self.transport = Transport(self.sim)
        self.nodes: dict[int, Node] = {}
        self.buddy_of: dict[int, int] = {}
        for replica in (0, 1):
            for rank in range(self.n):
                nid = self._node_id(replica, rank)
                self.nodes[nid] = Node(nid, replica, rank, self.sim, self.transport)
        for rank in range(self.n):
            a, b = self._node_id(0, rank), self._node_id(1, rank)
            self.buddy_of[a] = b
            self.buddy_of[b] = a

        # --- applications (same seed => bit-identical replicas) ------------------
        self.apps: dict[int, ReplicaApp] = {
            r: make_app(app_name, self.n, scale=self.config.app_scale,
                        seed=self.config.seed, **(app_kwargs or {}))
            for r in (0, 1)
        }
        self.profile = self.apps[0].checkpoint_profile()

        # --- tasks: a ring per replica, dependency-gated -------------------------
        tpn = self.config.tasks_per_node
        self.tasks: dict[int, list[Task]] = {0: [], 1: []}
        total_tasks = self.n * tpn
        for replica in (0, 1):
            app = self.apps[replica]
            for rank in range(self.n):
                node = self.nodes[self._node_id(replica, rank)]
                for j in range(tpn):
                    tid = rank * tpn + j
                    left, right = (tid - 1) % total_tasks, (tid + 1) % total_tasks
                    neighbors = [
                        (self._node_id(replica, left // tpn), left),
                        (self._node_id(replica, right // tpn), right),
                    ]
                    task = Task(tid, node, neighbors=neighbors,
                                iteration_time=app.iteration_time)
                    node.add_task(task)
                    self.tasks[replica].append(task)
        # Struct-of-arrays progress stamps (global index: replica-major) so
        # the per-iteration "all tasks at cap?" test is an O(1) counter read
        # instead of a 2·N·tpn generator sweep (see runtime/soa.py).
        self._task_soa = TaskProgressArray(2 * total_tasks)
        for replica in (0, 1):
            for task in self.tasks[replica]:
                task.bind_progress(self._task_soa,
                                   replica * total_tasks + task.task_id)

        # --- protocol machinery ---------------------------------------------------
        self.consensus = ConsensusController(self.nodes)
        self.consensus.tracer = self.tracer
        self.consensus.metrics = self.metrics
        self.heartbeat = HeartbeatMonitor(
            list(self.nodes.values()),
            self.buddy_of,
            interval=self.config.heartbeat_interval,
            timeout_factor=self.config.heartbeat_timeout_factor,
            on_death=self._on_death_detected,
        )
        self.store = CheckpointStore(self.n)
        #: Durable tiers behind the in-memory double checkpoint; None keeps
        #: the paper's pure level-1 protocol (and the golden digests) intact.
        self.storage: DurableHierarchy | None = None
        if self.config.storage_tiers:
            self.storage = DurableHierarchy(
                self.config.storage_tiers, self.n, seed=self.config.seed)
        self.adaptive: AdaptiveIntervalController | None = None
        if self.config.adaptive:
            delta = self.cost.checkpoint_breakdown(
                self.profile, self.mapping, use_checksum=self.config.use_checksum
            ).total
            self.adaptive = AdaptiveIntervalController(
                delta=delta,
                initial_interval=self.config.adaptive_initial_interval,
                min_interval=self.config.adaptive_min_interval,
                max_interval=self.config.adaptive_max_interval,
            )

        # --- faults -----------------------------------------------------------------
        self.plan = injection_plan or InjectionPlan()
        self.prediction_trace = prediction_trace
        self.bitflip = BitFlipInjector(RngStream(self.config.seed, "acr/bitflip"))

        # --- run state --------------------------------------------------------------
        self.timeline = Timeline()
        self.report = RunReport(timeline=self.timeline)
        # idle|running|consensus|checkpointing|persisting|recovering|done
        self.phase = "idle"
        self._checkpoint_timer: EventHandle | None = None
        self._series_timer = None
        self._phase_events: list[EventHandle] = []
        self._background_event: EventHandle | None = None
        self._watchdog_event: EventHandle | None = None
        self._checkpoint_deferred = False
        self._final_requested = False
        self._weak_pending: Node | None = None
        self._recovering_node: Node | None = None
        self._initial_gen: dict[int, CheckpointGeneration] = {}
        self._spares_left = self.config.spare_nodes
        self._handled_deaths: set[tuple[int, int]] = set()
        self._sdc_rollback_streak = 0
        self._started = False

        # --- telemetry span bookkeeping ---------------------------------------------
        self._span_checkpoint = None
        self._span_recovery = None
        self._span_rollback = None
        self._rework_span = None
        self._rework_target: int | None = None
        self._last_ckpt_breakdown = None
        if self.tracer.enabled:
            # Mirror every timeline event as a trace instant so the exported
            # trace is a self-contained flight recording of the run.
            self.timeline.subscribe(self._tracer_instant)

    def _tracer_instant(self, event) -> None:
        self.tracer.instant(f"timeline.{event.kind.value}", event.time,
                            **event.detail)

    def _charge(self, phase: str, duration: float, bucket: str) -> None:
        """Account protocol time to a named phase.

        Every second of ``checkpoint_time`` and ``recovery_time`` flows
        through here, so ``report.phase_times`` decomposes those two totals
        exactly; the metrics histogram gets the same observation.
        """
        if duration == 0.0:
            return
        rep = self.report
        rep.phase_times[phase] = rep.phase_times.get(phase, 0.0) + duration
        if bucket == "checkpoint":
            rep.checkpoint_time += duration
        else:
            rep.recovery_time += duration
        self.metrics.histogram("phase.duration_s", phase=phase).observe(duration)

    # -- rework span tracking (tracer-only; zero cost when disabled) ----------------
    def _note_rework_target(self) -> None:
        """Remember the pre-rollback progress so the re-execution back to it
        can be traced as a ``rework`` span."""
        if not self.tracer.enabled:
            return
        self._pending_rework_from = self._task_soa.min_progress()

    def _begin_rework_span(self) -> None:
        if not self.tracer.enabled:
            return
        target = getattr(self, "_pending_rework_from", 0)
        base = self._task_soa.min_progress()
        if self._rework_span is not None:
            # A second rollback landed before the first rework finished.
            self.tracer.end(self._rework_span, self.sim.now, interrupted=True)
            self._rework_span = None
            self._rework_target = None
        if target > base:
            self._rework_span = self.tracer.begin(
                "rework", self.sim.now, from_iteration=base,
                to_iteration=target)
            self._rework_target = target

    def _check_rework_done(self) -> None:
        if self._rework_target is None:
            return
        if self._task_soa.all_at_least(self._rework_target):
            self.tracer.end(self._rework_span, self.sim.now,
                            iterations=self._rework_target)
            self._rework_span = None
            self._rework_target = None

    # -- observable protocol phase ------------------------------------------------------
    @property
    def phase(self) -> str:
        return self._phase

    @phase.setter
    def phase(self, new: str) -> None:
        old = getattr(self, "_phase", None)
        self._phase = new
        if old != new:
            for obs in self.observers:
                hook = getattr(obs, "on_phase_change", None)
                if hook is not None:
                    hook(self, old, new)

    def attach_observer(self, observer) -> None:
        """Register a protocol observer (phase transitions, via the setter)."""
        self.observers.append(observer)

    # -- identifiers ------------------------------------------------------------------
    def _node_id(self, replica: int, rank: int) -> int:
        return replica * self.n + rank

    def _replica_scope(self, replica: int) -> list[int]:
        return [self._node_id(replica, r) for r in range(self.n)]

    def _all_scope(self) -> list[int]:
        return self._replica_scope(0) + self._replica_scope(1)

    # -- lifecycle ----------------------------------------------------------------------
    def start(self) -> None:
        """Arm the job: initial checkpoints, heartbeats, faults, first timer."""
        if self._started:
            raise SimulationError("ACR job already started")
        self._started = True
        self.phase = "running"
        self.timeline.record(0.0, TimelineKind.JOB_START,
                             app=self.app_name, scheme=str(self.config.scheme))
        # Generation zero: the launch state, always available for "restart
        # from the beginning of the execution" (§2.3).
        for replica in (0, 1):
            gen = CheckpointGeneration(iteration=0)
            for rank in range(self.n):
                gen.shards[rank] = pack(self.apps[replica].shard(rank))
            self._initial_gen[replica] = gen
            self.store.install_safe(replica, self.store.clone_generation(gen))
        # Iteration cap for bounded runs.
        if self.config.total_iterations is not None:
            cap = self.config.total_iterations
            for replica in (0, 1):
                for t in self.tasks[replica]:
                    t.iteration_cap = cap
            self._task_soa.set_cap(cap)
        for node in self.nodes.values():
            node.on_progress = self._on_node_progress
            node.start_tasks()
        self.heartbeat.start()
        for event in self.plan.events:
            self.sim.schedule_at(event.time, self._inject_fault, event)
        if self.prediction_trace is not None:
            for alarm in self.prediction_trace.alarms:
                self.sim.schedule_at(alarm.time, self._on_prediction_alarm)
        if self.series.enabled:
            self._series_timer = self.sim.schedule_periodic(
                self.series.interval, self._sample_series)
        self._arm_checkpoint_timer()

    def _sample_series(self) -> None:
        """Periodic streaming-telemetry tick: snapshot the registry into the
        time-series recorder at the current simulated time."""
        self.series.sample(self.sim.now, self.metrics_snapshot())

    def _on_prediction_alarm(self) -> None:
        """A failure-prediction alarm: checkpoint right now so the predicted
        fault loses only the prediction lead time of work (§2.2)."""
        if self.phase == "done":
            return
        self.report.prediction_alarms += 1
        self._begin_checkpoint("predicted")

    def run(self, until: float | None = None, max_events: int | None = None) -> RunReport:
        """Run the job to completion (or the time horizon) and report."""
        if not self._started:
            self.start()
        self.sim.run(until=until, max_events=max_events)
        return self._finalize()

    # -- fault injection ---------------------------------------------------------------
    def _inject_fault(self, event: FaultEvent) -> None:
        if self.phase == "done":
            return
        if event.kind in STORAGE_FAULT_KINDS:
            self.timeline.record(
                self.sim.now, TimelineKind.STORAGE_FAULT_INJECTED,
                fault=str(event.kind), level=event.level)
            if self.storage is None:
                return  # no durable tiers configured; nothing to hit
            if event.kind is FaultKind.TORN_WRITE:
                self.storage.arm_torn_write(event.level)
            elif event.kind is FaultKind.BIT_ROT:
                self.storage.inject_bit_rot(event.level, self.sim.now)
            else:
                self.storage.arm_write_spike(event.level)
            return
        if event.kind is FaultKind.SDC:
            self.report.sdc_injected += 1
            self.timeline.record(self.sim.now, TimelineKind.SDC_INJECTED,
                                 replica=event.replica, rank=event.node_id)
            self.bitflip.inject(self.apps[event.replica].shard(event.node_id))
        else:
            node = self.nodes[self._node_id(event.replica, event.node_id)]
            if not node.alive:
                return  # already down; a dead node cannot die twice
            self.report.hard_injected += 1
            self.timeline.record(self.sim.now, TimelineKind.HARD_FAULT_INJECTED,
                                 replica=event.replica, rank=event.node_id)
            node.die()

    # -- periodic checkpoint scheduling ------------------------------------------------
    def _current_interval(self) -> float:
        if self.adaptive is not None:
            # The controller's interval_history is the single source of truth
            # for adapted periods; _finalize publishes it on the report, and
            # the timeline's INTERVAL_ADAPTED events mirror it one-for-one.
            interval = self.adaptive.next_interval(self.sim.now)
            self.timeline.record(self.sim.now, TimelineKind.INTERVAL_ADAPTED,
                                 interval=interval)
            return interval
        return self.config.checkpoint_interval

    def _arm_checkpoint_timer(self) -> None:
        if self._checkpoint_timer is not None:
            self._checkpoint_timer.cancel()
        self._checkpoint_timer = self.sim.schedule(
            self._current_interval(), self._begin_checkpoint, "periodic"
        )

    def _begin_checkpoint(self, reason: str) -> None:
        if self.phase == "done":
            return
        if self.phase != "running":
            self._checkpoint_deferred = True
            return
        if self._background_event is not None and self._background_event.pending:
            # An asynchronous transfer/compare is still in flight; one
            # checkpoint generation at a time.
            self._checkpoint_deferred = True
            return
        self.phase = "consensus"
        if self._checkpoint_timer is not None:
            self._checkpoint_timer.cancel()
            self._checkpoint_timer = None
        # A crashed replica waiting for weak recovery cannot participate: the
        # healthy replica checkpoints alone and ships the result (Fig. 5d).
        if self._weak_pending is not None:
            scope = self._replica_scope(1 - self._weak_pending.replica)
        else:
            scope = self._all_scope()
        self.timeline.record(self.sim.now, TimelineKind.CONSENSUS_START,
                             reason=reason, scope=len(scope))
        self._span_checkpoint = self.tracer.begin(
            "checkpoint", self.sim.now, reason=reason,
            solo=self._weak_pending is not None)
        self._start_consensus(scope, self._on_consensus_done,
                              span_parent=self._span_checkpoint)

    def _start_consensus(self, scope: list[int], on_complete,
                         span_parent=None) -> None:
        """Start a consensus round with a stall watchdog.

        Buddy heartbeats miss the case where a node *and* its buddy are both
        down (nobody monitors it); in a real machine the collective timeout
        surfaces such deaths.  The watchdog models that: if the round is
        still pending after several heartbeat timeouts, any dead node in
        scope is declared failed.
        """
        rid = self.consensus.start_round(scope, on_complete,
                                         span_parent=span_parent)
        timeout = 3.0 * (self.config.heartbeat_timeout_factor
                         * self.config.heartbeat_interval) + 1.0
        if self._watchdog_event is not None:
            self._watchdog_event.cancel()
        self._watchdog_event = self.sim.schedule(
            timeout, self._consensus_watchdog, rid, timeout)

    def _live_detector(self, prefer: list[int] | None = None) -> Node | None:
        """A live node to attribute a detection to: in ``prefer`` scope first,
        then anywhere in the machine."""
        if prefer:
            for nid in prefer:
                if self.nodes[nid].alive:
                    return self.nodes[nid]
        for node in self.nodes.values():
            if node.alive:
                return node
        return None

    def _consensus_watchdog(self, rid: int, timeout: float) -> None:
        self._watchdog_event = None
        if self.phase == "done":
            return
        if not self.consensus.active or self.consensus.round_id != rid:
            return
        dead = [self.nodes[nid] for nid in self.consensus.scope
                if not self.nodes[nid].alive]
        if dead:
            detector = self._live_detector(prefer=self.consensus.scope)
            if detector is None:
                self._abort("no live node left to detect consensus stall")
                return
            # Every dead node in scope stalls the round, and a node that was
            # "handled" but is still dead this long after the round started
            # had its recovery lost; clear the dedup entries so the detection
            # path runs again for each of them.
            for node in dead:
                if self.phase == "done":
                    return
                if not node.alive:  # an earlier victim's recovery may have revived it
                    self._handled_deaths.discard(
                        (node.node_id, node.failures_survived))
                    self._on_death_detected(detector, node)
            return
        # No dead node: the round is just slow (tasks draining); keep watching.
        self._watchdog_event = self.sim.schedule(
            timeout, self._consensus_watchdog, rid, timeout)

    # -- checkpoint phases ----------------------------------------------------------------
    def _on_consensus_done(self, round_id: int, iteration: int) -> None:
        self.phase = "checkpointing"
        self.timeline.record(self.sim.now, TimelineKind.CONSENSUS_DECIDED,
                             iteration=iteration)
        replicas = ((1 - self._weak_pending.replica,) if self._weak_pending is not None
                    else (0, 1))
        for replica in replicas:
            self.apps[replica].advance_to(iteration)
        pack_t = self.cost.pack_time(self.profile)
        self._phase_events = [
            self.sim.schedule(pack_t, self._do_pack, iteration, replicas)
        ]

    def _do_pack(self, iteration: int, replicas: tuple[int, ...]) -> None:
        pack_t = self.cost.pack_time(self.profile)
        self.tracer.emit("checkpoint.pack", self.sim.now - pack_t,
                         self.sim.now, parent=self._span_checkpoint,
                         iteration=iteration, replicas=len(replicas))
        for replica in replicas:
            self.store.begin_candidate(replica, iteration, self.sim.now)
            for rank in range(self.n):
                self.store.put_shard(replica, rank,
                                     pack(self.apps[replica].shard(rank)))
        breakdown = self.cost.checkpoint_breakdown(
            self.profile, self.mapping, use_checksum=self.config.use_checksum
        )
        self._last_ckpt_breakdown = breakdown
        self._charge("checkpoint.local", breakdown.local, "checkpoint")
        self._charge("checkpoint.transfer", breakdown.transfer, "checkpoint")
        self._charge("checkpoint.compare", breakdown.compare, "checkpoint")
        remaining = breakdown.transfer + breakdown.compare
        if self.config.async_checkpointing:
            # Semi-blocking mode: the application only blocked for the local
            # snapshot; transfer and comparison overlap forward execution.
            self.report.checkpoint_blocking_time += breakdown.local
            self.phase = "running"
            for replica in replicas:
                for nid in self._replica_scope(replica):
                    for t in self.nodes[nid].tasks:
                        t.resume()
            self._background_event = self.sim.schedule(
                remaining, self._finish_checkpoint, iteration, replicas)
            self._phase_events = []
            return
        self.report.checkpoint_blocking_time += breakdown.total
        self._phase_events = [
            self.sim.schedule(remaining, self._finish_checkpoint, iteration, replicas)
        ]

    def _finish_checkpoint(self, iteration: int, replicas: tuple[int, ...]) -> None:
        self._phase_events = []
        self._background_event = None
        breakdown = self._last_ckpt_breakdown
        if breakdown is not None:
            remaining = breakdown.transfer + breakdown.compare
            t0 = self.sim.now - remaining
            background = self.config.async_checkpointing
            self.tracer.emit(
                "checkpoint.transfer", t0, t0 + breakdown.transfer,
                parent=self._span_checkpoint, iteration=iteration,
                background=background, track=1 if background else 0)
            self.tracer.emit(
                "checkpoint.compare", t0 + breakdown.transfer, self.sim.now,
                parent=self._span_checkpoint, iteration=iteration,
                solo=len(replicas) != 2, background=background,
                track=1 if background else 0)
            self._last_ckpt_breakdown = None
        if len(replicas) == 2:
            result = detect_sdc(
                self.store.candidate(0),
                self.store.candidate(1),
                use_checksum=self.config.use_checksum,
                rtol=self.config.compare_rtol,
            )
            if not result.clean:
                self.report.sdc_detected += 1
                self.timeline.record(self.sim.now, TimelineKind.SDC_DETECTED,
                                     ranks=sorted(result.mismatched_ranks),
                                     iteration=iteration)
                if self.adaptive is not None:
                    self.adaptive.record_failure(self.sim.now)
                self.metrics.counter("acr.sdc_comparison_failures").inc()
                self.tracer.end(self._span_checkpoint, self.sim.now,
                                sdc_detected=True)
                self._span_checkpoint = None
                self.store.discard(0)
                self.store.discard(1)
                self._rollback_both("sdc")
                return
        # The candidate and safe generations briefly coexist: the in-memory
        # double-checkpoint high-water mark.
        self.report.peak_checkpoint_memory = max(
            self.report.peak_checkpoint_memory, self.store.memory_bytes())
        committed = {r: self.store.commit(r) for r in replicas}
        self._sdc_rollback_streak = 0
        self.report.checkpoints_completed += 1
        # compared=False marks a solo (weak-pending) checkpoint: with only
        # one replica participating there is no SDC comparison — the §2.3
        # vulnerability window the Section-5 model quantifies.
        self.timeline.record(self.sim.now, TimelineKind.CHECKPOINT_DONE,
                             iteration=iteration,
                             compared=len(replicas) == 2)
        self.tracer.end(self._span_checkpoint, self.sim.now,
                        iteration=iteration)
        self._span_checkpoint = None
        self.metrics.gauge("store.memory_bytes").set(self.store.memory_bytes())
        if self.storage is not None and len(replicas) == 2:
            # Only compared generations flow to the durable tiers: a solo
            # (weak-pending) checkpoint skipped SDC comparison and must not
            # become a trusted deep copy.
            persist_s = self._begin_tier_persist(committed[replicas[0]])
            if persist_s > 0.0:
                if self.config.async_checkpointing:
                    # Tasks resumed back in _do_pack; the tier group write
                    # streams in the background like the transfer did.
                    self._background_event = self.sim.schedule(
                        persist_s, self._finish_tier_persist)
                    return
                self.report.checkpoint_blocking_time += persist_s
                self.phase = "persisting"
                self._phase_events = [
                    self.sim.schedule(persist_s, self._finish_tier_persist)
                ]
                return
        if self._weak_pending is not None:
            self._start_weak_shipment(committed[replicas[0]])
            # The healthy replica resumes immediately: zero-overhead recovery.
            for nid in self._replica_scope(replicas[0]):
                for t in self.nodes[nid].tasks:
                    t.resume()
            return
        self.phase = "running"
        for t in self.tasks[0] + self.tasks[1]:
            t.resume()
        self._after_activity()

    # -- durable tiers (level 2/3 behind the in-memory double checkpoint) -----------------
    def _tier_interval(self, spec, nbytes: int) -> float:
        """Current persist period for one durable tier: pinned by the spec,
        adapted from the live failure fit, or the static Daly plan at the
        tier's assumed MTBF."""
        if spec.interval is not None:
            return spec.interval
        delta = spec.write_time(nbytes, self.n)
        fallback = daly_tau(max(delta, 1e-6), spec.mtbf_assumed)
        if self.adaptive is not None:
            return self.adaptive.tier_interval(
                self.sim.now, level=spec.level, delta=delta,
                fallback=fallback, failure_share=spec.failure_share)
        return fallback

    def _begin_tier_persist(self, gen: CheckpointGeneration) -> float:
        """Stage the freshly committed generation on every due tier; returns
        the total modeled group-write duration (0.0 when nothing is due)."""
        nbytes = gen.nbytes
        due = self.storage.due_levels(
            self.sim.now, lambda spec: self._tier_interval(spec, nbytes))
        total = 0.0
        for level in due:
            duration = self.storage.stage(level, gen, self.sim.now)
            self._charge(f"checkpoint.tier{level}-persist", duration,
                         "checkpoint")
            total += duration
        return total

    def _finish_tier_persist(self) -> None:
        self._phase_events = []
        self._background_event = None
        for outcome in self.storage.complete_inflight(self.sim.now):
            self.timeline.record(self.sim.now, TimelineKind.TIER_PERSIST,
                                 **outcome)
        if self.phase == "persisting":
            self.phase = "running"
            for t in self.tasks[0] + self.tasks[1]:
                t.resume()
        self._after_activity()

    def _restore_from_storage(self) -> CheckpointGeneration | None:
        """Deepest-fallback restore: the newest intact generation anywhere in
        the durable hierarchy, or None (no tiers / nothing intact).

        The tier read is charged to ``recovery_time`` but — like the SDC
        rollback unpack — not simulated as elapsed time: the recovery event
        that reaches this point already carries the scheme's modeled restart
        duration.
        """
        if self.storage is None:
            return None
        result = self.storage.restore(self.sim.now)
        if result is None:
            self.timeline.record(self.sim.now, TimelineKind.TIER_RESTORE,
                                 hit=False)
            return None
        self._charge(f"recovery.tier{result.level}-read", result.read_time,
                     "recovery")
        self.timeline.record(self.sim.now, TimelineKind.TIER_RESTORE,
                             hit=True, level=result.level,
                             iteration=result.generation.iteration,
                             fellback=result.fellback)
        return result.generation

    def _rollback_both(self, reason: str) -> None:
        """Both replicas return to their last safe checkpoint (SDC recovery:
        local unpack, no inter-replica transfer, §6.3)."""
        self.phase = "recovering"
        duration = self.cost.sdc_rollback_time(self.profile, 2 * self.n)
        self._charge("recovery.sdc-rollback", duration, "recovery")
        self._span_rollback = self.tracer.begin("rollback", self.sim.now,
                                                reason=reason)
        self._phase_events = [
            self.sim.schedule(duration, self._finish_rollback_both, reason)
        ]

    def _finish_rollback_both(self, reason: str) -> None:
        self._phase_events = []
        self.report.rollbacks += 1
        if reason == "sdc":
            self._sdc_rollback_streak += 1
            if self._sdc_rollback_streak > 3:
                # Comparison keeps failing after rollback: the rollback
                # target itself must be corrupted/divergent.  Prefer the
                # durable tiers — any intact persisted generation passed
                # comparison when written, and installing one identical copy
                # on BOTH replicas breaks the livelock without losing the
                # run.  Last resort: restart from the beginning.
                reason = "sdc-escalation"
                self._sdc_rollback_streak = 0
                restored = self._restore_from_storage()
                for replica in (0, 1):
                    source = (restored if restored is not None
                              else self._initial_gen[replica])
                    self.store.install_safe(
                        replica, self.store.clone_generation(source))
        self.report.recoveries[reason] = self.report.recoveries.get(reason, 0) + 1
        self._note_rework_target()
        for replica in (0, 1):
            self._restore_replica(replica, self.store.safe(replica))
        self._begin_rework_span()
        self.timeline.record(self.sim.now, TimelineKind.ROLLBACK, reason=reason)
        self.timeline.record(self.sim.now, TimelineKind.RECOVERY_DONE, scheme=reason)
        self.tracer.end(self._span_rollback, self.sim.now, reason=reason)
        self._span_rollback = None
        self.phase = "running"
        self._after_activity()

    # -- hard-error handling ------------------------------------------------------------
    def _on_death_detected(self, detector: Node, dead: Node) -> None:
        if self.phase == "done":
            return
        # Detections can arrive from both heartbeats and the consensus
        # watchdog; handle each (node, incarnation) exactly once.
        key = (dead.node_id, dead.failures_survived)
        if key in self._handled_deaths:
            return
        self._handled_deaths.add(key)
        self.report.hard_detected += 1
        self.timeline.record(self.sim.now, TimelineKind.HARD_FAULT_DETECTED,
                             replica=dead.replica, rank=dead.rank)
        if self.adaptive is not None:
            self.adaptive.record_failure(self.sim.now)
        if self._spares_left <= 0:
            self._abort("spare node pool exhausted")
            return
        self._spares_left -= 1
        self.report.spare_nodes_used += 1

        if self._background_event is not None and self._background_event.pending:
            self._background_event.cancel()
            self._background_event = None
            for r in (0, 1):
                self.store.discard(r)
            if self.storage is not None:
                # The crash interrupted an asynchronous tier group write:
                # unsafe tiers land a torn generation, atomic tiers abort.
                self.storage.abort_inflight(self.sim.now)
            self._checkpoint_deferred = True
            self._end_checkpoint_span_cancelled()
        if self.phase == "recovering":
            self._second_failure(dead)
            return
        if self.phase == "consensus":
            self.consensus.abort_round()
            self._checkpoint_deferred = True
            self._end_checkpoint_span_cancelled()
            self.phase = "running"
        elif self.phase in ("checkpointing", "persisting"):
            self._cancel_phase_events()
            for r in (0, 1):
                self.store.discard(r)
            if self.storage is not None:
                self.storage.abort_inflight(self.sim.now)
            self._checkpoint_deferred = True
            self._end_checkpoint_span_cancelled()
            self.phase = "running"
        if self._weak_pending is not None:
            self._failure_while_weak_pending(dead)
            return

        scheme = self.config.scheme
        self.phase = "recovering"
        self._recovering_node = dead
        if scheme is ResilienceScheme.STRONG:
            self._start_strong_recovery(dead)
        elif scheme is ResilienceScheme.MEDIUM:
            self._start_medium_recovery(dead)
        else:
            self._start_weak_wait(dead)

    def _cancel_phase_events(self) -> None:
        for h in self._phase_events:
            h.cancel()
        self._phase_events = []

    def _end_checkpoint_span_cancelled(self) -> None:
        if self._span_checkpoint is not None:
            self.tracer.end(self._span_checkpoint, self.sim.now,
                            cancelled=True)
            self._span_checkpoint = None
            self._last_ckpt_breakdown = None

    # -- strong: roll the crashed replica back to the previous checkpoint ---------------
    def _start_strong_recovery(self, dead: Node) -> None:
        breakdown = self.cost.restart_breakdown(
            self.profile, self.mapping, scheme="strong", crashed_pair=dead.rank
        )
        duration = breakdown.total + self.config.spare_boot_time
        self._charge("recovery.strong", duration, "recovery")
        self._span_recovery = self.tracer.begin(
            "recovery.strong", self.sim.now, replica=dead.replica,
            rank=dead.rank)
        self.tracer.emit(
            "recovery.transfer", self.sim.now,
            self.sim.now + breakdown.transfer, parent=self._span_recovery)
        self._phase_events = [
            self.sim.schedule(duration, self._finish_strong_recovery, dead)
        ]

    def _finish_strong_recovery(self, dead: Node) -> None:
        self._phase_events = []
        dead.revive()
        self.heartbeat.notify_revived(dead.node_id)
        self._note_rework_target()
        self._restore_replica(dead.replica, self.store.safe(dead.replica))
        self._begin_rework_span()
        self.report.rollbacks += 1
        self.report.recoveries["strong"] = self.report.recoveries.get("strong", 0) + 1
        self.timeline.record(self.sim.now, TimelineKind.ROLLBACK,
                             reason="hard", replica=dead.replica)
        self.timeline.record(self.sim.now, TimelineKind.RECOVERY_DONE, scheme="strong")
        self.tracer.end(self._span_recovery, self.sim.now)
        self._span_recovery = None
        self.phase = "running"
        self._recovering_node = None
        self._after_activity()

    # -- medium: immediate checkpoint in the healthy replica -----------------------------
    def _start_medium_recovery(self, dead: Node) -> None:
        healthy_scope = self._replica_scope(1 - dead.replica)
        self.timeline.record(self.sim.now, TimelineKind.CONSENSUS_START,
                             reason="medium-recovery", scope=len(healthy_scope))
        self._span_recovery = self.tracer.begin(
            "recovery.medium", self.sim.now, replica=dead.replica,
            rank=dead.rank)
        self._start_consensus(
            healthy_scope,
            lambda rid, it: self._medium_consensus_done(dead, it),
            span_parent=self._span_recovery,
        )

    def _medium_consensus_done(self, dead: Node, iteration: int) -> None:
        healthy = 1 - dead.replica
        self.timeline.record(self.sim.now, TimelineKind.CONSENSUS_DECIDED,
                             iteration=iteration)
        self.apps[healthy].advance_to(iteration)
        pack_t = self.cost.pack_time(self.profile)
        self._phase_events = [
            self.sim.schedule(pack_t, self._medium_packed, dead, iteration)
        ]

    def _medium_packed(self, dead: Node, iteration: int) -> None:
        healthy = 1 - dead.replica
        pack_t = self.cost.pack_time(self.profile)
        self.tracer.emit("checkpoint.pack", self.sim.now - pack_t,
                         self.sim.now, parent=self._span_recovery,
                         iteration=iteration, replicas=1)
        self.store.begin_candidate(healthy, iteration, self.sim.now)
        for rank in range(self.n):
            self.store.put_shard(healthy, rank, pack(self.apps[healthy].shard(rank)))
        breakdown = self.cost.restart_breakdown(
            self.profile, self.mapping, scheme="medium", crashed_pair=dead.rank
        )
        duration = breakdown.total + self.config.spare_boot_time
        self._charge("recovery.medium", pack_t + duration, "recovery")
        self.tracer.emit(
            "recovery.transfer", self.sim.now,
            self.sim.now + breakdown.transfer, parent=self._span_recovery)
        # The healthy replica resumes as soon as its checkpoints are on the
        # wire; the crashed replica reconstructs at the end of the transfer.
        for nid in self._replica_scope(healthy):
            for t in self.nodes[nid].tasks:
                t.resume()
        self._phase_events = [
            self.sim.schedule(duration, self._finish_medium_recovery, dead)
        ]

    def _finish_medium_recovery(self, dead: Node) -> None:
        self._phase_events = []
        dead.revive()
        self.heartbeat.notify_revived(dead.node_id)
        # Commit the immediate checkpoint and install it for BOTH replicas in
        # one step: the two safe generations must never diverge (a second
        # failure between an early commit and the installation would leave
        # the replicas rolling back to *different* states - an unrecoverable
        # comparison livelock).  Whatever the healthy replica had - including
        # any silent corruption since the last compared checkpoint - becomes
        # both replicas' truth: the undetected-SDC window of §2.3.
        healthy = 1 - dead.replica
        gen = self.store.commit(healthy)
        self.store.install_safe(dead.replica, self.store.clone_generation(gen))
        self._restore_replica(dead.replica, self.store.safe(dead.replica))
        self.report.recoveries["medium"] = self.report.recoveries.get("medium", 0) + 1
        self.timeline.record(self.sim.now, TimelineKind.RECOVERY_DONE, scheme="medium")
        self.tracer.end(self._span_recovery, self.sim.now)
        self._span_recovery = None
        self.phase = "running"
        self._recovering_node = None
        self._after_activity()

    # -- weak: wait for the next periodic checkpoint -------------------------------------
    def _start_weak_wait(self, dead: Node) -> None:
        self._weak_pending = dead
        self._recovering_node = None
        self._span_recovery = self.tracer.begin(
            "recovery.weak.wait", self.sim.now, replica=dead.replica,
            rank=dead.rank)
        self.phase = "running"
        # The crashed replica stalls on its own (tasks starve on the dead
        # node's dependencies); the healthy replica runs to the next
        # checkpoint as if nothing happened: zero-overhead recovery.  The
        # epilogue keeps the periodic timer (or a deferred request) alive so
        # that next checkpoint actually arrives.
        self._after_activity()

    def _start_weak_shipment(self, gen: CheckpointGeneration) -> None:
        dead = self._weak_pending
        assert dead is not None
        self.phase = "recovering"
        breakdown = self.cost.restart_breakdown(
            self.profile, self.mapping, scheme="weak", crashed_pair=dead.rank
        )
        duration = breakdown.total + self.config.spare_boot_time
        self._charge("recovery.weak", duration, "recovery")
        self.tracer.end(self._span_recovery, self.sim.now)
        self._span_recovery = self.tracer.begin(
            "recovery.weak", self.sim.now, replica=dead.replica,
            rank=dead.rank, iteration=gen.iteration)
        self.tracer.emit(
            "recovery.transfer", self.sim.now,
            self.sim.now + breakdown.transfer, parent=self._span_recovery)
        self._phase_events = [
            self.sim.schedule(duration, self._finish_weak_recovery, dead, gen)
        ]

    def _finish_weak_recovery(self, dead: Node, gen: CheckpointGeneration) -> None:
        self._phase_events = []
        self._weak_pending = None
        dead.revive()
        self.heartbeat.notify_revived(dead.node_id)
        self.store.install_safe(dead.replica, self.store.clone_generation(gen))
        self._restore_replica(dead.replica, self.store.safe(dead.replica))
        self.report.recoveries["weak"] = self.report.recoveries.get("weak", 0) + 1
        self.timeline.record(self.sim.now, TimelineKind.RECOVERY_DONE, scheme="weak")
        self.tracer.end(self._span_recovery, self.sim.now)
        self._span_recovery = None
        self.phase = "running"
        self._after_activity()

    def _failure_while_weak_pending(self, dead: Node) -> None:
        """Second failure before the weak recovery's checkpoint (§2.3): buddy
        of the crashed node -> restart from the beginning; otherwise both
        replicas roll back to the previous checkpoint."""
        first = self._weak_pending
        assert first is not None
        self._weak_pending = None
        for r in (0, 1):
            self.store.discard(r)
        self.phase = "recovering"
        from_scratch = (dead.rank == first.rank and dead.replica != first.replica)
        breakdown = self.cost.restart_breakdown(
            self.profile, self.mapping, scheme="medium", crashed_pair=dead.rank
        )
        duration = breakdown.total + self.config.spare_boot_time
        self._charge("recovery.double-failure", duration, "recovery")
        self.tracer.end(self._span_recovery, self.sim.now, superseded=True)
        self._span_recovery = self.tracer.begin(
            "recovery.double-failure", self.sim.now, replica=dead.replica,
            rank=dead.rank, from_scratch=from_scratch)
        self._phase_events = [
            self.sim.schedule(duration, self._finish_double_failure, from_scratch)
        ]

    def _second_failure(self, dead: Node) -> None:
        """A failure landed while another recovery was in flight: abandon it
        and roll both replicas back to their last safe checkpoint."""
        self._cancel_phase_events()
        self.consensus.abort_round()
        for r in (0, 1):
            self.store.discard(r)
        self._recovering_node = None
        self._weak_pending = None
        breakdown = self.cost.restart_breakdown(
            self.profile, self.mapping, scheme="medium", crashed_pair=dead.rank
        )
        duration = breakdown.total + self.config.spare_boot_time
        self._charge("recovery.double-failure", duration, "recovery")
        self.tracer.end(self._span_recovery, self.sim.now, superseded=True)
        self.tracer.end(self._span_rollback, self.sim.now, superseded=True)
        self._span_rollback = None
        self._span_recovery = self.tracer.begin(
            "recovery.double-failure", self.sim.now, replica=dead.replica,
            rank=dead.rank)
        self._phase_events = [
            self.sim.schedule(duration, self._finish_double_failure, False)
        ]

    def _finish_double_failure(self, from_scratch: bool) -> None:
        self._phase_events = []
        # Revive every dead node, not just this recovery's detected victims: a
        # cascade of failures during recovery replaces the scheduled finish
        # repeatedly, and earlier victims must not be stranded dead.  A node
        # whose death was never detected (e.g. its buddy died too) is swept up
        # here — its replacement still comes out of the spare pool.
        for v in self.nodes.values():
            if v.alive:
                continue
            key = (v.node_id, v.failures_survived)
            if key not in self._handled_deaths:
                if self._spares_left <= 0:
                    self._abort("spare node pool exhausted")
                    return
                self._handled_deaths.add(key)
                self._spares_left -= 1
                self.report.spare_nodes_used += 1
                self.report.hard_detected += 1
                self.timeline.record(self.sim.now, TimelineKind.HARD_FAULT_DETECTED,
                                     replica=v.replica, rank=v.rank, swept=True)
            v.revive()
            self.heartbeat.notify_revived(v.node_id)
        tier_hit = False
        if from_scratch:
            # "Restart from the beginning" (§2.3) becomes "restart from the
            # newest intact durable generation" when tiers are configured.
            restored = self._restore_from_storage()
            tier_hit = restored is not None
            for replica in (0, 1):
                source = (restored if tier_hit
                          else self._initial_gen[replica])
                self.store.install_safe(
                    replica, self.store.clone_generation(source))
        # A weak-pending solo checkpoint may have committed on the healthy
        # replica before this failure abandoned the shipment, leaving the two
        # safe generations at different iterations.  Rolling the replicas back
        # to *different* states risks a comparison livelock (§2.3) — adopt the
        # newer generation for both, exactly as the lost shipment would have.
        it0, it1 = self.store.safe_iteration(0), self.store.safe_iteration(1)
        if it0 is not None and it1 is not None and it0 != it1:
            newer = 0 if it0 > it1 else 1
            self.store.install_safe(
                1 - newer, self.store.clone_generation(self.store.safe(newer))
            )
        self._note_rework_target()
        for replica in (0, 1):
            self._restore_replica(replica, self.store.safe(replica))
        self._begin_rework_span()
        self.report.rollbacks += 1
        key = ("tier-restore" if tier_hit
               else "restart-from-beginning" if from_scratch
               else "double-failure")
        self.report.recoveries[key] = self.report.recoveries.get(key, 0) + 1
        self.timeline.record(self.sim.now, TimelineKind.ROLLBACK, reason=key)
        self.timeline.record(self.sim.now, TimelineKind.RECOVERY_DONE, scheme=key)
        self.tracer.end(self._span_recovery, self.sim.now,
                        from_scratch=from_scratch)
        self._span_recovery = None
        self.phase = "running"
        self._after_activity()

    # -- restore ---------------------------------------------------------------------------
    def _restore_replica(self, replica: int, gen: CheckpointGeneration | None) -> None:
        if gen is None:
            raise SimulationError(f"replica {replica} has no safe checkpoint")
        app = self.apps[replica]
        for rank in range(self.n):
            unpack(app.shard(rank), gen.shards[rank])
        app.iteration = gen.iteration
        for t in self.tasks[replica]:
            t.restore(gen.iteration)

    # -- completion & bookkeeping -------------------------------------------------------------
    def _on_node_progress(self, node: Node) -> None:
        if self._rework_target is not None:
            self._check_rework_done()
        cap = self.config.total_iterations
        if cap is None or self._final_requested:
            return
        if self._task_soa.all_at_cap:
            self._final_requested = True
            self.sim.schedule(0.0, self._begin_checkpoint, "final")

    def _after_activity(self) -> None:
        """Common epilogue after a checkpoint or recovery completes."""
        cap = self.config.total_iterations
        if cap is not None:
            at_cap = self._task_soa.all_at_cap
            if (at_cap and self.phase == "running"
                    and self.store.safe_iteration(0) == cap
                    and self.store.safe_iteration(1) == cap):
                self._finish_job()
                return
            if not at_cap:
                # A rollback dropped some tasks below the cap: let the final
                # checkpoint be re-requested when they get back there.
                self._final_requested = False
        if self._checkpoint_deferred:
            self._checkpoint_deferred = False
            self.sim.schedule(0.0, self._begin_checkpoint, "deferred")
        else:
            self._arm_checkpoint_timer()

    def _quiesce_timers(self) -> None:
        """Cancel every protocol timer the job owns.  After ``done`` the event
        queue must hold no orphaned checkpoint timers, phase events, background
        transfers, or consensus watchdogs — only perpetual heartbeat ticks."""
        if self._checkpoint_timer is not None:
            self._checkpoint_timer.cancel()
            self._checkpoint_timer = None
        if self._series_timer is not None:
            self._series_timer.cancel()
            self._series_timer = None
        self._cancel_phase_events()
        if self._background_event is not None:
            self._background_event.cancel()
            self._background_event = None
        if self._watchdog_event is not None:
            self._watchdog_event.cancel()
            self._watchdog_event = None
        if self.storage is not None:
            self.storage.discard_inflight()

    def _finish_job(self) -> None:
        self._quiesce_timers()
        self.report.completed = True
        self.phase = "done"
        self.timeline.record(self.sim.now, TimelineKind.JOB_END)
        self.sim.stop()

    def _abort(self, reason: str) -> None:
        self._quiesce_timers()
        self.report.aborted_reason = reason
        self.phase = "done"
        self.timeline.record(self.sim.now, TimelineKind.JOB_END, aborted=reason)
        self.sim.stop()

    def metrics_snapshot(self) -> dict:
        """Sample the always-on runtime counters into the metrics registry and
        return its snapshot.  Safe to call mid-run (the chaos monitor and the
        CLI both do); counters use ``set_total`` so repeated snapshots don't
        double-count."""
        m = self.metrics
        rep = self.report
        m.counter("sim.events_scheduled").set_total(self.sim.events_scheduled)
        m.counter("sim.events_processed").set_total(self.sim.events_processed)
        m.counter("sim.events_cancelled").set_total(self.sim.events_cancelled)
        m.gauge("sim.queue_depth").set(self.sim.pending_events)
        m.gauge("sim.max_queue_depth").set(self.sim.max_queue_depth)
        # Cohort-batching effectiveness: how often the run loop drained
        # same-instant batches, how large they got, and the heap high-water
        # (``sim.max_queue_depth`` above) they rode on.
        m.counter("sim.cohorts_dispatched").set_total(
            self.sim.cohorts_dispatched)
        m.gauge("sim.max_cohort_events").set(self.sim.max_cohort_events)
        for i, count in enumerate(self.sim.cohort_hist):
            if count:
                lo = 1 << i
                hi = (1 << (i + 1)) - 1
                label = str(lo) if hi == lo else f"{lo}-{hi}"
                m.counter("sim.cohort_size", bucket=label).set_total(count)
        m.counter("transport.messages_sent").set_total(self.transport.messages_sent)
        m.counter("transport.messages_delivered").set_total(
            self.transport.messages_delivered)
        m.counter("transport.messages_dropped").set_total(
            self.transport.messages_dropped)
        for kind, n in self.transport.sent_by_kind.items():
            m.counter("transport.messages_sent_by_kind", kind=kind).set_total(n)
        for kind, b in self.transport.bytes_by_kind.items():
            m.counter("transport.bytes_sent", kind=kind).set_total(b)
        m.counter("store.commits").set_total(self.store.commits)
        m.counter("store.discards").set_total(self.store.discards)
        m.gauge("store.high_water_bytes").set(self.store.high_water_bytes)
        m.gauge("store.memory_bytes").set(self.store.memory_bytes())
        m.counter("consensus.rounds_started").set_total(
            self.consensus.rounds_started)
        m.counter("consensus.rounds_completed").set_total(
            self.consensus.rounds_completed)
        m.counter("consensus.rounds_aborted").set_total(
            self.consensus.rounds_aborted)
        m.counter("acr.checkpoints_completed").set_total(
            rep.checkpoints_completed)
        m.counter("acr.rollbacks").set_total(rep.rollbacks)
        m.counter("acr.sdc_injected").set_total(rep.sdc_injected)
        m.counter("acr.sdc_detected").set_total(rep.sdc_detected)
        m.counter("acr.hard_injected").set_total(rep.hard_injected)
        m.counter("acr.hard_detected").set_total(rep.hard_detected)
        m.counter("acr.spare_nodes_used").set_total(rep.spare_nodes_used)
        for scheme, n in rep.recoveries.items():
            m.counter("acr.recoveries", scheme=scheme).set_total(n)
        if self.storage is not None:
            for level, tier in sorted(self.storage.tiers.items()):
                for name, value in tier.counters.items():
                    m.counter(f"storage.{name}",
                              level=str(level)).set_total(value)
            m.counter("storage.restore_misses").set_total(
                self.storage.restore_misses)
            m.counter("storage.fallbacks").set_total(self.storage.fallbacks)
        m.gauge("acr.spares_left").set(self._spares_left)
        m.gauge("acr.checkpoint_time_s").set(rep.checkpoint_time)
        m.gauge("acr.checkpoint_blocking_time_s").set(
            rep.checkpoint_blocking_time)
        m.gauge("acr.recovery_time_s").set(rep.recovery_time)
        for phase, t in rep.phase_times.items():
            m.gauge("acr.phase_time_s", phase=phase).set(t)
        return m.snapshot()

    def _finalize(self) -> RunReport:
        rep = self.report
        rep.final_time = self.sim.now
        if self.tracer.enabled:
            self.tracer.end_open(self.sim.now)
        if self.metrics.enabled:
            rep.metrics_snapshot = self.metrics_snapshot()
        if self.series.enabled:
            # Final sample so the series always covers the end of the run
            # (collapses onto the last tick when they coincide).
            self.series.sample(self.sim.now, self.metrics_snapshot())
            rep.series = self.series.to_dict()
        if self.storage is not None:
            rep.storage_counters = self.storage.counters()
        live_progress = [t.progress for r in (0, 1) for t in self.tasks[r]]
        rep.iterations_completed = min(live_progress) if live_progress else 0
        rep.rework_iterations = sum(
            max(t.iterations_executed - t.progress, 0)
            for r in (0, 1) for t in self.tasks[r]
        )
        cap = self.config.total_iterations
        for replica in (0, 1):
            gen = self.store.safe(replica)
            if (rep.completed and cap is not None and gen is not None
                    and gen.iteration == cap):
                # The job's deliverable is the final *verified* checkpoint.
                # Live arrays may have been corrupted after the final pack
                # (an SDC landing mid-comparison is invisible to it); the
                # committed generation is what ACR actually guarantees.
                fresh = make_app(self.app_name, self.n,
                                 scale=self.config.app_scale,
                                 seed=self.config.seed)
                for rank in range(self.n):
                    unpack(fresh.shard(rank), gen.shards[rank])
                fresh.iteration = gen.iteration
                rep.digests[replica] = fresh.result_digest()
            else:
                rep.digests[replica] = self.apps[replica].result_digest()
        if self.adaptive is not None:
            # Publish the controller's authoritative history (see
            # _current_interval); nothing else writes rep.interval_history.
            rep.interval_history = list(self.adaptive.interval_history)
        if self.config.total_iterations is not None and rep.completed:
            reference = make_app(self.app_name, self.n,
                                 scale=self.config.app_scale, seed=self.config.seed)
            reference.advance_to(self.config.total_iterations)
            rep.reference_digest = reference.result_digest()
            rep.result_correct = bool(
                np.array_equal(rep.digests[0], rep.reference_digest)
                and np.array_equal(rep.digests[1], rep.reference_digest)
            )
        return rep
