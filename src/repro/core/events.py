"""Timeline recording — the raw material of Figure 12.

Every interesting moment of a run (checkpoints, failures, detections,
rollbacks, recoveries, interval adaptations) is recorded as a typed event so
benchmarks and tests can reconstruct exactly the paper's timeline view:
"Black lines show when failures are injected.  White lines indicate when
checkpoints are performed."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class TimelineKind(str, Enum):
    JOB_START = "job_start"
    CHECKPOINT_START = "checkpoint_start"
    CHECKPOINT_DONE = "checkpoint_done"
    SDC_INJECTED = "sdc_injected"
    SDC_DETECTED = "sdc_detected"
    HARD_FAULT_INJECTED = "hard_fault_injected"
    HARD_FAULT_DETECTED = "hard_fault_detected"
    ROLLBACK = "rollback"
    RECOVERY_DONE = "recovery_done"
    INTERVAL_ADAPTED = "interval_adapted"
    CONSENSUS_START = "consensus_start"
    CONSENSUS_DECIDED = "consensus_decided"
    #: Durable-tier events (only recorded when storage tiers are enabled, so
    #: default runs stay bit-identical to the committed golden digests).
    TIER_PERSIST = "tier_persist"
    TIER_RESTORE = "tier_restore"
    STORAGE_FAULT_INJECTED = "storage_fault_injected"
    JOB_END = "job_end"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TimelineEvent:
    time: float
    kind: TimelineKind
    detail: dict = field(default_factory=dict)


class Timeline:
    """Append-only, time-ordered record of one simulated run.

    The timeline doubles as the run's event bus: any number of subscribers
    (the chaos ``InvariantMonitor``, the telemetry tracer, tests) can observe
    each event as it is recorded via :meth:`subscribe` without clobbering
    each other.
    """

    def __init__(self) -> None:
        self.events: list[TimelineEvent] = []
        self._subscribers: list = []
        self._legacy_on_record = None

    # -- subscription ---------------------------------------------------------
    def subscribe(self, fn) -> None:
        """Add ``fn(event)`` to be called with each freshly recorded event."""
        self._subscribers.append(fn)

    def unsubscribe(self, fn) -> None:
        """Remove a subscriber (no-op if it was never subscribed)."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    @property
    def on_record(self):
        """Backward-compat shim for the old single-subscriber slot.

        Assigning replaces only the legacy hook — subscribers added with
        :meth:`subscribe` are unaffected.  New code should use
        :meth:`subscribe` / :meth:`unsubscribe`.
        """
        return self._legacy_on_record

    @on_record.setter
    def on_record(self, fn) -> None:
        self._legacy_on_record = fn

    def record(self, time: float, kind: TimelineKind, **detail) -> None:
        event = TimelineEvent(time, kind, detail)
        self.events.append(event)
        for fn in self._subscribers:
            fn(event)
        if self._legacy_on_record is not None:
            self._legacy_on_record(event)

    def of_kind(self, kind: TimelineKind) -> list[TimelineEvent]:
        return [e for e in self.events if e.kind is kind]

    def times_of(self, kind: TimelineKind) -> list[float]:
        return [e.time for e in self.events if e.kind is kind]

    # -- Figure-12 helpers --------------------------------------------------------
    def checkpoint_intervals(self) -> list[float]:
        """Gaps between consecutive completed checkpoints."""
        times = self.times_of(TimelineKind.CHECKPOINT_DONE)
        return [b - a for a, b in zip(times, times[1:])]

    #: render_ascii marker per event kind, in increasing visual precedence.
    _MARKERS = {
        TimelineKind.CHECKPOINT_DONE: "|",
        TimelineKind.RECOVERY_DONE: "R",
        TimelineKind.SDC_INJECTED: "s",
        TimelineKind.HARD_FAULT_INJECTED: "X",
    }
    _PRECEDENCE = {".": 0, "|": 1, "R": 2, "s": 3, "X": 4}
    LEGEND = ("legend: '|' checkpoint  's' sdc injected  'X' hard fault  "
              "'R' recovery done  '.' progress")

    def render_ascii(self, *, width: int = 100, horizon: float | None = None,
                     legend: bool = True) -> str:
        """A textual Figure 12 lane plus a legend line.

        SDC injections (``s``), hard faults (``X``), recoveries (``R``) and
        checkpoints (``|``) are distinct; when events collide in one column
        the rarer/graver marker wins (X > s > R > |).  A zero or negative
        ``horizon`` (e.g. a run that ended at t=0) degenerates safely to a
        single-column view instead of dividing by zero.
        """
        if not self.events:
            return "(empty timeline)"
        width = max(int(width), 1)
        end = horizon if horizon is not None else max(e.time for e in self.events)
        end = max(end, 1e-9)
        lane = ["."] * width

        for e in self.events:
            ch = self._MARKERS.get(e.kind)
            if ch is None:
                continue
            i = min(max(int(e.time / end * (width - 1)), 0), width - 1)
            if self._PRECEDENCE[ch] > self._PRECEDENCE[lane[i]]:
                lane[i] = ch
        line = "".join(lane)
        return f"{line}\n{self.LEGEND}" if legend else line
