"""Timeline recording — the raw material of Figure 12.

Every interesting moment of a run (checkpoints, failures, detections,
rollbacks, recoveries, interval adaptations) is recorded as a typed event so
benchmarks and tests can reconstruct exactly the paper's timeline view:
"Black lines show when failures are injected.  White lines indicate when
checkpoints are performed."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class TimelineKind(str, Enum):
    JOB_START = "job_start"
    CHECKPOINT_START = "checkpoint_start"
    CHECKPOINT_DONE = "checkpoint_done"
    SDC_INJECTED = "sdc_injected"
    SDC_DETECTED = "sdc_detected"
    HARD_FAULT_INJECTED = "hard_fault_injected"
    HARD_FAULT_DETECTED = "hard_fault_detected"
    ROLLBACK = "rollback"
    RECOVERY_DONE = "recovery_done"
    INTERVAL_ADAPTED = "interval_adapted"
    CONSENSUS_START = "consensus_start"
    CONSENSUS_DECIDED = "consensus_decided"
    JOB_END = "job_end"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TimelineEvent:
    time: float
    kind: TimelineKind
    detail: dict = field(default_factory=dict)


class Timeline:
    """Append-only, time-ordered record of one simulated run."""

    def __init__(self) -> None:
        self.events: list[TimelineEvent] = []
        #: Optional hook fired with each freshly recorded event (used by the
        #: chaos InvariantMonitor to check the stream as it is produced).
        self.on_record = None

    def record(self, time: float, kind: TimelineKind, **detail) -> None:
        event = TimelineEvent(time, kind, detail)
        self.events.append(event)
        if self.on_record is not None:
            self.on_record(event)

    def of_kind(self, kind: TimelineKind) -> list[TimelineEvent]:
        return [e for e in self.events if e.kind is kind]

    def times_of(self, kind: TimelineKind) -> list[float]:
        return [e.time for e in self.events if e.kind is kind]

    # -- Figure-12 helpers --------------------------------------------------------
    def checkpoint_intervals(self) -> list[float]:
        """Gaps between consecutive completed checkpoints."""
        times = self.times_of(TimelineKind.CHECKPOINT_DONE)
        return [b - a for a, b in zip(times, times[1:])]

    def render_ascii(self, *, width: int = 100, horizon: float | None = None) -> str:
        """A textual Figure 12: '|' checkpoints, 'X' failures, '.' progress."""
        if not self.events:
            return "(empty timeline)"
        end = horizon if horizon is not None else max(e.time for e in self.events)
        end = max(end, 1e-9)
        lane = ["."] * width

        def put(t: float, ch: str) -> None:
            i = min(int(t / end * (width - 1)), width - 1)
            # Failures dominate checkpoints visually when they collide.
            if ch == "X" or lane[i] == ".":
                lane[i] = ch

        for e in self.events:
            if e.kind is TimelineKind.CHECKPOINT_DONE:
                put(e.time, "|")
        for e in self.events:
            if e.kind in (TimelineKind.HARD_FAULT_INJECTED, TimelineKind.SDC_INJECTED):
                put(e.time, "X")
        return "".join(lane)
