"""Double-buffered in-memory checkpoint store (paper §2.1).

Each node keeps its **local checkpoint** in memory; the same bytes act as the
**remote checkpoint** of its buddy in the other replica.  The store keeps two
generations per replica:

* the **safe** generation — the newest checkpoint that survived SDC
  comparison (or was installed by a recovery), the rollback target;
* a **candidate** generation — freshly packed, not yet validated.

A successful comparison *commits* the candidate (it becomes safe); a detected
mismatch *discards* it and the run rolls back to the safe generation.  The
initial application state is stored as generation zero so "restart from the
beginning of execution" (§2.3, weak-scheme worst case) is just another
rollback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pup.puper import PackedState
from repro.util.errors import SimulationError


@dataclass
class CheckpointGeneration:
    """One coordinated checkpoint of one replica: every rank's packed shard."""

    iteration: int
    shards: dict[int, PackedState] = field(default_factory=dict)
    wallclock: float = 0.0

    @property
    def nbytes(self) -> int:
        return sum(s.nbytes for s in self.shards.values())

    def complete(self, nodes_per_replica: int) -> bool:
        return len(self.shards) == nodes_per_replica


class CheckpointStore:
    """Safe + candidate checkpoint generations for both replicas."""

    def __init__(self, nodes_per_replica: int):
        if nodes_per_replica < 1:
            raise SimulationError("nodes_per_replica must be >= 1")
        self.nodes_per_replica = nodes_per_replica
        self._safe: dict[int, CheckpointGeneration] = {}
        self._candidate: dict[int, CheckpointGeneration] = {}
        self.commits = 0
        self.discards = 0
        #: High-water mark of :meth:`memory_bytes` across the store's life,
        #: sampled at every commit/install (the telemetry layer reports it).
        self.high_water_bytes = 0
        #: Store observers (e.g. the chaos InvariantMonitor); each may
        #: implement ``on_commit(replica, gen)``, ``on_install(replica, gen)``
        #: and ``on_discard(replica)``.
        self.observers: list = []

    def _notify(self, hook_name: str, *args) -> None:
        for obs in self.observers:
            hook = getattr(obs, hook_name, None)
            if hook is not None:
                hook(*args)

    # -- candidate lifecycle -----------------------------------------------------
    def begin_candidate(self, replica: int, iteration: int, wallclock: float) -> None:
        self._candidate[replica] = CheckpointGeneration(iteration, wallclock=wallclock)

    def put_shard(self, replica: int, rank: int, state: PackedState) -> None:
        gen = self._candidate.get(replica)
        if gen is None:
            raise SimulationError(f"no candidate open for replica {replica}")
        gen.shards[rank] = state
        if rank == self.nodes_per_replica - 1:
            # The candidate just filled while the safe generation still
            # exists: the double-buffering peak.
            self.high_water_bytes = max(self.high_water_bytes,
                                        self.memory_bytes())

    def candidate(self, replica: int) -> CheckpointGeneration | None:
        return self._candidate.get(replica)

    def commit(self, replica: int) -> CheckpointGeneration:
        gen = self._candidate.pop(replica, None)
        if gen is None:
            raise SimulationError(f"no candidate to commit for replica {replica}")
        if not gen.complete(self.nodes_per_replica):
            raise SimulationError(
                f"candidate for replica {replica} has {len(gen.shards)} of "
                f"{self.nodes_per_replica} shards"
            )
        self._safe[replica] = gen
        self.commits += 1
        self.high_water_bytes = max(self.high_water_bytes, self.memory_bytes())
        self._notify("on_commit", replica, gen)
        return gen

    def discard(self, replica: int) -> None:
        if self._candidate.pop(replica, None) is not None:
            self.discards += 1
            self._notify("on_discard", replica)

    # -- safe generation access ------------------------------------------------------
    def install_safe(self, replica: int, gen: CheckpointGeneration) -> None:
        """Adopt a checkpoint generation as the rollback target (used when a
        recovery ships the healthy replica's checkpoint to the crashed one)."""
        if not gen.complete(self.nodes_per_replica):
            raise SimulationError("cannot install an incomplete generation")
        self._safe[replica] = gen
        self.high_water_bytes = max(self.high_water_bytes, self.memory_bytes())
        self._notify("on_install", replica, gen)

    def safe(self, replica: int) -> CheckpointGeneration | None:
        return self._safe.get(replica)

    def safe_iteration(self, replica: int) -> int | None:
        gen = self._safe.get(replica)
        return gen.iteration if gen is not None else None

    def memory_bytes(self) -> int:
        """Bytes of checkpoint data currently held in memory across both
        replicas (safe generations plus any open candidates).  The paper's
        in-memory double checkpointing trades exactly this footprint for
        disk-free recovery ("at the possible cost of memory overhead", §1).
        """
        total = 0
        for gen in list(self._safe.values()) + list(self._candidate.values()):
            total += gen.nbytes
        return total

    def clone_generation(self, gen: CheckpointGeneration) -> CheckpointGeneration:
        """Deep-copy a generation (installing one replica's checkpoint as the
        other's must not alias buffers that later get restored in place)."""
        return CheckpointGeneration(
            iteration=gen.iteration,
            shards={r: s.copy() for r, s in gen.shards.items()},
            wallclock=gen.wallclock,
        )
