"""Distributed asynchronous checkpoint consensus (paper §2.2, Fig. 3).

Deciding *when* everyone checkpoints cannot be a simple broadcast: tasks
progress at different rates, and checkpointing task ``a`` at iteration ``i``
while task ``b`` already sent its iteration-``i+1`` messages would lose
in-flight traffic and hang the restart (the paper's motivating example).

The four phases, implemented entirely with control messages over the
simulated transport (so latency and fail-stop semantics apply):

1. every node tracks the maximum progress of its local tasks;
2. on a checkpoint request, an asynchronous tree reduction finds the global
   maximum progress; tasks that reach their node's local maximum pause so
   nobody runs past the possible checkpoint iteration;
3. the decided checkpoint iteration (the global max) is broadcast; tasks
   below it resume and run exactly up to it, tasks at it stay paused;
4. when every task has reached the checkpoint iteration, a second reduction
   reports readiness and checkpointing begins.

A *round* can be aborted (e.g. a node died mid-reduction); stale messages
from dead rounds are ignored by round-id filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.runtime.messages import Message, MsgKind
from repro.runtime.node import Node
from repro.runtime.task import TaskState
from repro.util.errors import SimulationError


def merge_progress_bounds(
    bounds: Iterable[tuple[int, int] | None],
) -> tuple[int, int] | None:
    """Associative merge of per-scope ``(min, max)`` progress bounds.

    This is the scalar decision rule shared by both consensus embodiments.
    The message-passing tree reduction below merges the *max* side on its
    way to the root (the decided checkpoint iteration, Phase 3).  The
    space-partitioned parallel mode (:mod:`repro.harness.parallel`) runs
    per-partition local sub-rounds instead, publishes each partition's
    bounds through its conservative-window barrier, and takes the *min*
    side as the globally safe recovery line for its time-cut coordinated
    checkpoints.  ``None`` entries (scopes with no live tasks) are skipped;
    the result is ``None`` when nothing contributed.
    """
    lo: int | None = None
    hi: int | None = None
    for pair in bounds:
        if pair is None:
            continue
        b_lo, b_hi = pair
        lo = b_lo if lo is None else min(lo, b_lo)
        hi = b_hi if hi is None else max(hi, b_hi)
    if lo is None or hi is None:
        return None
    return lo, hi


@dataclass
class _AgentState:
    """Per-node protocol state for one consensus round."""

    parent: int | None
    children: list[int]
    pending_max: set[int] = field(default_factory=set)
    local_bound: int = 0
    subtree_max: int = 0
    decided: int | None = None
    pending_ready: set[int] = field(default_factory=set)
    local_ready_sent: bool = False
    ready_sent_up: bool = False


class ConsensusController:
    """Drives consensus rounds over an arbitrary scope of nodes."""

    def __init__(self, nodes: dict[int, Node]):
        self.nodes = nodes
        self.round_id = 0
        self.active = False
        self.scope: list[int] = []
        self._agents: dict[int, _AgentState] = {}
        self.on_complete: Callable[[int, int], None] | None = None
        self.decided_iteration: int | None = None
        self.rounds_started = 0
        self.rounds_completed = 0
        self.rounds_aborted = 0
        #: Telemetry tracer (a no-op unless the framework installs a real
        #: one).  Each round emits a ``consensus.round`` span with the four
        #: protocol sub-phases as children.
        self.tracer = NULL_TRACER
        #: Telemetry metrics registry (no-op by default); completed rounds
        #: feed a wall-time histogram.
        self.metrics = NULL_METRICS
        self._sim = next(iter(nodes.values())).sim if nodes else None
        self._round_span = None
        self._t_start = 0.0
        self._t_decided = 0.0
        self._t_last_decision = 0.0
        self._t_last_ready = 0.0
        for node in nodes.values():
            node.control_handler = self._on_control
            node.on_all_tasks_ready = self._on_node_all_ready

    # -- round lifecycle --------------------------------------------------------
    def start_round(self, scope: list[int],
                    on_complete: Callable[[int, int], None],
                    *, span_parent=None) -> int:
        """Begin a consensus round over ``scope`` (list of node ids).

        ``on_complete(round_id, iteration)`` fires when every task in scope is
        paused at the decided iteration.  Returns the round id.
        ``span_parent`` parents this round's telemetry span (e.g. under the
        enclosing checkpoint or medium-recovery span).
        """
        if self.active:
            raise SimulationError("consensus round already active")
        if not scope:
            raise SimulationError("empty consensus scope")
        self.round_id += 1
        self.rounds_started += 1
        self.active = True
        now = self._sim.now if self._sim is not None else 0.0
        self._t_start = self._t_decided = now
        self._t_last_decision = self._t_last_ready = now
        self._round_span = self.tracer.begin(
            "consensus.round", now, parent=span_parent,
            round=self.round_id, scope=len(scope))
        self.scope = list(scope)
        self.on_complete = on_complete
        self.decided_iteration = None
        self._agents = {}
        index_of = {nid: i for i, nid in enumerate(self.scope)}
        for nid in self.scope:
            i = index_of[nid]
            parent = self.scope[(i - 1) // 2] if i > 0 else None
            children = [self.scope[c] for c in (2 * i + 1, 2 * i + 2)
                        if c < len(self.scope)]
            self._agents[nid] = _AgentState(parent=parent, children=children,
                                            pending_max=set(children))
        # Kick off Phase 1/2 at the root; the request floods down the tree.
        root = self.scope[0]
        self._send(root, root, "cons-start", self.round_id)
        return self.round_id

    def abort_round(self) -> None:
        """Abandon the active round (a node died mid-protocol); paused tasks
        are released so the application can drain or recover."""
        if not self.active:
            return
        self.active = False
        self.rounds_aborted += 1
        now = self._sim.now if self._sim is not None else 0.0
        self.tracer.end(self._round_span, now, aborted=True)
        self._round_span = None
        for nid in self.scope:
            node = self.nodes[nid]
            if not node.alive:
                # A dead node's tasks must stay dead until its recovery
                # restores them; resuming them here would resurrect work on a
                # failed node behind the recovery machinery's back.
                continue
            for t in node.tasks:
                t.resume()
        self._agents = {}

    # -- message plumbing ----------------------------------------------------------
    def _send(self, src: int, dst: int, tag: str, payload) -> None:
        self.nodes[src].transport.send(
            Message(kind=MsgKind.CONTROL, src=src, dst=dst,
                    payload=payload, nbytes=64, tag=tag)
        )

    def _on_control(self, msg: Message) -> None:
        handler = {
            "cons-start": self._on_start,
            "cons-max": self._on_max,
            "cons-decision": self._on_decision,
            "cons-ready": self._on_ready,
        }.get(msg.tag)
        if handler is None:
            raise SimulationError(f"unknown control tag {msg.tag!r}")
        handler(msg)

    def _stale(self, payload) -> bool:
        rid = payload[0] if isinstance(payload, tuple) else payload
        return (not self.active) or rid != self.round_id

    # -- Phase 1 + 2: flood down, pause at local max, reduce max up -------------------
    def _on_start(self, msg: Message) -> None:
        if self._stale(msg.payload):
            return
        nid = msg.dst
        agent = self._agents[nid]
        node = self.nodes[nid]
        for child in agent.children:
            self._send(nid, child, "cons-start", self.round_id)
        # Local bound: no local task can end up past this iteration (a task
        # mid-iteration may still complete the one it is computing).
        bound = 0
        for t in node.tasks:
            eff = t.progress + (1 if t.state is TaskState.COMPUTING else 0)
            bound = max(bound, eff)
        agent.local_bound = bound
        agent.subtree_max = bound
        for t in node.tasks:
            t.request_pause_at(bound)
        self._maybe_send_max_up(nid)

    def _on_max(self, msg: Message) -> None:
        if self._stale(msg.payload):
            return
        _, child_max = msg.payload
        nid = msg.dst
        agent = self._agents[nid]
        agent.pending_max.discard(msg.src)
        merged = merge_progress_bounds(
            [(agent.subtree_max, agent.subtree_max), (child_max, child_max)])
        assert merged is not None
        agent.subtree_max = merged[1]
        self._maybe_send_max_up(nid)

    def _maybe_send_max_up(self, nid: int) -> None:
        agent = self._agents[nid]
        if agent.pending_max:
            return
        if agent.parent is not None:
            self._send(nid, agent.parent, "cons-max",
                       (self.round_id, agent.subtree_max))
        else:
            # Root: Phase 3 — the checkpoint iteration is decided.
            self.decided_iteration = agent.subtree_max
            if self._sim is not None:
                self._t_decided = self._sim.now
            self._send(nid, nid, "cons-decision",
                       (self.round_id, agent.subtree_max))

    # -- Phase 3: broadcast decision, run/pause to it ---------------------------------
    def _on_decision(self, msg: Message) -> None:
        if self._stale(msg.payload):
            return
        _, decided = msg.payload
        nid = msg.dst
        agent = self._agents[nid]
        node = self.nodes[nid]
        agent.decided = decided
        if self._sim is not None:
            self._t_last_decision = self._sim.now
        agent.pending_ready = set(agent.children)
        for child in agent.children:
            self._send(nid, child, "cons-decision", (self.round_id, decided))
        for t in node.tasks:
            t.request_pause_at(decided)
            t.resume_if_below()
        if node.all_tasks_ready():
            self._on_node_all_ready(node)

    # -- Phase 4: readiness reduction ---------------------------------------------------
    def _on_node_all_ready(self, node: Node) -> None:
        if not self.active:
            return
        agent = self._agents.get(node.node_id)
        if agent is None or agent.decided is None or agent.local_ready_sent:
            return
        agent.local_ready_sent = True
        if self._sim is not None:
            self._t_last_ready = self._sim.now
        self._maybe_send_ready_up(node.node_id)

    def _on_ready(self, msg: Message) -> None:
        if self._stale(msg.payload):
            return
        nid = msg.dst
        agent = self._agents[nid]
        agent.pending_ready.discard(msg.src)
        self._maybe_send_ready_up(nid)

    def _maybe_send_ready_up(self, nid: int) -> None:
        agent = self._agents[nid]
        if not agent.local_ready_sent or agent.pending_ready:
            return
        if agent.ready_sent_up:
            return
        agent.ready_sent_up = True
        if agent.parent is not None:
            self._send(nid, agent.parent, "cons-ready", (self.round_id,))
        else:
            self.active = False
            self.rounds_completed += 1
            if self._sim is not None:
                self.metrics.histogram("consensus.round_duration_s").observe(
                    self._sim.now - self._t_start)
            self._emit_round_spans()
            if self.on_complete is not None:
                self.on_complete(self.round_id, self.decided_iteration)

    def _emit_round_spans(self) -> None:
        """Close the round span and emit its four sub-phase children.

        The boundaries come from the round's observed protocol milestones:
        the max reduction runs from round start to the root's decision, the
        decision broadcast until the last node handles it, the drain until
        the last node's tasks pause at the decided iteration, and the
        readiness reduction until the round completes.  Each boundary is
        clamped monotone so float ties cannot produce negative spans.
        """
        if self._sim is None or self._round_span is None:
            return
        now = self._sim.now
        t0 = self._t_start
        t1 = max(t0, self._t_decided)
        t2 = max(t1, self._t_last_decision)
        t3 = max(t2, self._t_last_ready)
        parent = self._round_span
        rid = self.round_id
        self.tracer.emit("consensus.reduce_max", t0, t1, parent=parent, round=rid)
        self.tracer.emit("consensus.broadcast", t1, t2, parent=parent, round=rid)
        self.tracer.emit("consensus.drain", t2, t3, parent=parent, round=rid)
        self.tracer.emit("consensus.ready_reduce", t3, now, parent=parent,
                         round=rid)
        self.tracer.end(self._round_span, now,
                        decided_iteration=self.decided_iteration)
        self._round_span = None
