"""Configuration of the ACR framework."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.model.schemes import ResilienceScheme
from repro.network.mapping import MappingScheme
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ACRConfig:
    """Everything a user chooses when launching a job under ACR.

    Mirrors the paper's knobs: the resilience scheme (§2.3), the replica
    mapping and checksum optimizations (§4.2), fixed vs. adaptive
    checkpoint period (§2.2), and the spare-node pool (§2.1).
    """

    #: Recovery scheme: strong / medium / weak (§2.3).
    scheme: ResilienceScheme = ResilienceScheme.STRONG
    #: Fixed checkpoint period in simulated seconds (ignored when adaptive).
    checkpoint_interval: float = 60.0
    #: Adapt the period online from the observed failure stream (§2.2).
    adaptive: bool = False
    #: Initial period used by the adaptive controller before it has data.
    adaptive_initial_interval: float = 10.0
    #: Clamp for the adaptive period.
    adaptive_min_interval: float = 1.0
    adaptive_max_interval: float = 600.0
    #: Compare full checkpoints or Fletcher digests (§4.2).
    use_checksum: bool = False
    #: Semi-blocking (asynchronous) checkpointing — the future work named in
    #: §4.2: tasks resume right after the local snapshot and the inter-replica
    #: transfer + comparison overlap execution.  Cuts the blocking overhead to
    #: the pack time at the cost of a longer SDC-detection latency.
    async_checkpointing: bool = False
    #: Replica placement on the torus (§4.2, Fig. 6).
    mapping: MappingScheme = MappingScheme.DEFAULT
    #: Chunk width for the mixed mapping.
    mapping_chunk: int = 2
    #: Simulated application tasks hosted per node (over-decomposition).
    tasks_per_node: int = 1
    #: Heartbeat period and silence threshold (in periods) for fail-stop
    #: detection (§6.1).
    heartbeat_interval: float = 0.5
    heartbeat_timeout_factor: float = 4.0
    #: Spare nodes reserved at job launch (§2.1).
    spare_nodes: int = 4
    #: Time for a spare node to take over a dead node's identity.
    spare_boot_time: float = 1.0
    #: Floating-point tolerance for checkpoint comparison (0 = bit exact;
    #: §4.1 lets users widen this for round-off-tolerant comparison).
    compare_rtol: float = 0.0
    #: Stop once every task completes this many iterations (None = run until
    #: the requested sim duration).
    total_iterations: int | None = None
    #: Root seed for all stochastic streams.
    seed: int = 0
    #: Functional state scale for the mini-apps (1.0 = full Table-2 size).
    app_scale: float = 1e-4
    #: Durable checkpoint tiers behind the in-memory double checkpoint
    #: (:class:`~repro.storage.tiers.TierSpec` entries, levels 2/3).  Empty
    #: means the paper's pure in-memory protocol — the default, and what the
    #: committed golden digests pin down.
    storage_tiers: tuple = ()

    def __post_init__(self) -> None:
        if self.checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint_interval must be positive")
        if self.adaptive_min_interval <= 0 or (
            self.adaptive_max_interval < self.adaptive_min_interval
        ):
            raise ConfigurationError("bad adaptive interval clamp")
        if self.tasks_per_node < 1:
            raise ConfigurationError("tasks_per_node must be >= 1")
        if self.spare_nodes < 0:
            raise ConfigurationError("spare_nodes must be >= 0")
        if self.total_iterations is not None and self.total_iterations < 1:
            raise ConfigurationError("total_iterations must be >= 1")
        if not (0 < self.app_scale <= 1.0):
            raise ConfigurationError("app_scale must be in (0, 1]")
        levels = [getattr(t, "level", None) for t in self.storage_tiers]
        if any(level not in (2, 3) for level in levels):
            raise ConfigurationError(
                f"storage_tiers must be TierSpec entries with level 2 or 3, "
                f"got levels {levels}")
        if len(set(levels)) != len(levels):
            raise ConfigurationError(f"duplicate storage tier levels: {levels}")

    def with_overrides(self, **kwargs) -> "ACRConfig":
        return replace(self, **kwargs)
