"""Command-line interface: run experiments and regenerate paper figures.

Usage (also via ``python -m repro``):

    python -m repro apps
    python -m repro run --app jacobi3d-charm --nodes 4 --scheme strong \
        --iterations 200 --hard-mtbf 30 --sdc-mtbf 50 --seed 1
    python -m repro run --trace-out t.json --metrics-out m.json
    python -m repro report --metrics m.json --trace t.json
    python -m repro model --sockets 16384 --delta 15 --fit 100
    python -m repro figure fig8 --apps jacobi3d-charm leanmd
    python -m repro figure fig12 --nodes 8 --horizon 600
    python -m repro campaign --seeds 32 --workers 8 --hard-mtbf 20
    python -m repro store ls
    python -m repro store gc
    python -m repro golden check
    python -m repro chaos --seeds 500 --workers 8
    python -m repro chaos --replay repro-seed42.json
    python -m repro serve --port 8737 --workers 4
    python -m repro submit --server 127.0.0.1:8737 --seeds 16 --wait
    python -m repro jobs --server 127.0.0.1:8737
    python -m repro cancel --server 127.0.0.1:8737 job-000000
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.apps.registry import MINIAPP_NAMES, descriptor
from repro.harness.experiment import run_acr_experiment
from repro.harness.figures import (
    fig6_data,
    fig8_data,
    fig9_fig11_data,
    fig10_data,
    fig12_data,
)
from repro.harness.report import format_table
from repro.model.params import ModelParams
from repro.model.schemes import ResilienceScheme, optimal_tau, solve_scheme
from repro.model.vulnerability import undetected_sdc_probability
from repro.util.units import HOURS, YEARS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ACR (SC'13) reproduction: automatic checkpoint/restart "
                    "for soft and hard error protection.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the paper's mini-applications")

    run_p = sub.add_parser("run", help="run an application under ACR")
    run_p.add_argument("--app", default="jacobi3d-charm", choices=MINIAPP_NAMES)
    run_p.add_argument("--nodes", type=int, default=4,
                       help="nodes per replica")
    run_p.add_argument("--scheme", default="strong",
                       choices=[s.value for s in ResilienceScheme])
    run_p.add_argument("--mapping", default="default",
                       choices=["default", "column", "mixed"])
    run_p.add_argument("--iterations", type=int, default=200)
    run_p.add_argument("--interval", type=float, default=5.0,
                       help="checkpoint period in simulated seconds")
    run_p.add_argument("--hard-mtbf", type=float, default=None,
                       help="inject Poisson hard faults at this MTBF (s)")
    run_p.add_argument("--sdc-mtbf", type=float, default=None,
                       help="inject Poisson bit flips at this MTBF (s)")
    run_p.add_argument("--checksum", action="store_true",
                       help="compare Fletcher digests instead of full state")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--tiers", default="off",
                       choices=["off", "2", "3", "both"],
                       help="durable checkpoint tiers behind the in-memory "
                            "store (2=node-local, 3=shared FS)")
    run_p.add_argument("--tier-protocol", default="atomic-dirsync",
                       choices=["atomic-dirsync", "unsafe"],
                       help="group-write crash-consistency protocol")
    run_p.add_argument("--tier2-interval", type=float, default=None,
                       help="level-2 persist period (s); default: Daly plan")
    run_p.add_argument("--tier3-interval", type=float, default=None,
                       help="level-3 persist period (s); default: Daly plan")
    run_p.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the run's phase spans as a Chrome "
                            "trace_event JSON (load in Perfetto)")
    run_p.add_argument("--trace-format", default="chrome",
                       choices=["chrome", "jsonl"],
                       help="trace file format (default: chrome)")
    run_p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the run's metrics-registry snapshot as JSON")
    run_p.add_argument("--series-out", default=None, metavar="FILE",
                       help="sample the metrics registry periodically and "
                            "write the time series (arms an in-sim sampling "
                            "timer; the run stays deterministic but is a "
                            "different execution than an unsampled one)")
    run_p.add_argument("--series-interval", type=float, default=None,
                       metavar="S",
                       help="sampling period in simulated seconds "
                            "(default: 5.0)")
    run_p.add_argument("--series-format", default="json",
                       choices=["json", "jsonl", "openmetrics"],
                       help="series file format (openmetrics exports the "
                            "final sample as Prometheus text)")

    model_p = sub.add_parser("model", help="query the Section-5 model")
    model_p.add_argument("--sockets", type=int, default=16384,
                         help="sockets per replica")
    model_p.add_argument("--delta", type=float, default=15.0,
                         help="checkpoint time (s)")
    model_p.add_argument("--fit", type=float, default=100.0,
                         help="SDC rate per socket (FIT)")
    model_p.add_argument("--mtbf-years", type=float, default=50.0,
                         help="per-socket hard-error MTBF (years)")
    model_p.add_argument("--tiers", action="store_true",
                         help="also print the durable-tier interval plan")
    model_p.add_argument("--hours", type=float, default=24.0,
                         help="job length (hours)")

    fig_p = sub.add_parser("figure", help="regenerate a paper figure's data")
    fig_p.add_argument("name",
                       choices=["fig6", "fig7", "fig8", "fig9", "fig10",
                                "fig11", "fig12"])
    fig_p.add_argument("--plot", action="store_true",
                       help="render terminal charts instead of raw tables")
    fig_p.add_argument("--apps", nargs="+", default=None,
                       help="restrict to these mini-apps (fig8/9/10/11)")
    fig_p.add_argument("--nodes", type=int, default=8,
                       help="nodes per replica (fig12)")
    fig_p.add_argument("--horizon", type=float, default=600.0,
                       help="run length in simulated seconds (fig12)")
    fig_p.add_argument("--failures", type=int, default=12,
                       help="expected failure count (fig12)")
    fig_p.add_argument("--seed", type=int, default=3)

    sub.add_parser("table2", help="print Table 2 (mini-app configurations)")

    report_p = sub.add_parser(
        "report", help="render saved telemetry (trace / metrics JSON)")
    report_p.add_argument("--metrics", default=None, metavar="FILE",
                          help="metrics JSON from `repro run --metrics-out`")
    report_p.add_argument("--trace", default=None, metavar="FILE",
                          help="Chrome trace JSON from `repro run --trace-out`")
    report_p.add_argument("--series", default=None, metavar="FILE",
                          help="time-series JSON from "
                               "`repro run --series-out`")
    report_p.add_argument("--format", default="table",
                          choices=["table", "json"],
                          help="render tables (default) or one JSON document")

    campaign_p = sub.add_parser(
        "campaign",
        help="run a resumable multi-seed campaign (cache-backed sweep)")
    campaign_p.add_argument("--app", default="jacobi3d-charm",
                            choices=MINIAPP_NAMES)
    campaign_p.add_argument("--seeds", type=int, default=8,
                            help="number of seeds (cells) in the sweep")
    campaign_p.add_argument("--seed-start", type=int, default=0,
                            help="first seed (the sweep covers "
                                 "[start, start+seeds))")
    campaign_p.add_argument("--workers", type=int, default=None,
                            help="process-pool width (default: serial)")
    campaign_p.add_argument("--nodes", type=int, default=4,
                            help="nodes per replica")
    campaign_p.add_argument("--scheme", default="strong",
                            choices=[s.value for s in ResilienceScheme])
    campaign_p.add_argument("--mapping", default="default",
                            choices=["default", "column", "mixed"])
    campaign_p.add_argument("--iterations", type=int, default=200)
    campaign_p.add_argument("--interval", type=float, default=5.0,
                            help="checkpoint period in simulated seconds")
    campaign_p.add_argument("--hard-mtbf", type=float, default=None)
    campaign_p.add_argument("--sdc-mtbf", type=float, default=None)
    campaign_p.add_argument("--checksum", action="store_true")
    campaign_p.add_argument("--horizon", type=float, default=10_000.0)
    campaign_p.add_argument("--spare-nodes", type=int, default=64)
    _add_progress_flags(campaign_p)
    _add_cache_flags(campaign_p)

    store_p = sub.add_parser(
        "store", help="inspect / maintain the campaign result store")
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    for name, help_text in (
        ("ls", "list cached cells"),
        ("gc", "drop cells computed by a different source tree"),
        ("verify", "check every record parses and sits at its address"),
    ):
        p = store_sub.add_parser(name, help=help_text)
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache root (default: $REPRO_CACHE_DIR or "
                            ".repro-cache)")
        if name == "gc":
            p.add_argument("--wipe", action="store_true",
                           help="remove every cell, not just stale ones")

    golden_p = sub.add_parser(
        "golden",
        help="check / update the committed Figs. 8-11 summary digests")
    golden_p.add_argument("action", choices=["check", "update"])
    golden_p.add_argument("--dir", default="golden",
                          help="directory of committed digests")

    chaos_p = sub.add_parser(
        "chaos", help="fuzz fault schedules against the protocol invariants")
    chaos_p.add_argument("--seeds", type=int, default=100,
                         help="number of fuzzer seeds (schedules) to run")
    chaos_p.add_argument("--workers", type=int, default=None,
                         help="process-pool width (default: serial)")
    chaos_p.add_argument("--app", default="jacobi3d-charm",
                         choices=MINIAPP_NAMES)
    chaos_p.add_argument("--no-shrink", action="store_true",
                         help="skip ddmin minimization of failing schedules")
    chaos_p.add_argument("--out", default=None, metavar="DIR",
                         help="write minimized repro plans as JSON into DIR")
    chaos_p.add_argument("--replay", default=None, metavar="PLAN.json",
                         help="replay one serialized schedule — or a "
                              "flight-recorder artifact, whose embedded "
                              "schedule is replayed — instead of fuzzing")
    chaos_p.add_argument("--flight-dir", default=None, metavar="DIR",
                         help="arm a flight recorder on every run; failing "
                              "seeds dump their event tail + repro plan here "
                              "(default: the result store's quarantine/ "
                              "when caching is on)")
    _add_progress_flags(chaos_p)
    _add_cache_flags(chaos_p, default_off=True)

    serve_p = sub.add_parser(
        "serve",
        help="run the multi-tenant campaign server over the result store")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8737,
                         help="listen port; 0 asks the OS for an ephemeral "
                              "one (the bound port is printed on startup)")
    serve_p.add_argument("--workers", type=int, default=None,
                         help="simulation worker width (default: cpu count)")
    serve_p.add_argument("--queue-limit", type=int, default=None,
                         help="global bound on queued cells (backpressure)")
    serve_p.add_argument("--tenant-quota", type=int, default=None,
                         help="per-tenant bound on outstanding cells")
    serve_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result-store root (default: $REPRO_CACHE_DIR "
                              "or .repro-cache)")

    submit_p = sub.add_parser(
        "submit", help="submit a sweep to a running campaign server")
    _add_server_flag(submit_p)
    submit_p.add_argument("--tenant", default="default")
    submit_p.add_argument("--priority", type=int, default=None,
                          help="job priority (lower runs sooner)")
    submit_p.add_argument("--wait", action="store_true",
                          help="block until the job finishes, then print "
                               "its campaign summary")
    submit_p.add_argument("--timeout", type=float, default=600.0,
                          help="--wait deadline in seconds")
    submit_p.add_argument("--app", default="jacobi3d-charm",
                          choices=MINIAPP_NAMES)
    submit_p.add_argument("--seeds", type=int, default=8,
                          help="number of seeds (cells) in the sweep")
    submit_p.add_argument("--seed-start", type=int, default=0)
    submit_p.add_argument("--nodes", type=int, default=4,
                          help="nodes per replica")
    submit_p.add_argument("--scheme", default="strong",
                          choices=[s.value for s in ResilienceScheme])
    submit_p.add_argument("--mapping", default="default",
                          choices=["default", "column", "mixed"])
    submit_p.add_argument("--iterations", type=int, default=200)
    submit_p.add_argument("--interval", type=float, default=5.0,
                          help="checkpoint period in simulated seconds")
    submit_p.add_argument("--hard-mtbf", type=float, default=None)
    submit_p.add_argument("--sdc-mtbf", type=float, default=None)
    submit_p.add_argument("--checksum", action="store_true")
    submit_p.add_argument("--horizon", type=float, default=10_000.0)
    submit_p.add_argument("--spare-nodes", type=int, default=64)

    jobs_p = sub.add_parser(
        "jobs", help="list jobs on a running campaign server")
    _add_server_flag(jobs_p)
    jobs_p.add_argument("--tenant", default=None,
                        help="only this tenant's jobs")
    jobs_p.add_argument("--json", action="store_true",
                        help="print raw JSON instead of a table")

    cancel_p = sub.add_parser(
        "cancel", help="cancel a job on a running campaign server")
    _add_server_flag(cancel_p)
    cancel_p.add_argument("job_id")
    return parser


def _add_server_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--server", default="127.0.0.1:8737",
                        metavar="HOST:PORT",
                        help="campaign server address (as printed by "
                             "`repro serve` on startup)")


def _add_progress_flags(parser: argparse.ArgumentParser) -> None:
    """--progress / --progress-file on a sweep subcommand."""
    parser.add_argument("--progress", action="store_true",
                        help="render live per-cell progress (cells/s, "
                             "cache-hit rate, ETA) while the sweep runs")
    parser.add_argument("--progress-file", default=None, metavar="FILE",
                        help="atomically rewrite FILE with a JSON progress "
                             "snapshot on every cell (poll it from outside)")


def _progress_for(args: argparse.Namespace, total: int, label: str):
    """The ProgressTracker the progress flags select (or None)."""
    if not args.progress and args.progress_file is None:
        return None
    from repro.obs import ProgressTracker, render_progress_line

    on_event = None
    if args.progress:
        def on_event(event: dict) -> None:
            end = "\n" if event["done"] else ""
            print("\r\x1b[K" + render_progress_line(event),
                  end=end, file=sys.stderr, flush=True)
    return ProgressTracker(total, on_event=on_event,
                           path=args.progress_file, label=label)


def _add_cache_flags(parser: argparse.ArgumentParser,
                     *, default_off: bool = False) -> None:
    """--cache-dir / --no-cache / --no-resume on a sweep subcommand."""
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-store root (default: $REPRO_CACHE_DIR or .repro-cache"
             + ("; caching off unless given" if default_off else ""))
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result store for this sweep")
    parser.add_argument("--no-resume", action="store_true",
                        help="recompute every cell (still writes the store)")


def _store_for(args: argparse.Namespace, *, default_off: bool = False):
    """The ResultStore a sweep subcommand's cache flags select (or None)."""
    from repro.store import ResultStore, default_cache_dir

    if args.no_cache:
        return None
    if args.cache_dir is None and default_off:
        return None
    return ResultStore(args.cache_dir or default_cache_dir())


def _cmd_apps() -> int:
    rows = []
    for name in MINIAPP_NAMES:
        d = descriptor(name)
        rows.append([name, d.programming_model, d.table2_configuration,
                     d.memory_pressure, d.declared_bytes_per_core])
    print(format_table(
        ["mini-app", "model", "config (per core)", "memory pressure",
         "bytes/core"],
        rows, title="Mini-applications (paper Table 2)"))
    return 0


def _phase_breakdown_rows(phase_times: dict[str, float],
                          checkpoint_time: float,
                          recovery_time: float) -> tuple[list, str]:
    """Rows for a per-phase protocol-time table plus a consistency line."""
    total = sum(phase_times.values())
    rows = [[phase, round(t, 4),
             round(100.0 * t / total, 2) if total > 0 else 0.0]
            for phase, t in sorted(phase_times.items())]
    budget = checkpoint_time + recovery_time
    drift = abs(total - budget) / budget if budget > 0 else 0.0
    note = (f"phase sum {total:.4f} s vs checkpoint+recovery {budget:.4f} s "
            f"(drift {100.0 * drift:.3f}%)")
    return rows, note


def _cmd_run(args: argparse.Namespace) -> int:
    tracer = metrics = series = None
    if args.trace_out is not None:
        from repro.obs import SpanTracer

        tracer = SpanTracer()
    if args.metrics_out is not None:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    if args.series_out is not None:
        from repro.obs import DEFAULT_SERIES_INTERVAL, TimeSeriesRecorder

        series = TimeSeriesRecorder(
            interval=args.series_interval or DEFAULT_SERIES_INTERVAL)
    elif args.series_interval is not None:
        print("--series-interval has no effect without --series-out",
              file=sys.stderr)
        return 2
    storage_tiers: tuple = ()
    if args.tiers != "off":
        from repro.storage.tiers import (
            NODE_LOCAL_TIER,
            SHARED_FS_TIER,
            WriteProtocol,
        )

        protocol = WriteProtocol(args.tier_protocol)
        specs = []
        if args.tiers in ("2", "both"):
            specs.append(NODE_LOCAL_TIER.with_protocol(protocol)
                         .with_interval(args.tier2_interval))
        if args.tiers in ("3", "both"):
            specs.append(SHARED_FS_TIER.with_protocol(protocol)
                         .with_interval(args.tier3_interval))
        storage_tiers = tuple(specs)
    result = run_acr_experiment(
        args.app,
        nodes_per_replica=args.nodes,
        scheme=args.scheme,
        mapping=args.mapping,
        use_checksum=args.checksum,
        total_iterations=args.iterations,
        checkpoint_interval=args.interval,
        hard_mtbf=args.hard_mtbf,
        sdc_mtbf=args.sdc_mtbf,
        seed=args.seed,
        storage_tiers=storage_tiers,
        tracer=tracer,
        metrics=metrics,
        series=series,
    )
    r = result.report
    rows = [
        ["completed", r.completed],
        ["simulated time (s)", round(r.final_time, 3)],
        ["checkpoints", r.checkpoints_completed],
        ["SDC injected / detected", f"{r.sdc_injected} / {r.sdc_detected}"],
        ["hard faults injected / detected",
         f"{r.hard_injected} / {r.hard_detected}"],
        ["recoveries", str(r.recoveries)],
        ["rework iterations", r.rework_iterations],
        ["result bit-correct", r.result_correct],
    ]
    if r.aborted_reason:
        rows.append(["aborted", r.aborted_reason])
    print(format_table(["metric", "value"], rows,
                       title=f"ACR run: {args.app}, {args.scheme} scheme, "
                             f"{args.nodes} nodes/replica"))
    if r.phase_times:
        phase_rows, note = _phase_breakdown_rows(
            r.phase_times, r.checkpoint_time, r.recovery_time)
        print()
        print(format_table(["phase", "time (s)", "share %"], phase_rows,
                           title="protocol time by phase"))
        print(note)
    if r.storage_counters:
        print()
        print(format_table(
            ["counter", "value"],
            [[k, int(v) if float(v).is_integer() else round(v, 4)]
             for k, v in sorted(r.storage_counters.items())],
            title="durable storage tiers"))
    print("\ntimeline:")
    print(r.timeline.render_ascii(width=80))
    if tracer is not None:
        from repro.obs import write_trace

        write_trace(tracer, args.trace_out, fmt=args.trace_format)
        print(f"\ntrace written to {args.trace_out} "
              f"({len(tracer.spans)} spans, "
              f"{len(tracer.phase_names())} phase types)")
    if metrics is not None:
        from repro.obs import write_metrics

        write_metrics(r.metrics_snapshot or {}, args.metrics_out,
                      app=args.app, scheme=args.scheme, seed=args.seed)
        print(f"metrics written to {args.metrics_out}")
    if series is not None:
        from repro.obs import write_series

        write_series(args.series_out, r.series or series.to_dict(),
                     fmt=args.series_format)
        print(f"series written to {args.series_out} "
              f"({len(series)} samples x {len(series.keys())} metrics, "
              f"every {series.interval:g} sim-s)")
    return 0 if (r.completed and r.aborted_reason is None) else 1


def _series_trends(series: dict) -> dict:
    """Per-metric first/last/delta trend summary of a series payload."""
    from repro.obs import TimeSeriesRecorder

    rec = TimeSeriesRecorder.from_dict(series)
    trends: dict = {"samples": len(rec), "interval": rec.interval,
                    "span_s": (rec.times[-1] - rec.times[0]) if rec.times
                    else 0.0,
                    "counters": {}, "gauges": {}}
    for key, col in sorted(rec.counters.items()):
        trends["counters"][key] = {
            "first": col[0] if col else 0.0,
            "last": col[-1] if col else 0.0,
            "delta": (col[-1] - col[0]) if col else 0.0,
            "deltas": rec.deltas(key),
        }
    for key, col in sorted(rec.gauges.items()):
        trends["gauges"][key] = {
            "first": col[0] if col else 0.0,
            "last": col[-1] if col else 0.0,
            "min": min(col) if col else 0.0,
            "max": max(col) if col else 0.0,
            "values": list(col),
        }
    return trends


def _cmd_report(args: argparse.Namespace) -> int:
    """Render telemetry files written by ``repro run``."""
    import json

    from repro.obs import (
        load_json,
        snapshot_percentile,
        trace_phase_summary,
        validate_chrome_trace,
    )

    if args.metrics is None and args.trace is None and args.series is None:
        print("nothing to report: pass --metrics, --trace and/or --series",
              file=sys.stderr)
        return 2
    status = 0
    as_json = args.format == "json"
    document: dict = {}
    if args.metrics is not None:
        snap = load_json(args.metrics)
        if as_json:
            document["metrics"] = snap
            snap = {}
        gauges = snap.get("gauges", {})
        prefix = "acr.phase_time_s{phase="
        phase_times = {k[len(prefix):-1]: v for k, v in gauges.items()
                       if k.startswith(prefix)}
        if phase_times:
            phase_rows, note = _phase_breakdown_rows(
                phase_times,
                gauges.get("acr.checkpoint_time_s", 0.0),
                gauges.get("acr.recovery_time_s", 0.0))
            print(format_table(["phase", "time (s)", "share %"], phase_rows,
                               title=f"protocol time by phase ({args.metrics})"))
            print(note)
            print()
        counters = snap.get("counters", {})
        storage_counters = {k: v for k, v in counters.items()
                            if k.startswith("storage.")}
        counters = {k: v for k, v in counters.items()
                    if not k.startswith("storage.")}
        if counters:
            print(format_table(
                ["counter", "value"],
                [[k, int(v) if float(v).is_integer() else v]
                 for k, v in sorted(counters.items())],
                title="counters"))
            print()
        if storage_counters:
            print(format_table(
                ["counter", "value"],
                [[k, int(v) if float(v).is_integer() else v]
                 for k, v in sorted(storage_counters.items())],
                title="durable storage tiers (level hit/miss/fallback)"))
            print()
        other_gauges = {k: v for k, v in gauges.items()
                        if not k.startswith(prefix)}
        if other_gauges:
            print(format_table(
                ["gauge", "value"],
                [[k, v] for k, v in sorted(other_gauges.items())],
                title="gauges"))
            print()
        histograms = snap.get("histograms", {})
        if histograms:
            print(format_table(
                ["histogram", "count", "mean", "p50", "p90", "p99", "max"],
                [[k, h["count"],
                  round(h["sum"] / h["count"], 6) if h["count"] else 0.0,
                  round(snapshot_percentile(h, 50), 6),
                  round(snapshot_percentile(h, 90), 6),
                  round(snapshot_percentile(h, 99), 6),
                  round(h["max"], 6)]
                 for k, h in sorted(histograms.items())],
                title="histograms (seconds)"))
            print()
    if args.trace is not None:
        payload = load_json(args.trace)
        problems = validate_chrome_trace(payload)
        if problems:
            print(f"invalid Chrome trace {args.trace}:", file=sys.stderr)
            for p in problems[:10]:
                print(f"  {p}", file=sys.stderr)
            status = 1
        else:
            summary = trace_phase_summary(payload)
            if as_json:
                document["trace"] = {
                    "events": len(payload["traceEvents"]),
                    "spans": {name: {"count": count, "total_s": total}
                              for name, (count, total) in summary.items()},
                }
            else:
                print(format_table(
                    ["span", "count", "total (s)"],
                    [[name, count, round(total, 4)]
                     for name, (count, total) in sorted(summary.items())],
                    title=f"trace span summary ({args.trace}, "
                          f"{len(payload['traceEvents'])} events)"))
    if args.series is not None:
        trends = _series_trends(load_json(args.series))
        if as_json:
            document["series"] = trends
        else:
            from repro.viz import sparkline

            rows = []
            for key, tr in trends["counters"].items():
                rows.append([key, tr["first"], tr["last"],
                             round(tr["delta"], 4),
                             sparkline(tr["deltas"], width=24)
                             if tr["deltas"] else ""])
            for key, tr in trends["gauges"].items():
                rows.append([key, round(tr["first"], 4),
                             round(tr["last"], 4), "-",
                             sparkline(tr["values"], width=24)
                             if tr["values"] else ""])
            print(format_table(
                ["metric", "first", "last", "delta",
                 "trend (deltas/values)"],
                rows,
                title=f"time-series trends ({args.series}, "
                      f"{trends['samples']} samples over "
                      f"{trends['span_s']:g} sim-s)"))
            print()
    if as_json:
        print(json.dumps(document, indent=2, sort_keys=True))
    return status


def _cmd_model(args: argparse.Namespace) -> int:
    params = ModelParams(
        work=args.hours * HOURS,
        delta=args.delta,
        sockets_per_replica=args.sockets,
        hard_mtbf_socket=args.mtbf_years * YEARS,
        sdc_fit_socket=args.fit,
    )
    rows = []
    for scheme in ResilienceScheme:
        tau = optimal_tau(params, scheme)
        sol = solve_scheme(params, scheme, tau)
        rows.append([
            str(scheme), round(tau, 1), round(sol.total_time / HOURS, 3),
            round(sol.utilization, 4),
            f"{undetected_sdc_probability(params, scheme, tau):.3e}",
        ])
    print(format_table(
        ["scheme", "tau_opt (s)", "total time (h)", "utilization",
         "P(undetected SDC)"],
        rows,
        title=(f"Section-5 model: {args.sockets} sockets/replica, "
               f"delta={args.delta}s, {args.fit} FIT/socket, "
               f"M_H={args.mtbf_years}y/socket, {args.hours}h job")))
    if args.tiers:
        from repro.model.multilevel import plan_tier_intervals
        from repro.storage.tiers import default_tiers

        nbytes, nshards = 64 * 1024 * 1024, 8
        plans = plan_tier_intervals(default_tiers(), nbytes, nshards)
        print()
        print(format_table(
            ["level", "tier", "protocol", "delta (s)", "assumed MTBF (s)",
             "interval (s)", "overhead"],
            [[p.level, p.name, p.protocol, round(p.delta, 4), p.mtbf,
              round(p.interval, 1), f"{p.overhead:.2%}"] for p in plans],
            title=f"durable-tier plan ({nbytes >> 20} MiB generation, "
                  f"{nshards} shards)"))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    apps = tuple(args.apps) if args.apps else MINIAPP_NAMES
    if args.name == "fig6":
        if args.plot:
            from repro.viz import plot_fig6_heatmap

            for scheme in ("default", "column", "mixed"):
                print(plot_fig6_heatmap(scheme=scheme))
                print()
            return 0
        rows = fig6_data()
        print(format_table(
            ["mapping", "max msgs/link", "buddy hops", "profile"],
            [[r.mapping, r.max_link_load, r.buddy_hops_max,
              str(list(r.plane_profile))] for r in rows],
            title="Figure 6"))
    elif args.name == "fig7":
        from repro.model.surfaces import fig7_curves

        points = fig7_curves()
        if args.plot:
            from repro.viz import plot_fig7_utilization

            for delta in (15.0, 180.0):
                print(plot_fig7_utilization(points, delta))
                print()
            return 0
        print(format_table(
            ["sockets/replica", "delta(s)", "scheme", "tau_opt(s)",
             "utilization", "P(undetected SDC)"],
            [[pt.sockets_per_replica, pt.delta, str(pt.scheme),
              round(pt.tau_opt, 1), round(pt.utilization, 4),
              f"{pt.undetected_sdc_probability:.3e}"] for pt in points],
            title="Figure 7"))
    elif args.name == "fig8":
        rows = fig8_data(apps=apps)
        if args.plot:
            from repro.viz import plot_fig8_bars

            for app in apps:
                print(plot_fig8_bars(rows, app, 65536))
                print()
            return 0
        print(format_table(
            ["app", "cores/replica", "method", "local", "transfer",
             "compare", "total"],
            [[r.app, r.cores_per_replica, r.method, round(r.local, 4),
              round(r.transfer, 4), round(r.compare, 4), round(r.total, 4)]
             for r in rows],
            title="Figure 8: single checkpoint overhead (s)"))
    elif args.name in ("fig9", "fig11"):
        apps9 = tuple(args.apps) if args.apps else ("jacobi3d-charm", "leanmd")
        rows = fig9_fig11_data(apps=apps9)
        attr = ("checkpoint_overhead_pct" if args.name == "fig9"
                else "overall_overhead_pct")
        print(format_table(
            ["app", "sockets/replica", "scheme", "variant", "tau_opt (s)",
             "overhead %"],
            [[r.app, r.sockets_per_replica, r.scheme, r.variant,
              round(r.tau_opt, 1), round(getattr(r, attr), 3)]
             for r in rows],
            title=f"Figure {args.name[3:]}: overhead at optimal period"))
    elif args.name == "fig10":
        rows = fig10_data(apps=apps)
        if args.plot:
            from repro.viz import plot_fig10_bars

            for app in apps:
                print(plot_fig10_bars(rows, app, 65536))
                print()
            return 0
        print(format_table(
            ["app", "cores/replica", "variant", "transfer", "reconstruction",
             "total"],
            [[r.app, r.cores_per_replica, r.variant, round(r.transfer, 4),
              round(r.reconstruction, 4), round(r.total, 4)] for r in rows],
            title="Figure 10: single restart overhead (s)"))
    else:  # fig12
        result = fig12_data(nodes_per_replica=args.nodes,
                            horizon=args.horizon, failures=args.failures,
                            seed=args.seed)
        if args.plot:
            from repro.viz import plot_fig12_intervals

            print(plot_fig12_intervals(result))
            return 0
        r = result.report
        print(format_table(
            ["metric", "value"],
            [["failures detected", r.hard_detected],
             ["checkpoints", r.checkpoints_completed],
             ["mean gap, first fifth (s)", round(result.early_mean_interval, 2)],
             ["mean gap, last fifth (s)", round(result.late_mean_interval, 2)]],
            title="Figure 12: adaptivity"))
        print(result.ascii_timeline)
    return 0


def _cmd_table2() -> int:
    from repro.apps.registry import make_app
    from repro.pup import pack

    rows = []
    for name in MINIAPP_NAMES:
        d = descriptor(name)
        app = make_app(name, 2, scale=1e-4, seed=0)
        measured = sum(pack(app.shard(r)).nbytes for r in range(2))
        rows.append([name, d.table2_configuration, d.memory_pressure,
                     d.declared_bytes_per_core, measured])
    print(format_table(
        ["mini-app", "config (per core)", "pressure", "declared bytes/core",
         "measured bytes (scaled)"],
        rows, title="Table 2"))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.harness.campaign import run_campaign

    store = _store_for(args)
    progress = _progress_for(args, args.seeds, "campaign")
    result = run_campaign(
        args.app,
        seeds=range(args.seed_start, args.seed_start + args.seeds),
        workers=args.workers,
        cache=store,
        resume=not args.no_resume,
        progress=progress,
        nodes_per_replica=args.nodes,
        scheme=args.scheme,
        mapping=args.mapping,
        use_checksum=args.checksum,
        total_iterations=args.iterations,
        checkpoint_interval=args.interval,
        hard_mtbf=args.hard_mtbf,
        sdc_mtbf=args.sdc_mtbf,
        horizon=args.horizon,
        spare_nodes=args.spare_nodes,
    )
    s = result.summary
    rows = [
        ["runs", s.runs],
        ["completed / correct", f"{s.completed_runs} / {s.correct_runs}"],
        ["aborted", s.aborted_runs],
        ["mean overhead", round(s.mean_overhead, 6)],
        ["std overhead", round(s.std_overhead, 6)],
        ["mean checkpoints", round(s.mean_checkpoints, 3)],
        ["mean rework iterations", round(s.mean_rework_iterations, 3)],
        ["hard faults / SDC", f"{s.total_hard_faults} / {s.total_sdc}"],
        ["recoveries", str(s.total_recoveries)],
        ["cache hits / misses",
         f"{result.cache_hits} / {result.cache_misses}"],
    ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"campaign: {args.app}, {args.scheme} scheme, "
              f"seeds {args.seed_start}..{args.seed_start + args.seeds - 1}"))
    if store is not None:
        print(f"\nresult store: {store.root} "
              f"({'resumed' if not args.no_resume else 'recomputed'}; "
              f"`repro store ls` to inspect)")
    return 0 if s.completed_runs == s.runs else 1


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import ResultStore, default_cache_dir

    store = ResultStore(args.cache_dir or default_cache_dir())
    if args.store_command == "ls":
        entries = store.entries()
        if not entries:
            print(f"store {store.root}: empty")
            return 0
        print(format_table(
            ["key", "kind", "app", "seed", "bytes", "stale"],
            [[e.key[:12], e.kind, e.app,
              e.seed if e.seed is not None else "-", e.nbytes,
              "yes" if e.stale else ""] for e in entries],
            title=f"store {store.root}: {len(entries)} cells"))
        return 0
    if args.store_command == "gc":
        result = store.gc(wipe=args.wipe)
        tmp = (f", swept {result.tmp_removed} orphaned temp file(s)"
               if result.tmp_removed else "")
        print(f"store {store.root}: removed {result.removed} cell(s) "
              f"({result.bytes_freed} bytes), kept {result.kept}{tmp}")
        return 0
    problems = store.verify()
    if problems:
        print(f"store {store.root}: {len(problems)} problem(s)",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"store {store.root}: ok ({len(store.entries())} cells verified)")
    return 0


def _cmd_golden(args: argparse.Namespace) -> int:
    from repro.store.golden import check_golden, write_golden

    if args.action == "update":
        for path in write_golden(args.dir):
            print(f"wrote {path}")
        return 0
    problems = check_golden(args.dir)
    if problems:
        print(f"golden digest check FAILED ({args.dir}/):", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        print("intentional change? re-run `python -m repro golden update` "
              "and commit the diff", file=sys.stderr)
        return 1
    print(f"golden digests match ({args.dir}/)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import (
        ChaosSchedule,
        run_chaos_campaign,
        run_schedule,
    )

    if args.replay is not None:
        import json

        from repro.obs import is_flight_artifact

        with open(args.replay, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if is_flight_artifact(payload):
            # A flight-recorder dump embeds the replayable schedule: replay
            # the exact execution whose event tail the artifact shows.
            if not payload.get("schedule"):
                print(f"{args.replay}: flight artifact has no embedded "
                      f"schedule", file=sys.stderr)
                return 2
            schedule = ChaosSchedule.from_dict(payload["schedule"])
            print(f"flight artifact: replaying embedded schedule "
                  f"(seed {schedule.seed}, reason {payload.get('reason')!r}, "
                  f"{len(payload.get('events', []))} tail events)")
        else:
            schedule = ChaosSchedule.from_dict(payload)
        outcome = run_schedule(schedule)
        rows = [
            ["seed", outcome.seed],
            ["verdict", "ok" if outcome.ok else
             f"FAIL [{outcome.invariant}]"],
            ["completed", outcome.completed],
            ["invariant checks", outcome.checks_performed],
            ["fingerprint", outcome.fingerprint[:16]],
        ]
        if outcome.violation:
            rows.append(["violation", outcome.violation])
        if outcome.aborted_reason:
            rows.append(["aborted", outcome.aborted_reason])
        print(format_table(["metric", "value"], rows,
                           title=f"chaos replay: {args.replay}"))
        return 0 if outcome.ok else 1

    progress = _progress_for(args, args.seeds, "chaos")
    result = run_chaos_campaign(
        args.seeds, workers=args.workers, app=args.app,
        shrink=not args.no_shrink, cache=_store_for(args, default_off=True),
        resume=not args.no_resume, flight_dir=args.flight_dir,
        progress=progress)
    print(format_table(
        ["scheme / mode", "schedules"],
        [[cell, count] for cell, count in sorted(result.coverage().items())],
        title=f"chaos campaign: {args.seeds} schedules, "
              f"{result.total_checks} invariant checks, "
              f"{result.cache_hits} cached"))
    if result.ok:
        print(f"\nall {len(result.outcomes)} schedules green")
        return 0
    print(f"\n{len(result.failures)} failing schedule(s):")
    shrunk_by_seed = {s.schedule.seed: s for s in result.shrunk}
    for failure in result.failures:
        line = (f"  seed {failure.seed}: [{failure.invariant}] "
                f"{failure.violation}")
        shrink = shrunk_by_seed.get(failure.seed)
        if shrink is not None:
            line += (f"  (minimized {shrink.original_events} -> "
                     f"{shrink.minimized_events} faults)")
        print(line)
        if failure.flight_path:
            print(f"    flight recording: {failure.flight_path} "
                  f"(`repro chaos --replay` accepts it)")
        if args.out is not None:
            import os

            os.makedirs(args.out, exist_ok=True)
            plan = (shrink.schedule if shrink is not None
                    else ChaosSchedule.from_dict(failure.schedule))
            path = os.path.join(args.out, f"repro-seed{failure.seed}.json")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(plan.to_json())
            print(f"    repro plan written to {path}")
    return 1


def _submit_config(args: argparse.Namespace) -> dict:
    """``repro submit`` flags -> the experiment kwargs the cell is keyed by.

    Deliberately the same shape ``repro campaign`` passes to
    :func:`~repro.store.keys.experiment_cell_material`, so a sweep submitted
    to the server shares cache cells with the same sweep run locally.
    """
    return {
        "nodes_per_replica": args.nodes,
        "scheme": args.scheme,
        "mapping": args.mapping,
        "use_checksum": args.checksum,
        "total_iterations": args.iterations,
        "checkpoint_interval": args.interval,
        "hard_mtbf": args.hard_mtbf,
        "sdc_mtbf": args.sdc_mtbf,
        "horizon": args.horizon,
        "spare_nodes": args.spare_nodes,
    }


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import CampaignServer, ServeState, serve_forever
    from repro.serve.state import DEFAULT_QUEUE_LIMIT, DEFAULT_TENANT_QUOTA
    from repro.store import ResultStore, default_cache_dir

    store = ResultStore(args.cache_dir or default_cache_dir())
    state = ServeState(
        store,
        queue_limit=(args.queue_limit if args.queue_limit is not None
                     else DEFAULT_QUEUE_LIMIT),
        tenant_quota=(args.tenant_quota if args.tenant_quota is not None
                      else DEFAULT_TENANT_QUOTA),
    )
    server = CampaignServer(state, host=args.host, port=args.port,
                            workers=args.workers)
    return serve_forever(server)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient, ServeError

    with ServeClient(args.server) as client:
        try:
            job = client.submit(
                tenant=args.tenant, app=args.app,
                seed_start=args.seed_start, count=args.seeds,
                config=_submit_config(args), priority=args.priority)
        except ServeError as err:
            if err.status == 429:
                print(f"server busy: {err.payload.get('error')} "
                      f"(retry after {err.retry_after:g}s)", file=sys.stderr)
                return 75  # EX_TEMPFAIL
            raise
        print(f"{job['job_id']}: {job['status']} "
              f"({job['cached_at_submit']} cached, "
              f"{job['attached_at_submit']} shared in flight, "
              f"{job['queued_at_submit']} queued)")
        if not args.wait:
            return 0
        status = client.wait(job["job_id"], timeout=args.timeout)
        if status["status"] != "done":
            print(f"{job['job_id']}: {status['status']}"
                  + (f" ({status['error']})" if status.get("error") else ""),
                  file=sys.stderr)
            return 1
        result = client.result(job["job_id"])
        summary = result["summary"]
        print(format_table(
            ["metric", "value"],
            [[k, summary[k]] for k in sorted(summary)],
            title=f"{job['job_id']}: {args.app}, "
                  f"seeds {args.seed_start}.."
                  f"{args.seed_start + args.seeds - 1}"))
        print(f"summary digest: {result['summary_digest']}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    with ServeClient(args.server) as client:
        jobs = client.jobs(tenant=args.tenant)
    if args.json:
        import json

        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print(f"server {args.server}: no jobs")
        return 0
    print(format_table(
        ["job", "tenant", "app", "status", "cells", "done", "cached",
         "saved"],
        [[j["job_id"], j["tenant"], j["app"], j["status"], j["cells_total"],
          j["cells_done"], j["cached_at_submit"], j["saved_on_resume"]]
         for j in jobs],
        title=f"server {args.server}: {len(jobs)} job(s)"))
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    with ServeClient(args.server) as client:
        job = client.cancel(args.job_id)
    print(f"{job['job_id']}: {job['status']}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "apps":
        return _cmd_apps()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "model":
        return _cmd_model(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "table2":
        return _cmd_table2()
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "golden":
        return _cmd_golden(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "cancel":
        return _cmd_cancel(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
