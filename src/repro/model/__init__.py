"""Analytical performance/reliability model of the paper's Section 5.

Covers Table 1's parameters, Daly's optimum checkpoint period, the
T_S/T_M/T_W equations with the multi-failure probability P, utilization,
undetected-SDC probability, and the Figure 1 / Figure 7 data surfaces.
"""

from repro.model.alternatives import (
    DiskCRSolution,
    TMRSolution,
    dual_vs_tmr_utilization,
    sdc_crossover_fit,
    solve_disk_checkpoint_restart,
    solve_tmr,
)
from repro.model.daly import daly_tau, young_tau
from repro.model.params import ModelParams, paper_fig7_params
from repro.model.schemes import (
    ResilienceScheme,
    SchemeSolution,
    best_solution,
    compare_schemes,
    optimal_tau,
    prob_multi_failure,
    solve_scheme,
)
from repro.model.surfaces import (
    FIG1_FIT,
    FIG1_SOCKETS,
    FIG7_DELTAS,
    FIG7_SOCKETS_PER_REPLICA,
    Fig1Surfaces,
    Fig7Point,
    SurfacePoint,
    fig1_surfaces,
    fig7_curves,
    fig7_series,
)
from repro.model.vulnerability import (
    acr_utilization,
    acr_vulnerability,
    checkpoint_only_utilization,
    no_ft_expected_time,
    no_ft_utilization,
    undetected_sdc_probability,
    unprotected_vulnerability,
)

__all__ = [
    "DiskCRSolution",
    "TMRSolution",
    "dual_vs_tmr_utilization",
    "sdc_crossover_fit",
    "solve_disk_checkpoint_restart",
    "solve_tmr",
    "daly_tau",
    "young_tau",
    "ModelParams",
    "paper_fig7_params",
    "ResilienceScheme",
    "SchemeSolution",
    "best_solution",
    "compare_schemes",
    "optimal_tau",
    "prob_multi_failure",
    "solve_scheme",
    "FIG1_FIT",
    "FIG1_SOCKETS",
    "FIG7_DELTAS",
    "FIG7_SOCKETS_PER_REPLICA",
    "Fig1Surfaces",
    "Fig7Point",
    "SurfacePoint",
    "fig1_surfaces",
    "fig7_curves",
    "fig7_series",
    "acr_utilization",
    "acr_vulnerability",
    "checkpoint_only_utilization",
    "no_ft_expected_time",
    "no_ft_utilization",
    "undetected_sdc_probability",
    "unprotected_vulnerability",
]
