"""Models of the design alternatives ACR argues against (paper §3 and §1).

Two comparators the paper discusses but does not adopt:

* **Triple modular redundancy (TMR)** — §3.4: "the trade off to consider
  between dual redundancy and TMR is between re-executing the work or
  spending another 33% of system resources on redundancy."  With three
  replicas a majority vote *corrects* a single corruption in place, so SDC
  causes no rollback; the price is capping utilization at 1/3 instead of 1/2.

* **Disk-based checkpoint/restart** — §1: "the common approach currently is
  to tolerate intermittent faults by periodically checkpointing the state of
  the application to disk ... If the data size is large, the expense of
  checkpointing to disk may be prohibitive."  All nodes share the parallel
  filesystem, so δ grows linearly with the job's data; SDC is invisible.

Both reuse the Section-5 machinery so crossovers against ACR's dual-redundancy
schemes can be located analytically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.daly import daly_tau
from repro.model.params import ModelParams
from repro.model.schemes import ResilienceScheme, best_solution
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class TMRSolution:
    """Solved triple-modular-redundancy model at the optimal period."""

    tau: float
    total_time: float
    utilization: float     # of the whole machine: (W/T) / 3
    vulnerability: float   # P(>=2 replicas corrupted in one compare window)


def solve_tmr(params: ModelParams) -> TMRSolution:
    """Total time and utilization under TMR with majority voting.

    Checkpoints still happen (hard errors need a recovery point), but a
    single SDC is outvoted and corrected without rollback, so the SDC rework
    term disappears.  Hard errors recover like ACR's medium scheme (a healthy
    majority ships fresh state): rework δ per failure.  Sockets triple.
    """
    total_sockets = 3 * params.sockets_per_replica
    mh = params.hard_mtbf_socket / total_sockets
    tau = daly_tau(params.delta, mh)
    ckpt = max(params.work / tau - 1.0, 0.0) * params.delta
    coeff = (params.restart_hard + params.delta) / mh
    if coeff >= 1.0:
        return TMRSolution(tau=tau, total_time=math.inf, utilization=0.0,
                           vulnerability=1.0)
    total = (params.work + ckpt) / (1.0 - coeff)
    utilization = (params.work / total) / 3.0

    # An undetectable corruption needs >= 2 replicas corrupted between two
    # votes; per window of length (tau + delta) each replica is corrupted
    # with probability p = 1 - exp(-(tau+delta)/Ms_replica).
    ms_replica = params.sdc_mtbf_socket / params.sockets_per_replica
    p = 1.0 - math.exp(-(tau + params.delta) / ms_replica)
    per_window = 3.0 * p * p * (1.0 - p) + p ** 3
    windows = total / (tau + params.delta)
    vulnerability = 1.0 - (1.0 - per_window) ** windows
    return TMRSolution(tau=tau, total_time=total, utilization=utilization,
                       vulnerability=vulnerability)


def dual_vs_tmr_utilization(params: ModelParams) -> tuple[float, float]:
    """Machine utilization of ACR's dual redundancy (strong) vs TMR."""
    dual = best_solution(params, ResilienceScheme.STRONG).utilization
    tmr = solve_tmr(params).utilization
    return dual, tmr


@dataclass(frozen=True)
class DiskCRSolution:
    """Solved plain (non-replicated) disk checkpoint/restart model."""

    delta_disk: float
    tau: float
    total_time: float
    utilization: float
    vulnerability: float


def solve_disk_checkpoint_restart(
    params: ModelParams,
    *,
    bytes_per_socket: float,
    pfs_bandwidth: float,
) -> DiskCRSolution:
    """The §1 baseline: one job image, checkpoints streamed to a shared PFS.

    δ_disk = (sockets × bytes/socket) / PFS bandwidth — linear in job size,
    which is exactly why the approach "may not be feasible" at scale.  SDC is
    never detected, so the vulnerability matches the unprotected case.
    """
    if bytes_per_socket <= 0 or pfs_bandwidth <= 0:
        raise ConfigurationError("bytes_per_socket and pfs_bandwidth must be > 0")
    sockets = params.sockets_per_replica  # single image: no replicas
    delta_disk = sockets * bytes_per_socket / pfs_bandwidth
    mh = params.hard_mtbf_socket / sockets
    tau = daly_tau(delta_disk, mh)
    ckpt = max(params.work / tau - 1.0, 0.0) * delta_disk
    coeff = (params.restart_hard + (tau + delta_disk) / 2.0) / mh
    if coeff >= 1.0:
        return DiskCRSolution(delta_disk=delta_disk, tau=tau,
                              total_time=math.inf, utilization=0.0,
                              vulnerability=1.0)
    total = (params.work + ckpt) / (1.0 - coeff)
    utilization = params.work / total
    rate = params.sdc_fit_socket * 1e-9 * sockets / 3600.0
    vulnerability = 1.0 - math.exp(-rate * params.work)
    return DiskCRSolution(delta_disk=delta_disk, tau=tau, total_time=total,
                          utilization=utilization, vulnerability=vulnerability)


def sdc_crossover_fit(params: ModelParams, *, lo: float = 1.0,
                      hi: float = 1e7) -> float | None:
    """Find the per-socket SDC rate (FIT) where TMR overtakes dual redundancy.

    Below the crossover, dual redundancy's occasional rollback is cheaper
    than TMR's extra third of the machine; above it, re-executing work on
    every corruption costs more than the standing 33% tax.  Returns None if
    TMR never wins inside the bracket.
    """
    def gap(fit: float) -> float:
        p = params.with_overrides(sdc_fit_socket=fit)
        dual, tmr = dual_vs_tmr_utilization(p)
        return dual - tmr

    if gap(lo) <= 0:
        return lo
    if gap(hi) > 0:
        return None
    for _ in range(80):
        mid = math.sqrt(lo * hi)
        if gap(mid) > 0:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)
