"""Section-5-style planning for the durable checkpoint tiers.

The paper's §5 model optimizes one checkpoint period against one failure
rate.  With durable tiers behind the in-memory double checkpoint the same
Daly machinery applies per level: each tier persists at the optimum period
for *its* cost (the tier's group-write time for the payload) against the
failure class it protects from (node loss for level 2, partition loss for
level 3) — the CRAFT / Montezanti multi-level structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.daly import daly_tau
from repro.storage.tiers import TierSpec


@dataclass(frozen=True)
class TierPlan:
    """One tier's planned persist schedule for a given payload."""

    level: int
    name: str
    protocol: str
    #: Simulated group-write time for the payload (the tier's delta).
    delta: float
    #: Assumed MTBF of the failure class the tier absorbs.
    mtbf: float
    #: Chosen persist period (fixed if the spec pins one, else Daly).
    interval: float
    #: Steady-state overhead fraction delta / (interval + delta).
    overhead: float


def tier_interval(spec: TierSpec, nbytes: int, nshards: int) -> float:
    """The persist period for one tier: its pinned interval, or the Daly
    optimum for its write cost at its assumed MTBF."""
    if spec.interval is not None:
        return spec.interval
    delta = spec.write_time(nbytes, nshards)
    return daly_tau(max(delta, 1e-6), spec.mtbf_assumed)


def plan_tier_intervals(tiers, nbytes: int,
                        nshards: int) -> tuple[TierPlan, ...]:
    """Per-level persist plan for a checkpoint payload of ``nbytes`` split
    across ``nshards`` shard files."""
    plans = []
    for spec in sorted(tiers, key=lambda s: s.level):
        delta = spec.write_time(nbytes, nshards)
        interval = tier_interval(spec, nbytes, nshards)
        plans.append(TierPlan(
            level=spec.level,
            name=spec.name,
            protocol=str(spec.protocol),
            delta=delta,
            mtbf=spec.mtbf_assumed,
            interval=interval,
            overhead=delta / (interval + delta) if interval > 0 else 1.0,
        ))
    return tuple(plans)
