"""Data generators for the model figures (Fig. 1 surfaces, Fig. 7 curves).

These return plain numpy arrays / dictionaries so the benchmark harness can
print the same rows the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.params import ModelParams
from repro.model.schemes import ResilienceScheme, best_solution, optimal_tau
from repro.model.vulnerability import (
    acr_utilization,
    acr_vulnerability,
    checkpoint_only_utilization,
    no_ft_utilization,
    undetected_sdc_probability,
    unprotected_vulnerability,
)
from repro.util.units import HOURS

#: Fig. 1 axes: sockets 4K..1M, SDC rate 1..10000 FIT per socket, 120 h job.
FIG1_SOCKETS = (4096, 16384, 65536, 262144, 1048576)
FIG1_FIT = (1.0, 100.0, 10000.0)
FIG1_JOB_HOURS = 120.0

#: Fig. 7 axes: 1K..256K sockets per replica, δ ∈ {15 s, 180 s}, 24 h job.
FIG7_SOCKETS_PER_REPLICA = (1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144)
FIG7_DELTAS = (15.0, 180.0)
FIG7_JOB_HOURS = 24.0


@dataclass
class SurfacePoint:
    """One (sockets, FIT) grid cell of a Figure 1 surface."""

    sockets: int
    sdc_fit: float
    utilization: float
    vulnerability: float


@dataclass
class Fig1Surfaces:
    """The three sub-figures of Figure 1."""

    no_ft: list[SurfacePoint] = field(default_factory=list)
    checkpoint_only: list[SurfacePoint] = field(default_factory=list)
    acr: list[SurfacePoint] = field(default_factory=list)


def _fig1_params(sockets: int, fit: float, delta: float) -> ModelParams:
    # Fig. 1 counts *total* sockets; under ACR half of them form each replica.
    return ModelParams(
        work=FIG1_JOB_HOURS * HOURS,
        delta=delta,
        sockets_per_replica=max(sockets // 2, 1),
        sdc_fit_socket=fit,
    )


def fig1_surfaces(
    sockets_axis=FIG1_SOCKETS,
    fit_axis=FIG1_FIT,
    *,
    delta: float = 60.0,
) -> Fig1Surfaces:
    """Utilization and vulnerability for the three protection alternatives."""
    out = Fig1Surfaces()
    for sockets in sockets_axis:
        for fit in fit_axis:
            p = _fig1_params(sockets, fit, delta)
            plain = p.with_overrides(sockets_per_replica=sockets, replicated=False)
            vuln_plain = unprotected_vulnerability(plain)
            out.no_ft.append(
                SurfacePoint(sockets, fit, no_ft_utilization(plain), vuln_plain)
            )
            out.checkpoint_only.append(
                SurfacePoint(sockets, fit, checkpoint_only_utilization(plain), vuln_plain)
            )
            out.acr.append(
                SurfacePoint(
                    sockets, fit,
                    acr_utilization(p, ResilienceScheme.STRONG),
                    acr_vulnerability(p, ResilienceScheme.STRONG),
                )
            )
    return out


@dataclass
class Fig7Point:
    """One x-axis point of Figure 7(a) or 7(b)."""

    sockets_per_replica: int
    delta: float
    scheme: ResilienceScheme
    tau_opt: float
    utilization: float
    undetected_sdc_probability: float


def fig7_curves(
    sockets_axis=FIG7_SOCKETS_PER_REPLICA,
    deltas=FIG7_DELTAS,
    *,
    job_hours: float = FIG7_JOB_HOURS,
    sdc_fit_socket: float = 100.0,
) -> list[Fig7Point]:
    """Utilization (7a) and undetected-SDC probability (7b) for all schemes."""
    points: list[Fig7Point] = []
    for delta in deltas:
        for sockets in sockets_axis:
            params = ModelParams(
                work=job_hours * HOURS,
                delta=delta,
                sockets_per_replica=int(sockets),
                sdc_fit_socket=sdc_fit_socket,
            )
            for scheme in ResilienceScheme:
                tau = optimal_tau(params, scheme)
                sol = best_solution(params, scheme)
                points.append(
                    Fig7Point(
                        sockets_per_replica=int(sockets),
                        delta=delta,
                        scheme=scheme,
                        tau_opt=tau,
                        utilization=sol.utilization,
                        undetected_sdc_probability=undetected_sdc_probability(
                            params, scheme, tau
                        ),
                    )
                )
    return points


def fig7_series(points: list[Fig7Point], scheme: ResilienceScheme, delta: float,
                attr: str = "utilization") -> tuple[np.ndarray, np.ndarray]:
    """Extract one (sockets, value) curve from :func:`fig7_curves` output."""
    xs, ys = [], []
    for p in points:
        if p.scheme is scheme and p.delta == delta:
            xs.append(p.sockets_per_replica)
            ys.append(getattr(p, attr))
    order = np.argsort(xs)
    return np.asarray(xs)[order], np.asarray(ys, dtype=float)[order]
