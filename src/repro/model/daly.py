"""Optimum checkpoint-period estimates (Daly 2006, paper reference [7]).

The paper's adaptive mode and its Section-5 model both need "how often to
checkpoint".  For Poisson failures, Young/Daly give closed forms; the
higher-order Daly estimate stays accurate when the period is not small
relative to the MTBF, which matters at the 256K-socket end of Figure 7.
"""

from __future__ import annotations

import math

from repro.util.errors import ConfigurationError


def young_tau(delta: float, mtbf: float) -> float:
    """Young's first-order optimum period: sqrt(2 δ M)."""
    _validate(delta, mtbf)
    if math.isinf(mtbf):
        return float("inf")
    return math.sqrt(2.0 * delta * mtbf)


def daly_tau(delta: float, mtbf: float) -> float:
    """Daly's higher-order optimum compute-time between checkpoints.

    For δ < 2M:  τ = sqrt(2δM) · [1 + (1/3)·sqrt(δ/2M) + (1/9)·(δ/2M)] − δ,
    otherwise τ = M (checkpointing constantly is already hopeless).
    Returns the *compute* segment length (excluding δ itself), clamped to a
    small positive floor.
    """
    _validate(delta, mtbf)
    if math.isinf(mtbf):
        return float("inf")
    if delta >= 2.0 * mtbf:
        return mtbf
    x = delta / (2.0 * mtbf)
    tau = math.sqrt(2.0 * delta * mtbf) * (1.0 + math.sqrt(x) / 3.0 + x / 9.0) - delta
    return max(tau, delta * 1e-3, 1e-9)


def _validate(delta: float, mtbf: float) -> None:
    if delta < 0:
        raise ConfigurationError(f"delta must be non-negative, got {delta}")
    if mtbf <= 0:
        raise ConfigurationError(f"mtbf must be positive, got {mtbf}")
