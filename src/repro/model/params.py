"""Parameters of the Section-5 performance/reliability model (Table 1).

The model describes a replicated machine: ``S`` sockets per replica, per-socket
hard-error MTBF ``M_H`` (the paper uses 50 years, the Jaguar-equivalent), and a
per-socket SDC rate in FIT.  System-level rates scale linearly with the number
of sockets exposed to each failure type:

* hard errors can strike any socket in the job (both replicas), so the system
  hard-error MTBF divides by ``2 S``;
* a *detected* SDC anywhere in either replica rolls both back, so the detected
  SDC MTBF also divides by ``2 S``;
* an *undetected* SDC only matters in the healthy replica (the crashed
  replica's state is discarded on recovery), dividing by ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.errors import ConfigurationError
from repro.util.units import HOURS, YEARS, fit_to_mtbf_seconds


@dataclass(frozen=True)
class ModelParams:
    """Inputs of the analytical model (paper Table 1), in seconds."""

    #: W — total useful computation time of the job.
    work: float
    #: δ — time of one checkpoint (both replicas checkpoint simultaneously).
    delta: float
    #: S — number of sockets per replica.
    sockets_per_replica: int
    #: Per-socket hard-error MTBF (paper: 50 years).
    hard_mtbf_socket: float = 50 * YEARS
    #: Per-socket SDC rate in FIT (paper: 100 or 10,000).
    sdc_fit_socket: float = 100.0
    #: R_H — hard-error restart time.
    restart_hard: float = 30.0
    #: R_S — SDC restart time (local rollback, no transfer: cheaper).
    restart_sdc: float = 10.0
    #: Whether the job runs replicated (ACR) or plain (Fig. 1a/1b baselines).
    replicated: bool = True

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ConfigurationError(f"work must be positive, got {self.work}")
        if self.delta < 0:
            raise ConfigurationError(f"delta must be non-negative, got {self.delta}")
        if self.sockets_per_replica < 1:
            raise ConfigurationError("sockets_per_replica must be >= 1")
        if self.hard_mtbf_socket <= 0:
            raise ConfigurationError("hard_mtbf_socket must be positive")
        if self.sdc_fit_socket < 0:
            raise ConfigurationError("sdc_fit_socket must be non-negative")

    # -- derived system-level rates ---------------------------------------------
    @property
    def total_sockets(self) -> int:
        return (2 if self.replicated else 1) * self.sockets_per_replica

    @property
    def hard_mtbf_system(self) -> float:
        """M_H at system level: any socket of the job can fail-stop."""
        return self.hard_mtbf_socket / self.total_sockets

    @property
    def sdc_mtbf_socket(self) -> float:
        return fit_to_mtbf_seconds(self.sdc_fit_socket)

    @property
    def sdc_mtbf_system(self) -> float:
        """M_S for *detected* SDCs: corruption in either replica triggers a
        rollback of both once the checkpoints are compared."""
        return self.sdc_mtbf_socket / self.total_sockets

    @property
    def sdc_mtbf_replica(self) -> float:
        """SDC MTBF of one replica — the exposure of *undetected* corruption
        during unprotected windows (only the surviving replica's state lives on).
        """
        return self.sdc_mtbf_socket / self.sockets_per_replica

    @property
    def sdc_rate_per_hour_socket(self) -> float:
        return self.sdc_fit_socket * 1e-9

    def with_overrides(self, **kwargs) -> "ModelParams":
        return replace(self, **kwargs)


def paper_fig7_params(
    sockets_per_replica: int,
    delta: float,
    *,
    job_hours: float = 24.0,
    sdc_fit_socket: float = 100.0,
) -> ModelParams:
    """The configuration of Figure 7: M_H = 50 years/socket, 100 FIT/socket."""
    return ModelParams(
        work=job_hours * HOURS,
        delta=delta,
        sockets_per_replica=int(sockets_per_replica),
        hard_mtbf_socket=50 * YEARS,
        sdc_fit_socket=sdc_fit_socket,
    )
