"""Total-execution-time equations for the three resilience schemes (§5).

The paper models the total time as

    T = T_Solve + T_Checkpoint + T_Restart + T_Rework

with Δ = (W/τ − 1)·δ and R = (T/M_H)·R_H + (T/M_S)·R_S, and per scheme

    T_S = W + Δ + R + (T_S/M_H)·(τ+δ)/2     + (T_S/M_S)·(τ+δ)
    T_M = W + Δ + R + (T_M/M_H)·δ           + (T_M/M_S)·(τ+δ)
    T_W = W + Δ + R + (T_S/M_H)·(τ+δ)/2·P   + (T_W/M_S)·(τ+δ)

where P = 1 − exp(−(τ+δ)/M_H)·(1 + (τ+δ)/M_H) is the (loose upper bound on
the) probability of more than one hard failure in a checkpoint period — the
weak scheme only pays hard-error rework when a second failure hits the healthy
replica before recovery completes.

Every equation is linear in its T, so each solves in closed form; T_W consumes
the already-solved T_S in its rework term, exactly as written in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from scipy.optimize import minimize_scalar

from repro.model.daly import daly_tau
from repro.model.params import ModelParams
from repro.util.errors import ConfigurationError


class ResilienceScheme(str, Enum):
    """The three recovery schemes of §2.3."""

    STRONG = "strong"
    MEDIUM = "medium"
    WEAK = "weak"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SchemeSolution:
    """Solved model outputs for one scheme at one checkpoint period."""

    scheme: ResilienceScheme
    tau: float
    total_time: float
    checkpoint_time: float
    restart_time: float
    rework_time: float
    solve_time: float

    @property
    def utilization(self) -> float:
        """Fraction of *machine* time doing useful work; replication halves it."""
        return 0.5 * self.solve_time / self.total_time

    @property
    def overhead_fraction(self) -> float:
        """Fault-tolerance overhead relative to the useful work (per replica)."""
        return self.total_time / self.solve_time - 1.0


def prob_multi_failure(params: ModelParams, tau: float) -> float:
    """P — probability of more than one hard failure within (τ+δ)."""
    x = (tau + params.delta) / params.hard_mtbf_system
    return 1.0 - math.exp(-x) * (1.0 + x)


def _checkpoint_total(params: ModelParams, tau: float) -> float:
    """Δ = (W/τ − 1)·δ, clamped to ≥ 0 for τ ≥ W (single trailing checkpoint)."""
    return max(params.work / tau - 1.0, 0.0) * params.delta


def solve_scheme(
    params: ModelParams,
    scheme: ResilienceScheme | str,
    tau: float,
) -> SchemeSolution:
    """Solve the paper's T_S / T_M / T_W equation at checkpoint period ``tau``."""
    scheme = ResilienceScheme(scheme)
    if tau <= 0:
        raise ConfigurationError(f"tau must be positive, got {tau}")
    w = params.work
    delta = params.delta
    mh = params.hard_mtbf_system
    ms = params.sdc_mtbf_system
    ckpt = _checkpoint_total(params, tau)

    # Per-unit-T coefficients shared by all schemes (restart + SDC rework).
    restart_coeff = params.restart_hard / mh + params.restart_sdc / ms
    sdc_rework_coeff = (tau + delta) / ms

    def _solve_linear(hard_rework_coeff: float, extra_const: float = 0.0) -> float:
        denom = 1.0 - (restart_coeff + sdc_rework_coeff + hard_rework_coeff)
        if denom <= 0:
            return float("inf")
        return (w + ckpt + extra_const) / denom

    if scheme is ResilienceScheme.STRONG:
        hard_rework_coeff = (tau + delta) / (2.0 * mh)
        total = _solve_linear(hard_rework_coeff)
        hard_rework = total * hard_rework_coeff if math.isfinite(total) else float("inf")
    elif scheme is ResilienceScheme.MEDIUM:
        hard_rework_coeff = delta / mh
        total = _solve_linear(hard_rework_coeff)
        hard_rework = total * hard_rework_coeff if math.isfinite(total) else float("inf")
    else:  # WEAK: rework term uses the strong solution scaled by P.
        ts = solve_scheme(params, ResilienceScheme.STRONG, tau).total_time
        p = prob_multi_failure(params, tau)
        extra = (ts / mh) * ((tau + delta) / 2.0) * p if math.isfinite(ts) else float("inf")
        if math.isinf(extra):
            total = float("inf")
            hard_rework = float("inf")
        else:
            total = _solve_linear(0.0, extra_const=extra)
            hard_rework = extra

    if math.isinf(total):
        return SchemeSolution(scheme, tau, float("inf"), ckpt, float("inf"),
                              float("inf"), w)
    restart = total * restart_coeff
    rework = hard_rework + total * sdc_rework_coeff
    return SchemeSolution(
        scheme=scheme,
        tau=tau,
        total_time=total,
        checkpoint_time=ckpt,
        restart_time=restart,
        rework_time=rework,
        solve_time=w,
    )


def optimal_tau(params: ModelParams, scheme: ResilienceScheme | str) -> float:
    """Numerically minimize total time over the checkpoint period.

    The search is bracketed around the Daly estimate for the dominant failure
    process (the smaller of the hard and detected-SDC MTBFs), which is within
    a couple of orders of magnitude of the optimum in every paper scenario.
    """
    scheme = ResilienceScheme(scheme)
    mtbf = min(params.hard_mtbf_system, params.sdc_mtbf_system)
    guess = daly_tau(params.delta, mtbf)
    if math.isinf(guess):
        return params.work
    lo = max(guess / 100.0, params.delta * 1e-2, 1e-3)
    # The upper end must always include "never checkpoint" (tau = W): with a
    # negligible tau-dependent rework term (e.g. medium with no SDC) the
    # optimum sits at the horizon, far beyond any Daly-based guess.
    hi = max(params.work, lo * 10.0)
    if hi <= lo:
        return max(min(guess, params.work), lo)

    def objective(log_tau: float) -> float:
        t = solve_scheme(params, scheme, math.exp(log_tau)).total_time
        return t if math.isfinite(t) else 1e30

    res = minimize_scalar(objective, bounds=(math.log(lo), math.log(hi)),
                          method="bounded", options={"xatol": 1e-4})
    return float(math.exp(res.x))


def best_solution(params: ModelParams, scheme: ResilienceScheme | str) -> SchemeSolution:
    """Solve a scheme at its optimal checkpoint period."""
    tau = optimal_tau(params, scheme)
    return solve_scheme(params, scheme, tau)


def compare_schemes(params: ModelParams) -> dict[ResilienceScheme, SchemeSolution]:
    """Best solution for all three schemes (the per-point content of Fig. 7a)."""
    return {s: best_solution(params, s) for s in ResilienceScheme}
