"""Registry of the paper's five mini-applications (six configurations).

Figure 8 evaluates six variants: Jacobi3D in both Charm++ and AMPI flavours,
HPCCG, LULESH, LeanMD, and miniMD.  ``make_app`` builds a replica instance by
name; ``MINIAPP_NAMES`` lists them in the paper's figure order.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.base import AppDescriptor, ReplicaApp
from repro.apps.hpccg import HPCCG, HPCCG_DESCRIPTOR
from repro.apps.jacobi3d import JACOBI_AMPI, JACOBI_CHARM, Jacobi3D
from repro.apps.leanmd import LEANMD_DESCRIPTOR, LeanMD
from repro.apps.lulesh import LULESH, LULESH_DESCRIPTOR
from repro.apps.minimd import MINIMD_DESCRIPTOR, MiniMD
from repro.apps.synthetic import SyntheticApp
from repro.util.errors import ConfigurationError

#: Figure-8 panel order: (a) Jacobi3D Charm++, (b) LULESH, (c) LeanMD,
#: (d) Jacobi3D AMPI, (e) HPCCG, (f) miniMD.
MINIAPP_NAMES = (
    "jacobi3d-charm",
    "lulesh",
    "leanmd",
    "jacobi3d-ampi",
    "hpccg",
    "minimd",
)

_FACTORIES: dict[str, Callable[..., ReplicaApp]] = {
    "jacobi3d-charm": lambda n, **kw: Jacobi3D(n, programming_model="charm++", **kw),
    "jacobi3d-ampi": lambda n, **kw: Jacobi3D(n, programming_model="mpi", **kw),
    "hpccg": HPCCG,
    "lulesh": LULESH,
    "leanmd": LeanMD,
    "minimd": MiniMD,
    "synthetic": SyntheticApp,
}

DESCRIPTORS: dict[str, AppDescriptor] = {
    "jacobi3d-charm": JACOBI_CHARM,
    "jacobi3d-ampi": JACOBI_AMPI,
    "hpccg": HPCCG_DESCRIPTOR,
    "lulesh": LULESH_DESCRIPTOR,
    "leanmd": LEANMD_DESCRIPTOR,
    "minimd": MINIMD_DESCRIPTOR,
}


def make_app(name: str, nodes_per_replica: int, *, scale: float = 1.0,
             seed: int = 0, **kwargs) -> ReplicaApp:
    """Instantiate one replica of a registered mini-application."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown app {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    return factory(nodes_per_replica, scale=scale, seed=seed, **kwargs)


def descriptor(name: str) -> AppDescriptor:
    try:
        return DESCRIPTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"no descriptor for {name!r}; known: {sorted(DESCRIPTORS)}"
        ) from None
