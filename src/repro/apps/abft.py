"""Algorithm-based fault tolerance (ABFT) for the CG solver — §3.2's rival.

"Algorithmic fault tolerance is an alternative method based on redesigning
algorithms using domain knowledge to detect and correct SDC ... While both
these approaches have been shown to be scalable, they are specific to their
applications ... In contrast, a runtime-based method is universal and works
transparently" (paper §3.2).

To make that argument measurable we actually *build* the alternative for one
application: Huang-&-Abraham-style checksummed conjugate gradient.  Every CG
vector carries a running checksum (its element sum) that is updated
*homomorphically* alongside the vector — an axpy updates the checksum with
the same axpy — so recomputing the true sum and comparing against the
tracked value detects corruption of the vector between checks.

The comparison against ACR's replica checkpoint comparison is exactly the
paper's point:

* ABFT needed the algorithm rewritten (this module exists only for CG);
* it only guards what was instrumented (the x/r/p vectors — not ``b``, not
  scalars, not other applications);
* floating-point drift forces a detection *tolerance*, so low-magnitude bit
  flips hide below it, while bit-exact replica comparison catches every flip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.hpccg import HPCCG
from repro.util.errors import ConfigurationError


@dataclass
class ABFTCheckReport:
    """Outcome of one ABFT verification sweep."""

    corrupted: list[str] = field(default_factory=list)
    drifts: dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.corrupted


class ABFTHPCCG(HPCCG):
    """HPCCG with checksum-guarded CG vectors.

    The guarded invariant: ``tracked_sum[v] == v.sum()`` for v in {x, r, p},
    maintained through the CG recurrences without re-reading the vectors.
    """

    #: Vectors covered by the scheme.  ``b`` is deliberately NOT guarded -
    #: the original Huang-Abraham construction protects the *iterated* data,
    #: and the gap is part of the coverage comparison.
    GUARDED = ("x", "r", "p")

    def __init__(self, nodes_per_replica: int, *, scale: float = 1.0,
                 seed: int = 0, check_rtol: float = 1e-8):
        if check_rtol <= 0:
            raise ConfigurationError("check_rtol must be positive")
        super().__init__(nodes_per_replica, scale=scale, seed=seed)
        self.check_rtol = check_rtol
        self.checksums = {name: float(getattr(self, name).sum())
                          for name in self.GUARDED}
        self.abft_checks = 0
        self.abft_detections = 0

    def advance(self) -> None:
        """One CG step with homomorphic checksum updates.

        Mirrors :meth:`HPCCG.advance`; every vector update is shadowed by the
        same linear update on its checksum, *without* touching the payload.
        """
        ap = self.matvec(self.p)
        denom = float((self.p * ap).sum())
        if denom == 0.0 or self.rho == 0.0:
            return
        alpha = self.rho / denom
        sum_ap = float(ap.sum())
        self.x += alpha * self.p
        self.checksums["x"] += alpha * self.checksums["p"]
        self.r -= alpha * ap
        self.checksums["r"] -= alpha * sum_ap
        rho_new = float((self.r * self.r).sum())
        beta = rho_new / self.rho
        self.p = self.r + beta * self.p
        self.checksums["p"] = self.checksums["r"] + beta * self.checksums["p"]
        self.rho = rho_new

    def abft_verify(self) -> ABFTCheckReport:
        """Recompute the guarded sums and compare against the tracked values."""
        self.abft_checks += 1
        report = ABFTCheckReport()
        for name in self.GUARDED:
            actual = float(getattr(self, name).sum())
            tracked = self.checksums[name]
            scale = max(abs(actual), abs(tracked), 1.0)
            drift = abs(actual - tracked) / scale
            report.drifts[name] = drift
            if drift > self.check_rtol:
                report.corrupted.append(name)
        if report.corrupted:
            self.abft_detections += 1
        return report

    def abft_resync(self) -> None:
        """Re-derive the checksums from the (trusted) current state — done
        after a rollback restored known-good data."""
        self.checksums = {name: float(getattr(self, name).sum())
                          for name in self.GUARDED}


def detection_coverage_experiment(
    *,
    flips: int = 200,
    iterations_between: int = 3,
    seed: int = 0,
    check_rtol: float = 1e-8,
) -> dict[str, float]:
    """Measure ABFT vs replica-comparison detection rates for random flips.

    For each trial: evolve a guarded CG instance, flip one random bit in its
    checkpointable state, then ask (a) the ABFT verifier and (b) bit-exact
    comparison against an uncorrupted twin whether they noticed.  Returns
    detection rates plus the breakdown of ABFT misses.
    """
    from repro.faults.bitflip import BitFlipInjector
    from repro.pup import compare_checkpoints, pack
    from repro.util.rng import RngStream

    abft_hits = replica_hits = 0
    misses_unguarded = misses_below_tolerance = 0
    for trial in range(flips):
        app = ABFTHPCCG(2, scale=2e-4, seed=seed, check_rtol=check_rtol)
        twin = ABFTHPCCG(2, scale=2e-4, seed=seed, check_rtol=check_rtol)
        for instance in (app, twin):
            instance.advance_to(iterations_between)
        record = BitFlipInjector(
            RngStream(seed, f"abft/{trial}")).inject(app.shard(0))
        field = record.field_name.split(".")[-1]

        if not app.abft_verify().clean:
            abft_hits += 1
        elif field not in ABFTHPCCG.GUARDED:
            misses_unguarded += 1
        else:
            misses_below_tolerance += 1

        replica_mismatch = any(
            not compare_checkpoints(pack(app.shard(r)), pack(twin.shard(r))).match
            for r in range(2)
        )
        if replica_mismatch:
            replica_hits += 1

    return {
        "flips": float(flips),
        "abft_detection_rate": abft_hits / flips,
        "replica_detection_rate": replica_hits / flips,
        "abft_miss_unguarded_rate": misses_unguarded / flips,
        "abft_miss_below_tolerance_rate": misses_below_tolerance / flips,
    }
