"""HPCCG — conjugate-gradient solve on a 27-point finite-element stencil.

"Distributed as part of the MPI-based Mantevo benchmark suite ... mimics the
performance of unstructured implicit finite element methods" (§6.1).
Configuration from Table 2: 40×40×40 grid points per core, high memory
pressure.

We solve ``A x = b`` matrix-free, where A has 27 on the diagonal and −1 for
each of the 26 neighbours (zero Dirichlet boundary) — the HPCCG operator.
One application iteration is one CG step; the checkpointable state is the CG
vectors plus the two scalars the recurrence needs, so a restart resumes the
Krylov iteration bit-exactly.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppDescriptor, ReplicaApp, partition_bounds
from repro.pup.puper import PUPer

HPCCG_DESCRIPTOR = AppDescriptor(
    name="hpccg",
    programming_model="mpi",
    table2_configuration="40*40*40 grid points",
    memory_pressure="high",
    # CG keeps x, r, p plus b and scratch: ~9 vectors of 40^3 doubles.
    declared_bytes_per_core=9 * 40 * 40 * 40 * 8,
    serialize_factor=1.1,
    base_iteration_seconds=0.06,
)


class HPCCG(ReplicaApp):
    """One replica of the HPCCG conjugate-gradient proxy."""

    descriptor = HPCCG_DESCRIPTOR

    def __init__(self, nodes_per_replica: int, *, scale: float = 1.0, seed: int = 0):
        super().__init__(nodes_per_replica, scale=scale, seed=seed)
        per_node_cells = self._scaled(4 * 40 * 40 * 40, minimum=32)
        g = int(np.clip(round(per_node_cells ** (1.0 / 3.0)), 4, 64))
        sx = max(per_node_cells // (g * g), 2)
        nx = sx * nodes_per_replica
        self.shape = (nx, g, g)
        rhs = self.rng.uniform(-1.0, 1.0, size=self.shape)
        self.b = np.ascontiguousarray(rhs)
        self.x = np.zeros(self.shape, dtype=np.float64)
        self.r = self.b.copy()          # r0 = b - A*0
        self.p = self.r.copy()
        self.rho = float((self.r * self.r).sum())
        self._bounds = partition_bounds(nx, nodes_per_replica)

    # -- the 27-point operator ------------------------------------------------------
    def matvec(self, u: np.ndarray) -> np.ndarray:
        """A·u with 27-point stencil: 27 on the diagonal, −1 off-diagonal."""
        nx, ny, nz = self.shape
        padded = np.zeros((nx + 2, ny + 2, nz + 2), dtype=np.float64)
        padded[1:-1, 1:-1, 1:-1] = u
        acc = np.zeros_like(u)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    acc += padded[1 + dx : nx + 1 + dx,
                                  1 + dy : ny + 1 + dy,
                                  1 + dz : nz + 1 + dz]
        return 27.0 * u - acc

    # -- one CG step -----------------------------------------------------------------
    def advance(self) -> None:
        ap = self.matvec(self.p)
        denom = float((self.p * ap).sum())
        if denom == 0.0 or self.rho == 0.0:
            return  # converged to machine precision; iterate as identity
        alpha = self.rho / denom
        self.x += alpha * self.p
        self.r -= alpha * ap
        rho_new = float((self.r * self.r).sum())
        beta = rho_new / self.rho
        self.p = self.r + beta * self.p
        self.rho = rho_new

    # -- checkpointing ------------------------------------------------------------
    def pup_shard(self, p: PUPer, rank: int) -> None:
        self.iteration = p.pup_int("iteration", self.iteration)
        self.rho = p.pup_float("rho", self.rho)
        lo, hi = self._bounds[rank]
        p.pup_array("x", self.x[lo:hi])
        p.pup_array("r", self.r[lo:hi])
        p.pup_array("p", self.p[lo:hi])
        p.pup_array("b", self.b[lo:hi])

    def result_digest(self) -> np.ndarray:
        return np.asarray([
            float(self.x.sum()),
            float(np.sqrt((self.r ** 2).sum())),
            self.rho,
        ])

    @property
    def residual_norm(self) -> float:
        """Current CG residual — monotonically shrinking on the forward path."""
        return float(np.sqrt((self.r ** 2).sum()))
