"""LeanMD — short-range molecular dynamics (Charm++, NAMD-style).

"LeanMD, written in Charm++, simulates the behavior of atoms based on
short-range non-bonded force calculation in NAMD" (§6.1).  Table 2: 4000
atoms per core, *low* memory pressure; the paper notes MD checkpoint data
"may be scattered in the memory resulting in extra overheads" — reflected in
the serialize factor.

Physics: velocity-Verlet integration of a soft-sphere short-range potential
(force ``k (r_c − r)`` inside the cutoff) in a periodic box — bounded, cheap,
and deterministic, while keeping positions and velocities live state.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppDescriptor, ReplicaApp, partition_bounds
from repro.pup.puper import PUPer

LEANMD_DESCRIPTOR = AppDescriptor(
    name="leanmd",
    programming_model="charm++",
    table2_configuration="4000 atoms",
    memory_pressure="low",
    declared_bytes_per_core=4000 * 6 * 8,   # positions + velocities
    serialize_factor=1.5,
    base_iteration_seconds=0.03,
)

_DT = 0.005
_CUTOFF = 0.35
_STIFFNESS = 20.0


class LeanMD(ReplicaApp):
    """One replica of the short-range MD mini-app."""

    descriptor = LEANMD_DESCRIPTOR
    _max_actual_atoms = 4096  # keep the O(N^2) force loop laptop-sized

    def __init__(self, nodes_per_replica: int, *, scale: float = 1.0, seed: int = 0):
        super().__init__(nodes_per_replica, scale=scale, seed=seed)
        n = min(self._scaled(4 * self.atoms_per_core(), minimum=8)
                * nodes_per_replica, self._max_actual_atoms)
        # Round so every node owns the same number of atoms.
        n -= n % nodes_per_replica
        n = max(n, nodes_per_replica)
        self.n_atoms = n
        self.box = 1.0
        self.pos = np.ascontiguousarray(self.rng.uniform(0.0, self.box, size=(n, 3)))
        self.vel = np.ascontiguousarray(self.rng.normal(0.0, 0.05, size=(n, 3)))
        self._bounds = partition_bounds(n, nodes_per_replica)

    @classmethod
    def atoms_per_core(cls) -> int:
        return 4000

    # -- physics -----------------------------------------------------------------
    def _forces(self) -> np.ndarray:
        """Soft-sphere short-range forces with minimum-image periodicity."""
        delta = self.pos[:, None, :] - self.pos[None, :, :]
        delta -= self.box * np.round(delta / self.box)
        dist2 = (delta ** 2).sum(axis=-1)
        np.fill_diagonal(dist2, np.inf)
        dist = np.sqrt(dist2)
        overlap = np.clip(_CUTOFF - dist, 0.0, None)
        with np.errstate(invalid="ignore", divide="ignore"):
            unit = np.where(dist[..., None] > 0, delta / dist[..., None], 0.0)
        return (_STIFFNESS * overlap[..., None] * unit).sum(axis=1)

    def advance(self) -> None:
        f = self._forces()
        self.vel += _DT * f
        self.pos += _DT * self.vel
        np.mod(self.pos, self.box, out=self.pos)

    # -- checkpointing -------------------------------------------------------------
    def pup_shard(self, p: PUPer, rank: int) -> None:
        self.iteration = p.pup_int("iteration", self.iteration)
        lo, hi = self._bounds[rank]
        p.pup_array("pos", self.pos[lo:hi])
        p.pup_array("vel", self.vel[lo:hi])

    def result_digest(self) -> np.ndarray:
        return np.asarray([
            float(self.pos.sum()),
            float((self.vel ** 2).sum()),   # twice the kinetic energy
            float(self.pos.std()),
        ])
