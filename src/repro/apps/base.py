"""Mini-application substrate.

Each application models one replica's numeric state *globally* and exposes
per-node **shards** for checkpointing: shard ``rank`` pups the contiguous
block of state owned by that node, so a node's local checkpoint is exactly the
serialization of its partition (paper §2.1).  The two replicas run the same
deterministic computation from the same seed, which is what makes bit-exact
checkpoint comparison meaningful.

Timing and numerics are deliberately separable: ``scale`` shrinks the *actual*
arrays so functional experiments stay laptop-sized, while
``declared_bytes_per_core`` always reflects the paper's Table 2 configuration
and feeds the topology-aware cost model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.network.allocation import CORES_PER_NODE
from repro.network.costs import CheckpointProfile
from repro.pup.puper import PUPer
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


@dataclass(frozen=True)
class AppDescriptor:
    """Static facts about a mini-app (the row it occupies in Table 2)."""

    name: str
    programming_model: str      # "charm++" or "mpi" (via AMPI)
    table2_configuration: str   # e.g. "64*64*128 grid points" (per core)
    memory_pressure: str        # "high" or "low"
    declared_bytes_per_core: int
    serialize_factor: float     # PUP traversal slowdown (nested/scattered data)
    base_iteration_seconds: float  # forward-path time per iteration per task


class ShardRef:
    """Pupable view of one node's partition of a replica's state."""

    def __init__(self, app: "ReplicaApp", rank: int):
        self.app = app
        self.rank = rank

    def pup(self, p: PUPer) -> None:
        self.app.pup_shard(p, self.rank)


class ReplicaApp(ABC):
    """One replica's full application instance.

    Subclasses hold the numeric state, implement one deterministic
    ``advance()`` step, and describe each node's partition via ``pup_shard``.
    """

    descriptor: AppDescriptor

    def __init__(self, nodes_per_replica: int, *, scale: float = 1.0,
                 seed: int = 0):
        if nodes_per_replica < 1:
            raise ConfigurationError("nodes_per_replica must be >= 1")
        if not (0 < scale <= 1.0):
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        self.nodes_per_replica = int(nodes_per_replica)
        self.scale = float(scale)
        self.seed = int(seed)
        self.iteration = 0
        self.rng = RngStream(seed, f"app/{self.descriptor.name}")

    # -- numerics ----------------------------------------------------------------
    @abstractmethod
    def advance(self) -> None:
        """Run one deterministic iteration of the application."""

    def advance_to(self, iteration: int) -> None:
        """Advance the global state to ``iteration`` (no-op if already there)."""
        if iteration < self.iteration:
            raise ConfigurationError(
                f"cannot advance backwards: at {self.iteration}, asked {iteration}"
            )
        while self.iteration < iteration:
            self.advance()
            self.iteration += 1

    @abstractmethod
    def pup_shard(self, p: PUPer, rank: int) -> None:
        """Serialize / restore / compare node ``rank``'s partition.

        Must include the iteration counter so a restored shard knows where the
        replica resumes.
        """

    def shard(self, rank: int) -> ShardRef:
        if not (0 <= rank < self.nodes_per_replica):
            raise ConfigurationError(f"rank {rank} out of range")
        return ShardRef(self, rank)

    @abstractmethod
    def result_digest(self) -> np.ndarray:
        """A small deterministic summary of the state, for correctness checks."""

    # -- cost-model hooks ----------------------------------------------------------
    def checkpoint_profile(self) -> CheckpointProfile:
        """Declared (Table-2 scale) checkpoint footprint of one node."""
        d = self.descriptor
        return CheckpointProfile(
            nbytes_per_node=d.declared_bytes_per_core * CORES_PER_NODE,
            serialize_factor=d.serialize_factor,
        )

    def iteration_time(self, task_id: int, iteration: int) -> float:
        """Per-task compute time model with deterministic per-task jitter.

        The skew between tasks is what exercises the consensus protocol: tasks
        progress at different rates during application execution (§2.2).
        """
        base = self.descriptor.base_iteration_seconds
        jitter = 0.05 * _hash_unit(self.seed, task_id, iteration)
        return base * (1.0 + jitter)

    # -- helpers -----------------------------------------------------------------
    def _scaled(self, per_core: int, minimum: int = 2) -> int:
        """Scale a per-core element count down for functional runs."""
        return max(int(round(per_core * self.scale)), minimum)


def _hash_unit(*keys: int) -> float:
    """Deterministic pseudo-random float in [0, 1) from integer keys."""
    h = 0x9E3779B97F4A7C15
    for k in keys:
        h ^= (int(k) + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        h = (h * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 31
    return (h & 0xFFFFFFFFFFFF) / float(1 << 48)


def partition_bounds(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``total`` items into ``parts`` contiguous, balanced ranges."""
    if parts < 1 or total < parts:
        raise ConfigurationError(f"cannot split {total} items into {parts} parts")
    base, extra = divmod(total, parts)
    bounds = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds
