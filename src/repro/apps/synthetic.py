"""Synthetic workload — a configurable stand-in application.

Useful for tests and ablations: arbitrary state size per node, trivial but
deterministic compute (a mixing transform on the state), and configurable
memory-pressure characteristics.  Not part of the paper's suite, but handy
for exercising every ACR path with exact control over parameters.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppDescriptor, ReplicaApp, partition_bounds
from repro.pup.puper import PUPer


def synthetic_descriptor(
    *,
    bytes_per_core: int = 1 << 20,
    serialize_factor: float = 1.0,
    iteration_seconds: float = 0.05,
    memory_pressure: str = "high",
) -> AppDescriptor:
    return AppDescriptor(
        name="synthetic",
        programming_model="charm++",
        table2_configuration=f"{bytes_per_core} bytes",
        memory_pressure=memory_pressure,
        declared_bytes_per_core=bytes_per_core,
        serialize_factor=serialize_factor,
        base_iteration_seconds=iteration_seconds,
    )


class SyntheticApp(ReplicaApp):
    """Deterministic mixing dynamics over one flat state vector per node."""

    descriptor = synthetic_descriptor()

    def __init__(self, nodes_per_replica: int, *, scale: float = 1.0, seed: int = 0,
                 elements_per_node: int = 256,
                 descriptor: AppDescriptor | None = None):
        if descriptor is not None:
            self.descriptor = descriptor
        super().__init__(nodes_per_replica, scale=scale, seed=seed)
        n = max(int(elements_per_node * scale), 4) * nodes_per_replica
        self.state = np.ascontiguousarray(self.rng.uniform(-1.0, 1.0, size=n))
        self._bounds = partition_bounds(n, nodes_per_replica)

    def advance(self) -> None:
        # A contraction toward the neighbour average plus a fixed rotation
        # keeps the state bounded, mixing, and exactly reproducible.
        rolled = np.roll(self.state, 1) + np.roll(self.state, -1)
        self.state = np.ascontiguousarray(
            0.5 * self.state + 0.24 * rolled + 0.01 * np.sin(self.state)
        )

    def pup_shard(self, p: PUPer, rank: int) -> None:
        self.iteration = p.pup_int("iteration", self.iteration)
        lo, hi = self._bounds[rank]
        p.pup_array("state", self.state[lo:hi])

    def result_digest(self) -> np.ndarray:
        return np.asarray([
            float(self.state.sum()),
            float(np.abs(self.state).max()),
            float((self.state ** 2).sum()),
        ])
