"""Jacobi3D — 7-point stencil relaxation on a 3D structured mesh.

"A simple but commonly-used kernel that performs a 7-point stencil-based
computation on a three dimensional structured mesh" (§6.1).  The paper
evaluates both a Charm++ and an MPI (AMPI) implementation with the same
configuration — 64×64×128 grid points per core (Table 2, high memory
pressure); we mirror that with a ``programming_model`` switch that changes
the task wiring and serialization overhead but not the numerics.

The replica's grid is one padded global array; node ``rank`` owns a contiguous
slab of X-planes (checkpointing a slab is a contiguous memory region, exactly
like a Charm++ chare array section).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppDescriptor, ReplicaApp, partition_bounds
from repro.pup.puper import PUPer

JACOBI_CHARM = AppDescriptor(
    name="jacobi3d-charm",
    programming_model="charm++",
    table2_configuration="64*64*128 grid points",
    memory_pressure="high",
    declared_bytes_per_core=64 * 64 * 128 * 8,
    serialize_factor=1.0,
    base_iteration_seconds=0.05,
)

JACOBI_AMPI = AppDescriptor(
    name="jacobi3d-ampi",
    programming_model="mpi",
    table2_configuration="64*64*128 grid points",
    memory_pressure="high",
    # AMPI virtualizes MPI ranks as migratable threads; their stacks ride
    # along in the checkpoint, a small constant serialization overhead.
    declared_bytes_per_core=64 * 64 * 128 * 8 + 64 * 1024,
    serialize_factor=1.05,
    base_iteration_seconds=0.05,
)


class Jacobi3D(ReplicaApp):
    """One replica of the Jacobi3D relaxation."""

    descriptor = JACOBI_CHARM

    def __init__(self, nodes_per_replica: int, *, scale: float = 1.0,
                 seed: int = 0, programming_model: str = "charm++"):
        if programming_model == "mpi":
            self.descriptor = JACOBI_AMPI
        elif programming_model == "charm++":
            self.descriptor = JACOBI_CHARM
        else:
            raise ValueError(f"unknown programming model {programming_model!r}")
        super().__init__(nodes_per_replica, scale=scale, seed=seed)

        # Scaled-down actual grid: per-node slab of X-planes over a (g, g)
        # cross-section.  Full Table-2 scale would be 4 x 64*64*128 cells/node.
        per_node_cells = self._scaled(4 * 64 * 64 * 128, minimum=32)
        g = int(np.clip(round(per_node_cells ** (1.0 / 3.0)), 4, 96))
        sx = max(per_node_cells // (g * g), 2)
        self.slab_x = sx
        self.ny = g
        self.nz = g
        nx = sx * nodes_per_replica
        # Padded array: one ghost layer on every face (zero Dirichlet walls).
        self.grid = np.zeros((nx + 2, g + 2, g + 2), dtype=np.float64)
        interior = self.rng.uniform(0.0, 1.0, size=(nx, g, g))
        self.grid[1:-1, 1:-1, 1:-1] = interior
        # Hot plate on the low-X wall drives a steady heat flow.
        self.grid[0, :, :] = 1.0
        self._bounds = partition_bounds(self.grid.shape[0], nodes_per_replica)

    # -- numerics ----------------------------------------------------------------
    def advance(self) -> None:
        g = self.grid
        center = g[1:-1, 1:-1, 1:-1]
        new = (
            center
            + g[:-2, 1:-1, 1:-1]
            + g[2:, 1:-1, 1:-1]
            + g[1:-1, :-2, 1:-1]
            + g[1:-1, 2:, 1:-1]
            + g[1:-1, 1:-1, :-2]
            + g[1:-1, 1:-1, 2:]
        ) / 7.0
        g[1:-1, 1:-1, 1:-1] = new

    # -- checkpointing -------------------------------------------------------------
    def pup_shard(self, p: PUPer, rank: int) -> None:
        self.iteration = p.pup_int("iteration", self.iteration)
        lo, hi = self._bounds[rank]
        # Slicing the first axis of a C-ordered array keeps the slab
        # contiguous, so in-place restore and bit-flip injection both work.
        p.pup_array("slab", self.grid[lo:hi])

    def result_digest(self) -> np.ndarray:
        interior = self.grid[1:-1, 1:-1, 1:-1]
        return np.asarray([
            float(interior.sum()),
            float(np.sqrt((interior ** 2).sum())),
            float(interior.max()),
        ])
