"""The paper's mini-applications (§6.1, Table 2) plus a synthetic workload."""

from repro.apps.base import AppDescriptor, ReplicaApp, ShardRef, partition_bounds
from repro.apps.hpccg import HPCCG
from repro.apps.jacobi3d import Jacobi3D
from repro.apps.leanmd import LeanMD
from repro.apps.lulesh import LULESH
from repro.apps.minimd import MiniMD
from repro.apps.registry import DESCRIPTORS, MINIAPP_NAMES, descriptor, make_app
from repro.apps.synthetic import SyntheticApp, synthetic_descriptor

__all__ = [
    "AppDescriptor",
    "ReplicaApp",
    "ShardRef",
    "partition_bounds",
    "HPCCG",
    "Jacobi3D",
    "LeanMD",
    "LULESH",
    "MiniMD",
    "DESCRIPTORS",
    "MINIAPP_NAMES",
    "descriptor",
    "make_app",
    "SyntheticApp",
    "synthetic_descriptor",
]
