"""miniMD — LAMMPS-style molecular dynamics from the Mantevo suite.

"miniMD is part of the Mantevo benchmark suite written in MPI.  It mimics the
operations performed in LAMMPS" (§6.1).  Table 2: 1000 atoms per core, low
memory pressure; like LeanMD its checkpoint data is small and scattered in
memory (the paper's explanation for why the checksum method wins for the MD
apps), modelled with the highest serialize factor of the suite.

Physics: truncated, force-capped Lennard-Jones in a periodic box with
velocity-Verlet integration — a bounded deterministic stand-in for the
LJ kernels of LAMMPS.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppDescriptor, ReplicaApp, partition_bounds
from repro.pup.puper import PUPer

MINIMD_DESCRIPTOR = AppDescriptor(
    name="minimd",
    programming_model="mpi",
    table2_configuration="1000 atoms",
    memory_pressure="low",
    declared_bytes_per_core=1000 * 6 * 8,
    serialize_factor=2.0,
    base_iteration_seconds=0.02,
)

_DT = 0.002
_CUTOFF = 0.4
_SIGMA = 0.15
_EPSILON = 0.2
_FORCE_CAP = 50.0


class MiniMD(ReplicaApp):
    """One replica of the miniMD Lennard-Jones proxy."""

    descriptor = MINIMD_DESCRIPTOR
    _max_actual_atoms = 2048

    def __init__(self, nodes_per_replica: int, *, scale: float = 1.0, seed: int = 0):
        super().__init__(nodes_per_replica, scale=scale, seed=seed)
        n = min(self._scaled(4 * 1000, minimum=8) * nodes_per_replica,
                self._max_actual_atoms)
        n -= n % nodes_per_replica
        n = max(n, nodes_per_replica)
        self.n_atoms = n
        self.box = 1.0
        # Start from a jittered lattice, the standard MD initial condition.
        side = int(np.ceil(n ** (1.0 / 3.0)))
        lattice = np.stack(np.meshgrid(*[np.arange(side)] * 3, indexing="ij"),
                           axis=-1).reshape(-1, 3)[:n]
        self.pos = np.ascontiguousarray(
            (lattice + 0.5) / side * self.box
            + self.rng.uniform(-0.01, 0.01, size=(n, 3))
        )
        self.vel = np.ascontiguousarray(self.rng.normal(0.0, 0.02, size=(n, 3)))
        self._bounds = partition_bounds(n, nodes_per_replica)

    # -- physics -----------------------------------------------------------------
    def _forces(self) -> np.ndarray:
        delta = self.pos[:, None, :] - self.pos[None, :, :]
        delta -= self.box * np.round(delta / self.box)
        dist2 = (delta ** 2).sum(axis=-1)
        np.fill_diagonal(dist2, np.inf)
        inside = dist2 < _CUTOFF ** 2
        inv2 = np.where(inside, _SIGMA ** 2 / np.maximum(dist2, 1e-12), 0.0)
        inv6 = inv2 ** 3
        # d(LJ)/dr magnitude over r: 24 eps (2 s^12/r^12 - s^6/r^6) / r^2.
        mag = 24.0 * _EPSILON * (2.0 * inv6 ** 2 - inv6) / np.maximum(dist2, 1e-12)
        mag = np.clip(mag, -_FORCE_CAP, _FORCE_CAP)
        return (mag[..., None] * delta).sum(axis=1)

    def advance(self) -> None:
        f = self._forces()
        self.vel += 0.5 * _DT * f
        self.pos += _DT * self.vel
        np.mod(self.pos, self.box, out=self.pos)
        f = self._forces()
        self.vel += 0.5 * _DT * f

    # -- checkpointing -------------------------------------------------------------
    def pup_shard(self, p: PUPer, rank: int) -> None:
        self.iteration = p.pup_int("iteration", self.iteration)
        lo, hi = self._bounds[rank]
        p.pup_array("pos", self.pos[lo:hi])
        p.pup_array("vel", self.vel[lo:hi])

    def result_digest(self) -> np.ndarray:
        return np.asarray([
            float(self.pos.sum()),
            float((self.vel ** 2).sum()),
            float(self.pos.var()),
        ])
