"""LULESH proxy — Lagrangian explicit shock hydrodynamics on a hex mesh.

"A mesh-based physics code on an unstructured hexahedral mesh with element
centering and nodal centering" (§6.1, Table 2: 32×32×64 mesh elements per
core, high memory pressure).  The paper notes LULESH "takes longer in local
checkpointing since it contains more complicated data structures for
serialization" — we mirror that with both element-centered *and*
node-centered field groups (seven distinct arrays) and a serialization factor
of 1.6 in the cost model.

The dynamics are a simplified—but deterministic and numerically bounded—
energy/pressure/volume relaxation with nodal velocities, enough to make
checkpoints carry live, evolving multi-field state.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppDescriptor, ReplicaApp, partition_bounds
from repro.pup.puper import PUPer

LULESH_DESCRIPTOR = AppDescriptor(
    name="lulesh",
    programming_model="mpi",
    table2_configuration="32*32*64 mesh elements",
    memory_pressure="high",
    # Element fields (energy, pressure, volume, mass) + nodal fields
    # (3-component velocity) on a 32*32*64 per-core block.
    declared_bytes_per_core=int(32 * 32 * 64 * 8 * (4 + 3 * 1.05)),
    serialize_factor=1.6,
    base_iteration_seconds=0.08,
)

_GAMMA = 1.4       # ideal-gas constant for the pressure EOS
_DT = 0.02         # fixed Lagrange step
_RELAX = 0.05      # volume relaxation rate


class LULESH(ReplicaApp):
    """One replica of the shock-hydro proxy."""

    descriptor = LULESH_DESCRIPTOR

    def __init__(self, nodes_per_replica: int, *, scale: float = 1.0, seed: int = 0):
        super().__init__(nodes_per_replica, scale=scale, seed=seed)
        per_node_elems = self._scaled(4 * 32 * 32 * 64, minimum=32)
        g = int(np.clip(round(per_node_elems ** (1.0 / 3.0)), 4, 64))
        sx = max(per_node_elems // (g * g), 2)
        nx = sx * nodes_per_replica
        self.shape = (nx, g, g)
        # Element-centered fields: the "shock" is a hot region near one corner.
        xs = np.arange(nx)[:, None, None] / max(nx - 1, 1)
        self.energy = np.ascontiguousarray(1.0 + 4.0 * np.exp(-8.0 * xs)
                                           * np.ones(self.shape))
        self.volume = np.ones(self.shape, dtype=np.float64)
        self.pressure = self._eos()
        self.mass = np.ascontiguousarray(
            self.rng.uniform(0.9, 1.1, size=self.shape)
        )
        # Node-centered field (one value set per element corner-owner here):
        # 3-component velocities, initially quiescent.
        self.velocity = np.zeros(self.shape + (3,), dtype=np.float64)
        self._bounds = partition_bounds(nx, nodes_per_replica)

    def _eos(self) -> np.ndarray:
        """Ideal-gas equation of state: p = (γ−1) e / v."""
        return np.ascontiguousarray((_GAMMA - 1.0) * self.energy / self.volume)

    def advance(self) -> None:
        """One Lagrange leapfrog step: pressure gradients accelerate nodes,
        velocity divergence changes volumes, volume work changes energy."""
        p = self.pressure
        grad = np.zeros_like(self.velocity)
        # Central-difference pressure gradient along each axis (one-sided at
        # the walls), per component.
        for axis in range(3):
            g = np.zeros(self.shape, dtype=np.float64)
            src = p
            sl_fwd = [slice(None)] * 3
            sl_bwd = [slice(None)] * 3
            sl_mid = [slice(None)] * 3
            sl_fwd[axis] = slice(2, None)
            sl_bwd[axis] = slice(None, -2)
            sl_mid[axis] = slice(1, -1)
            g[tuple(sl_mid)] = 0.5 * (src[tuple(sl_fwd)] - src[tuple(sl_bwd)])
            grad[..., axis] = g
        self.velocity -= _DT * grad / self.mass[..., None]
        self.velocity *= 0.999  # numerical damping (hourglass control stand-in)

        div = np.zeros(self.shape, dtype=np.float64)
        for axis in range(3):
            v = self.velocity[..., axis]
            g = np.zeros(self.shape, dtype=np.float64)
            sl_fwd = [slice(None)] * 3
            sl_bwd = [slice(None)] * 3
            sl_mid = [slice(None)] * 3
            sl_fwd[axis] = slice(2, None)
            sl_bwd[axis] = slice(None, -2)
            sl_mid[axis] = slice(1, -1)
            g[tuple(sl_mid)] = 0.5 * (v[tuple(sl_fwd)] - v[tuple(sl_bwd)])
            div += g
        self.volume = np.ascontiguousarray(
            np.clip(self.volume * (1.0 + _DT * div) + _RELAX * _DT * (1.0 - self.volume),
                    0.2, 5.0)
        )
        work = self.pressure * div * _DT
        self.energy = np.ascontiguousarray(np.clip(self.energy - work, 1e-6, None))
        self.pressure = self._eos()

    # -- checkpointing -------------------------------------------------------------
    def pup_shard(self, p: PUPer, rank: int) -> None:
        self.iteration = p.pup_int("iteration", self.iteration)
        lo, hi = self._bounds[rank]
        # Element-centered group, then node-centered group: the multi-field
        # traversal is what makes LULESH checkpoints slow to serialize.
        p.pup_array("energy", self.energy[lo:hi])
        p.pup_array("pressure", self.pressure[lo:hi])
        p.pup_array("volume", self.volume[lo:hi])
        p.pup_array("mass", self.mass[lo:hi])
        p.pup_array("velocity", self.velocity[lo:hi])

    def result_digest(self) -> np.ndarray:
        return np.asarray([
            float(self.energy.sum()),
            float(np.abs(self.velocity).sum()),
            float(self.volume.mean()),
        ])
