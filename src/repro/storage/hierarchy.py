"""The modeled durable checkpoint hierarchy behind the in-memory store.

A :class:`DurableHierarchy` holds the level-2 (node-local) and level-3
(shared-FS) copies of committed checkpoint generations.  It is *modeled*
storage: generations live in memory as deep copies, write/read durations
come from each :class:`~repro.storage.tiers.TierSpec` cost model (the
framework charges them through ``ACR._charge``), and crash/corruption
behaviour is simulated precisely enough to test the recovery guarantees:

* every stored shard carries the SHA-256 of its buffer, recorded at stage
  time — the integrity guard recovery verifies before trusting a copy;
* a group write interrupted mid-flight (node death during the persist
  window) lands **torn** under the ``unsafe`` protocol — a prefix of shards
  intact, one shard's tail zeroed, the rest missing — and is aborted
  cleanly under ``atomic-dirsync`` (the previous generation survives);
* injected storage faults (armed torn writes, bit rot at rest, write-latency
  spikes) corrupt stored state the same way real media do: silently.

:meth:`restore` scans level 2 then level 3, newest generation first, and
returns the first copy whose every shard passes the SHA-256 guard — never a
torn or rotted one.  Per-tier hit/rejection counters make the fallback path
observable (``repro report``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.checkpoint import CheckpointGeneration
from repro.storage.tiers import TierSpec, WriteProtocol
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.rng import RngStream


def _digest(buffer) -> str:
    return hashlib.sha256(buffer.tobytes()).hexdigest()


@dataclass
class StoredShard:
    """One rank's packed state as stored on a tier, plus its recorded guard.

    ``digest`` is the SHA-256 of the buffer *as staged*; faults mutate the
    buffer afterwards (tears, bit rot) without touching the digest, exactly
    like real media corrupting data under a stale checksum.
    """

    state: object  # PackedState (kept duck-typed: .buffer/.nbytes/.copy())
    digest: str
    #: Set when a simulated tear hit this shard (accounting only; detection
    #: always goes through the SHA-256 recompute).
    torn: bool = False


@dataclass
class StoredGeneration:
    """One checkpoint generation as stored on one tier."""

    iteration: int
    wallclock: float
    shards: dict[int, StoredShard] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return sum(s.state.nbytes for s in self.shards.values())


@dataclass
class TierState:
    """Runtime state of one tier: stored generations plus counters."""

    spec: TierSpec
    #: Oldest -> newest, trimmed to ``spec.keep_generations``.
    generations: list[StoredGeneration] = field(default_factory=list)
    last_persist: float = float("-inf")
    counters: dict[str, float] = field(default_factory=lambda: {
        "persists": 0,          # generations landed intact
        "torn_writes": 0,       # generations landed torn (unsafe protocol)
        "aborted_writes": 0,    # group writes aborted (atomic protocol)
        "bytes_written": 0,     # payload bytes of intact landings
        "restore_hits": 0,      # restores served from this tier
        "rejected_torn": 0,     # candidates rejected: incomplete/torn shards
        "rejected_rot": 0,      # candidates rejected: digest mismatch at rest
        "rot_injected": 0,      # bit-rot faults that actually flipped a bit
        "write_spikes": 0,      # latency-spike faults applied to a persist
    })
    #: Armed storage faults (consumed by the next persist to this tier).
    armed_torn: bool = False
    armed_spike: float = 0.0


@dataclass(frozen=True)
class RestoreResult:
    """Outcome of a successful hierarchy restore."""

    level: int
    generation: CheckpointGeneration
    read_time: float
    #: True when at least one newer/shallower stored copy was rejected by the
    #: integrity guard before this one was accepted.
    fellback: bool


class DurableHierarchy:
    """Level-2/3 durable copies of committed checkpoint generations."""

    def __init__(self, tiers, nodes_per_replica: int, *, seed: int = 0):
        specs = sorted(tiers, key=lambda s: s.level)
        if not specs:
            raise ConfigurationError("DurableHierarchy needs at least one tier")
        levels = [s.level for s in specs]
        if len(set(levels)) != len(levels):
            raise ConfigurationError(f"duplicate tier levels: {levels}")
        self.tiers: dict[int, TierState] = {
            s.level: TierState(spec=s) for s in specs
        }
        self.nodes_per_replica = int(nodes_per_replica)
        self.restore_misses = 0
        self.fallbacks = 0
        self._rng = RngStream(seed, "storage/faults")
        #: (level, staged StoredGeneration) pairs for the in-flight group
        #: write; populated by :meth:`stage`, consumed by complete/abort.
        self._inflight: list[tuple[int, StoredGeneration]] = []
        #: Observers (e.g. the chaos InvariantMonitor); hooks:
        #: ``on_tier_persist(level, stored_gen, torn)`` and
        #: ``on_tier_restore(level, stored_gen, generation)``.
        self.observers: list = []

    def _notify(self, hook_name: str, *args) -> None:
        for obs in self.observers:
            hook = getattr(obs, hook_name, None)
            if hook is not None:
                hook(*args)

    # -- scheduling ------------------------------------------------------------
    def due_levels(self, now: float, interval_of) -> list[int]:
        """Tiers whose persist interval has elapsed, shallowest first.

        ``interval_of(spec)`` supplies the current interval per tier (fixed,
        model-planned, or adaptive — the framework decides).
        """
        due = []
        for level, tier in sorted(self.tiers.items()):
            if now - tier.last_persist >= interval_of(tier.spec):
                due.append(level)
        return due

    # -- the group write -------------------------------------------------------
    def stage(self, level: int, gen: CheckpointGeneration, now: float) -> float:
        """Stage ``gen`` for persistence to ``level``; returns the simulated
        write duration (latency spikes included).  The write is in flight
        until :meth:`complete_inflight` / :meth:`abort_inflight`."""
        tier = self.tiers[level]
        staged = StoredGeneration(iteration=gen.iteration,
                                  wallclock=gen.wallclock)
        for rank, shard in gen.shards.items():
            copy = shard.copy()
            staged.shards[rank] = StoredShard(state=copy,
                                              digest=_digest(copy.buffer))
        duration = tier.spec.write_time(staged.nbytes, len(staged.shards))
        if tier.armed_spike > 0.0:
            duration *= tier.armed_spike
            tier.armed_spike = 0.0
            tier.counters["write_spikes"] += 1
        tier.last_persist = now
        self._inflight.append((level, staged))
        return duration

    def complete_inflight(self, now: float) -> list[dict]:
        """Finish the in-flight group writes; armed torn-write faults bite
        here.  Returns one outcome dict per staged write (for the timeline)."""
        outcomes = []
        for level, staged in self._inflight:
            tier = self.tiers[level]
            if tier.armed_torn:
                tier.armed_torn = False
                if tier.spec.protocol is WriteProtocol.ATOMIC_DIRSYNC:
                    # The failed fsync/rename surfaces the tear before the
                    # group commits: the write aborts, the old copy survives.
                    tier.counters["aborted_writes"] += 1
                    outcomes.append({"level": level, "outcome": "aborted",
                                     "iteration": staged.iteration})
                    continue
                self._tear(staged, len(staged.shards) // 2, drop_rest=False)
                tier.counters["torn_writes"] += 1
                self._land(tier, staged)
                outcomes.append({"level": level, "outcome": "torn",
                                 "iteration": staged.iteration})
                self._notify("on_tier_persist", level, staged, True)
                continue
            tier.counters["persists"] += 1
            tier.counters["bytes_written"] += staged.nbytes
            self._land(tier, staged)
            outcomes.append({"level": level, "outcome": "ok",
                             "iteration": staged.iteration})
            self._notify("on_tier_persist", level, staged, False)
        self._inflight = []
        return outcomes

    def abort_inflight(self, now: float, fault_point: int | None = None) -> None:
        """A crash interrupted the in-flight group writes.

        Under ``unsafe`` the partially written generation lands torn: shards
        ``0..fault_point-1`` intact, shard ``fault_point`` with its tail
        zeroed (its recorded digest no longer matches), the rest missing.
        Under ``atomic-dirsync`` nothing lands — temp files never renamed.
        ``fault_point`` defaults to the middle of the group.
        """
        for level, staged in self._inflight:
            tier = self.tiers[level]
            tier.armed_torn = False
            if tier.spec.protocol is WriteProtocol.ATOMIC_DIRSYNC:
                tier.counters["aborted_writes"] += 1
                continue
            k = (len(staged.shards) // 2 if fault_point is None
                 else max(0, min(fault_point, len(staged.shards) - 1)))
            self._tear(staged, k, drop_rest=True)
            tier.counters["torn_writes"] += 1
            self._land(tier, staged)
            self._notify("on_tier_persist", level, staged, True)
        self._inflight = []

    def discard_inflight(self) -> None:
        """Silently drop staged writes (job quiescing; no torn residue)."""
        self._inflight = []

    @property
    def inflight(self) -> bool:
        return bool(self._inflight)

    def _land(self, tier: TierState, staged: StoredGeneration) -> None:
        tier.generations.append(staged)
        del tier.generations[:-tier.spec.keep_generations]

    @staticmethod
    def _tear(staged: StoredGeneration, fault_point: int, *,
              drop_rest: bool) -> None:
        ranks = sorted(staged.shards)
        if not ranks:
            return
        victim = ranks[min(fault_point, len(ranks) - 1)]
        buf = staged.shards[victim].state.buffer
        # Zero the tail: a genuinely different payload under the stale digest.
        buf[len(buf) // 2:] = 0
        staged.shards[victim].torn = True
        if drop_rest:
            for r in ranks[fault_point + 1:]:
                del staged.shards[r]

    def persist_now(self, gen: CheckpointGeneration, now: float,
                    levels=None) -> float:
        """Stage + complete in one step (benches and tests); returns the
        total simulated write duration across the requested levels."""
        total = 0.0
        for level in (sorted(self.tiers) if levels is None else levels):
            total += self.stage(level, gen, now)
        self.complete_inflight(now)
        return total

    # -- injected storage faults ------------------------------------------------
    def arm_torn_write(self, level: int) -> None:
        """The next group write to ``level`` tears (or aborts, if atomic)."""
        if level in self.tiers:
            self.tiers[level].armed_torn = True

    def arm_write_spike(self, level: int, factor: float = 8.0) -> None:
        """The next group write to ``level`` takes ``factor``x as long."""
        if level in self.tiers and factor > 0:
            self.tiers[level].armed_spike = float(factor)

    def inject_bit_rot(self, level: int, now: float) -> bool:
        """Flip one random bit in the newest generation stored at ``level``
        (silent corruption at rest).  Returns True when a bit flipped."""
        tier = self.tiers.get(level)
        if tier is None or not tier.generations:
            return False
        gen = tier.generations[-1]
        ranks = sorted(gen.shards)
        if not ranks:
            return False
        victim = gen.shards[ranks[int(self._rng.integers(0, len(ranks)))]]
        buf = victim.state.buffer
        if buf.nbytes == 0:
            return False
        byte = int(self._rng.integers(0, buf.nbytes))
        bit = int(self._rng.integers(0, 8))
        buf[byte] ^= (1 << bit)
        tier.counters["rot_injected"] += 1
        return True

    # -- restore ---------------------------------------------------------------
    def verify_generation(self, staged: StoredGeneration) -> str | None:
        """None when intact; otherwise why the integrity guard rejects it."""
        if len(staged.shards) != self.nodes_per_replica:
            return (f"incomplete: {len(staged.shards)}/"
                    f"{self.nodes_per_replica} shards")
        for rank in sorted(staged.shards):
            shard = staged.shards[rank]
            if _digest(shard.state.buffer) != shard.digest:
                kind = "torn shard" if shard.torn else "digest mismatch"
                return f"{kind} at rank {rank}"
        return None

    def restore(self, now: float) -> RestoreResult | None:
        """The newest intact generation anywhere in the hierarchy.

        Scans level 2 then level 3, newest stored copy first, verifying the
        SHA-256 guard on every shard; torn and rotted copies are rejected and
        counted, and the scan falls back to the next candidate.  Returns None
        when no tier holds an intact generation.
        """
        fellback = False
        for level, tier in sorted(self.tiers.items()):
            for staged in reversed(tier.generations):
                problem = self.verify_generation(staged)
                if problem is None:
                    gen = CheckpointGeneration(
                        iteration=staged.iteration,
                        shards={r: s.state.copy()
                                for r, s in staged.shards.items()},
                        wallclock=staged.wallclock,
                    )
                    if not gen.complete(self.nodes_per_replica):
                        raise SimulationError(
                            "verified generation is incomplete")  # pragma: no cover
                    tier.counters["restore_hits"] += 1
                    if fellback:
                        self.fallbacks += 1
                    self._notify("on_tier_restore", level, staged, gen)
                    return RestoreResult(
                        level=level,
                        generation=gen,
                        read_time=tier.spec.read_time(gen.nbytes),
                        fellback=fellback,
                    )
                fellback = True
                bucket = ("rejected_rot" if "mismatch" in problem
                          else "rejected_torn")
                tier.counters[bucket] += 1
        self.restore_misses += 1
        return None

    # -- observability -----------------------------------------------------------
    def counters(self) -> dict[str, float]:
        """Flat counter map (``tier<level>.<name>`` plus hierarchy totals)."""
        out: dict[str, float] = {}
        for level, tier in sorted(self.tiers.items()):
            for name, value in tier.counters.items():
                out[f"tier{level}.{name}"] = float(value)
        out["restore_misses"] = float(self.restore_misses)
        out["fallbacks"] = float(self.fallbacks)
        return out
