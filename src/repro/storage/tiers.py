"""Cost models for the durable checkpoint tiers behind ACR's level 1.

The paper's double in-memory checkpoint (§2.1) is level 1 of a realistic
resilience stack.  CRAFT and Montezanti et al. (PAPERS.md) give the cost
structure for the two tiers modeled here:

* **level 2 — node-local disk/NVM**: low latency, high bandwidth, survives a
  process crash but not the node;
* **level 3 — shared parallel FS**: higher latency, lower effective
  bandwidth, survives losing the whole partition.

Each tier writes a checkpoint *generation* (one shard per rank) as a group
write under one of two protocols:

* ``unsafe`` — shards stream straight into their final location.  A crash
  mid-group leaves a **torn** generation on the tier: some shards intact,
  one mid-write, the rest missing.  Recovery must detect this (the SHA-256
  guard) and fall back.
* ``atomic-dirsync`` — each shard lands via temp file + fsync + rename, and
  the group commits with a final directory sync.  A crash either leaves the
  previous generation intact or the new one complete, never a torn mix —
  at the cost of one fsync per shard plus the dirsync, the ~40-70% latency
  overhead the ckpt-integrity exemplar measures.

The specs below are *simulated* costs charged through ``ACR._charge``; no
real I/O happens (the hierarchy keeps generations in memory, see
:mod:`repro.storage.hierarchy`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.util.errors import ConfigurationError


class WriteProtocol(str, Enum):
    """Group-write crash-consistency protocol for one tier."""

    UNSAFE = "unsafe"
    ATOMIC_DIRSYNC = "atomic-dirsync"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TierSpec:
    """Cost/behaviour parameters of one durable checkpoint tier."""

    #: Tier level: 2 = node-local disk, 3 = shared FS (1 is the in-memory
    #: double checkpoint the framework already implements).
    level: int
    name: str
    #: Fixed per-group-write setup latency (seconds).
    write_latency: float
    #: Sustained write bandwidth (bytes/second).
    write_bandwidth: float
    #: Fixed per-restore latency (seconds).
    read_latency: float
    #: Sustained read bandwidth (bytes/second).
    read_bandwidth: float
    #: Crash-consistency protocol for the group write.
    protocol: WriteProtocol = WriteProtocol.ATOMIC_DIRSYNC
    #: Cost of one fsync barrier on this medium (seconds); the atomic
    #: protocol pays one per shard plus one directory sync.
    fsync_time: float = 0.0
    #: Fixed persist interval (seconds); None lets the §5 model / adaptive
    #: controller choose one from the tier's assumed failure rate.
    interval: float | None = None
    #: MTBF of the failure class this tier protects against (seconds),
    #: used by the Daly planner when ``interval`` is None.
    mtbf_assumed: float = 3600.0
    #: Fraction of observed failures deep enough to need this tier — scales
    #: the adaptive controller's fitted MTBF when it plans this tier's period.
    failure_share: float = 0.2
    #: Stored generations retained (oldest dropped beyond this).
    keep_generations: int = 2

    def __post_init__(self) -> None:
        if self.level not in (2, 3):
            raise ConfigurationError(
                f"tier level must be 2 or 3, got {self.level}")
        if self.write_latency < 0 or self.read_latency < 0 or self.fsync_time < 0:
            raise ConfigurationError("tier latencies must be non-negative")
        if self.write_bandwidth <= 0 or self.read_bandwidth <= 0:
            raise ConfigurationError("tier bandwidths must be positive")
        if self.interval is not None and self.interval <= 0:
            raise ConfigurationError("tier interval must be positive")
        if self.mtbf_assumed <= 0:
            raise ConfigurationError("tier mtbf_assumed must be positive")
        if not (0.0 < self.failure_share <= 1.0):
            raise ConfigurationError("failure_share must be in (0, 1]")
        if self.keep_generations < 1:
            raise ConfigurationError("keep_generations must be >= 1")

    # -- cost model -----------------------------------------------------------
    def write_time(self, nbytes: int, nshards: int) -> float:
        """Simulated seconds to persist one generation of ``nbytes`` total
        across ``nshards`` shard files under this tier's protocol."""
        base = self.write_latency + nbytes / self.write_bandwidth
        if self.protocol is WriteProtocol.ATOMIC_DIRSYNC:
            # One fsync per shard file plus the closing directory sync.
            base += self.fsync_time * (nshards + 1)
        return base

    def read_time(self, nbytes: int) -> float:
        """Simulated seconds to read one generation back during recovery."""
        return self.read_latency + nbytes / self.read_bandwidth

    def safety_overhead(self, nbytes: int, nshards: int) -> float:
        """Atomic-vs-unsafe write-time ratio for this payload (>= 1)."""
        unsafe = replace(self, protocol=WriteProtocol.UNSAFE)
        return self.with_protocol(WriteProtocol.ATOMIC_DIRSYNC).write_time(
            nbytes, nshards) / unsafe.write_time(nbytes, nshards)

    def with_protocol(self, protocol: WriteProtocol) -> "TierSpec":
        return replace(self, protocol=protocol)

    def with_interval(self, interval: float | None) -> "TierSpec":
        return replace(self, interval=interval)


#: Node-local disk/NVM defaults: ~ms setup, GB/s-class streaming.
NODE_LOCAL_TIER = TierSpec(
    level=2,
    name="node-local",
    write_latency=5e-3,
    write_bandwidth=1.2e9,
    read_latency=2e-3,
    read_bandwidth=2.0e9,
    fsync_time=4e-3,
    mtbf_assumed=1800.0,
    failure_share=0.2,
)

#: Shared parallel-FS defaults: tens of ms setup, contended bandwidth.
SHARED_FS_TIER = TierSpec(
    level=3,
    name="shared-fs",
    write_latency=2e-2,
    write_bandwidth=3.0e8,
    read_latency=1e-2,
    read_bandwidth=5.0e8,
    fsync_time=1.5e-2,
    mtbf_assumed=7200.0,
    failure_share=0.05,
)


def default_tiers(
    *,
    protocol: WriteProtocol = WriteProtocol.ATOMIC_DIRSYNC,
    tier2_interval: float | None = None,
    tier3_interval: float | None = None,
) -> tuple[TierSpec, TierSpec]:
    """The standard level-2 + level-3 pair, optionally pinned to intervals."""
    return (
        NODE_LOCAL_TIER.with_protocol(protocol).with_interval(tier2_interval),
        SHARED_FS_TIER.with_protocol(protocol).with_interval(tier3_interval),
    )
