"""Modeled durable checkpoint tiers (level 2/3) behind the in-memory store.

* :mod:`repro.storage.tiers` — per-tier cost models (latency, bandwidth,
  fsync barriers) and the unsafe vs. atomic-dirsync write protocols;
* :mod:`repro.storage.hierarchy` — the stored generations themselves, with
  SHA-256 integrity guards, torn-write/bit-rot fault simulation, and the
  fallback-scanning :meth:`~repro.storage.hierarchy.DurableHierarchy.restore`.

See ``docs/storage.md`` for the tier model and safety-overhead numbers.
"""

from repro.storage.hierarchy import (
    DurableHierarchy,
    RestoreResult,
    StoredGeneration,
    StoredShard,
    TierState,
)
from repro.storage.tiers import (
    NODE_LOCAL_TIER,
    SHARED_FS_TIER,
    TierSpec,
    WriteProtocol,
    default_tiers,
)

__all__ = [
    "DurableHierarchy",
    "RestoreResult",
    "StoredGeneration",
    "StoredShard",
    "TierState",
    "NODE_LOCAL_TIER",
    "SHARED_FS_TIER",
    "TierSpec",
    "WriteProtocol",
    "default_tiers",
]
