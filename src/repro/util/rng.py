"""Deterministic random-number streams.

Every stochastic component (fault injectors, application initial conditions,
tie-breaking) draws from its own named :class:`RngStream` spawned from a single
experiment seed, so that experiments are reproducible regardless of the order
in which components consume randomness.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStream:
    """A named, independently-seeded ``numpy`` random generator.

    The stream seed is derived from ``(root_seed, name)`` via SHA-256, so two
    streams with different names are statistically independent and the same
    ``(root_seed, name)`` pair always reproduces the same sequence.
    """

    def __init__(self, root_seed: int, name: str):
        self.root_seed = int(root_seed)
        self.name = str(name)
        digest = hashlib.sha256(f"{self.root_seed}:{self.name}".encode()).digest()
        self._seed = int.from_bytes(digest[:8], "little")
        self.generator = np.random.default_rng(self._seed)

    def child(self, suffix: str) -> "RngStream":
        """Spawn a dependent stream with a qualified name."""
        return RngStream(self.root_seed, f"{self.name}/{suffix}")

    # Convenience passthroughs -------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self.generator.uniform(low, high, size)

    def exponential(self, scale: float, size=None):
        return self.generator.exponential(scale, size)

    def weibull(self, shape: float, scale: float, size=None):
        """Weibull variates with explicit scale (numpy's is unit-scale)."""
        return scale * self.generator.weibull(shape, size)

    def integers(self, low: int, high: int | None = None, size=None):
        return self.generator.integers(low, high, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self.generator.normal(loc, scale, size)

    def choice(self, seq, size=None, replace: bool = True):
        return self.generator.choice(seq, size=size, replace=replace)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(root_seed={self.root_seed}, name={self.name!r})"


def spawn_streams(root_seed: int, *names: str) -> dict[str, RngStream]:
    """Create several named streams from one root seed."""
    return {name: RngStream(root_seed, name) for name in names}
