"""Shared utilities: unit conversions, seeded RNG streams, and error types."""

from repro.util.errors import (
    ACRError,
    CheckpointMismatchError,
    ConfigurationError,
    NoSpareNodeError,
    SimulationError,
)
from repro.util.hashing import (
    canonical_digest,
    canonical_json,
    digest_tree,
    to_jsonable,
)
from repro.util.rng import RngStream, spawn_streams
from repro.util.units import (
    FIT_PER_HOUR,
    GiB,
    HOURS,
    KiB,
    MINUTES,
    MiB,
    YEARS,
    fit_to_mtbf_seconds,
    mtbf_seconds_to_fit,
    parse_size,
    pretty_bytes,
    pretty_seconds,
)

__all__ = [
    "ACRError",
    "CheckpointMismatchError",
    "ConfigurationError",
    "NoSpareNodeError",
    "SimulationError",
    "canonical_digest",
    "canonical_json",
    "digest_tree",
    "to_jsonable",
    "RngStream",
    "spawn_streams",
    "FIT_PER_HOUR",
    "GiB",
    "HOURS",
    "KiB",
    "MINUTES",
    "MiB",
    "YEARS",
    "fit_to_mtbf_seconds",
    "mtbf_seconds_to_fit",
    "parse_size",
    "pretty_bytes",
    "pretty_seconds",
]
