"""Exception hierarchy for the ACR reproduction.

Every error raised by the library derives from :class:`ACRError` so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ACRError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ACRError):
    """An invalid configuration value or inconsistent combination of values."""


class SimulationError(ACRError):
    """The discrete-event simulation reached an invalid internal state."""


class NoSpareNodeError(ACRError):
    """A hard failure occurred but the spare-node pool is exhausted.

    The paper assumes the job scheduler provisions enough spares for the run;
    when the pool runs dry, real systems would abort the job, and so do we.
    """


class CheckpointMismatchError(ACRError):
    """Checkpoint comparison found corruption that recovery could not resolve."""
