"""Canonical JSON encoding and hashing — stable cache keys for result stores.

The campaign result store (:mod:`repro.store`) addresses every cached cell by
a SHA-256 digest of its *key material*: the experiment configuration, app,
seed, and a fingerprint of the source tree.  Two processes (or two machines)
must derive the same digest for the same logical cell, so the encoding here
is canonical: dataclasses and enums are lowered to plain values, dict keys
are stringified and sorted, floats keep their exact ``repr`` round-trip, and
anything without a deterministic representation is rejected rather than
hashed unstably.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum
from pathlib import Path
from typing import Any

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Lower ``obj`` to plain JSON-serializable values, deterministically.

    Handles the types that appear in experiment configurations and telemetry
    payloads: enums (by value), dataclasses (by field, tagged with the class
    name so two config types never collide), numpy scalars and arrays, and
    the usual containers.  Raises :class:`TypeError` for anything else —
    an object whose ``repr`` embeds a memory address must never silently
    become part of a cache key.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if is_dataclass(obj) and not isinstance(obj, type):
        lowered = {f.name: to_jsonable(getattr(obj, f.name)) for f in fields(obj)}
        lowered["__type__"] = type(obj).__name__
        return lowered
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, (range, set, frozenset)):
        return [to_jsonable(v) for v in sorted(obj)]
    raise TypeError(
        f"cannot canonically encode {type(obj).__name__!r} for hashing"
    )


def canonical_json(obj: Any) -> str:
    """The one canonical JSON text for ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))


def canonical_digest(obj: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def digest_tree(root: Path, pattern: str = "**/*.py") -> str:
    """SHA-256 over every ``pattern`` file under ``root`` (paths + contents).

    The digest covers the sorted relative paths *and* the file bytes, so both
    edits and renames change it.  This is the "code fingerprint" component of
    cache keys: results computed by different source trees never alias.
    """
    h = hashlib.sha256()
    root = Path(root)
    for path in sorted(root.glob(pattern)):
        if not path.is_file():
            continue
        h.update(path.relative_to(root).as_posix().encode("utf-8"))
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    return h.hexdigest()
