"""Unit helpers shared across the model, harness, and benchmarks.

The paper mixes several unit systems: checkpoint times in seconds, MTBFs in
years-per-socket, and SDC rates in FIT (failures in 10^9 device-hours).  This
module centralizes the conversions so each appears exactly once in the code
base.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

MINUTES = 60.0
HOURS = 3600.0
DAYS = 24 * HOURS
YEARS = 365.25 * DAYS

#: One FIT is one failure per 10^9 device-hours.
FIT_PER_HOUR = 1.0e-9

_SIZE_SUFFIXES = {
    "b": 1,
    "kib": KiB,
    "kb": 1000,
    "mib": MiB,
    "mb": 1000_000,
    "gib": GiB,
    "gb": 1000_000_000,
}


def fit_to_mtbf_seconds(fit: float, devices: int = 1) -> float:
    """Convert a FIT rate into a mean time between failures in seconds.

    Parameters
    ----------
    fit:
        Failure rate in FIT (failures per billion device-hours) per device.
    devices:
        Number of identical devices failing independently; the aggregate rate
        scales linearly (e.g. *sockets* in Figures 1 and 7 of the paper).
    """
    if devices <= 0:
        raise ValueError(f"devices must be positive, got {devices}")
    failures_per_hour = fit * FIT_PER_HOUR * devices
    # A subnormal FIT can underflow the product to exactly zero; either way
    # the rate is indistinguishable from "never fails".
    if failures_per_hour <= 0:
        return float("inf")
    return HOURS / failures_per_hour


def mtbf_seconds_to_fit(mtbf_seconds: float, devices: int = 1) -> float:
    """Inverse of :func:`fit_to_mtbf_seconds`."""
    if mtbf_seconds <= 0:
        raise ValueError(f"mtbf_seconds must be positive, got {mtbf_seconds}")
    if devices <= 0:
        raise ValueError(f"devices must be positive, got {devices}")
    failures_per_hour = HOURS / mtbf_seconds
    return failures_per_hour / (FIT_PER_HOUR * devices)


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size such as ``"4 MiB"`` into bytes."""
    if isinstance(text, (int, float)):
        return int(text)
    s = text.strip().lower().replace(" ", "")
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if s.endswith(suffix):
            number = s[: -len(suffix)]
            return int(float(number) * _SIZE_SUFFIXES[suffix])
    return int(float(s))


def pretty_bytes(n: float) -> str:
    """Format a byte count for reports (e.g. ``4.0 MiB``)."""
    n = float(n)
    for unit, scale in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {unit}"
    return f"{n:.0f} B"


def pretty_seconds(t: float) -> str:
    """Format a duration for reports (e.g. ``2.5 ms``, ``1.3 s``, ``4.2 min``)."""
    if t == float("inf"):
        return "inf"
    if abs(t) < 1e-3:
        return f"{t * 1e6:.1f} us"
    if abs(t) < 1.0:
        return f"{t * 1e3:.2f} ms"
    if abs(t) < 120.0:
        return f"{t:.3f} s"
    if abs(t) < 2 * HOURS:
        return f"{t / MINUTES:.2f} min"
    return f"{t / HOURS:.2f} h"
