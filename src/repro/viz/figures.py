"""Per-figure plot builders: glue between the data generators and the charts."""

from __future__ import annotations

import numpy as np

from repro.harness.figures import Fig8Row, Fig10Row, Fig12Result
from repro.model.schemes import ResilienceScheme
from repro.model.surfaces import Fig7Point, fig7_series
from repro.network.mapping import MappingScheme, build_mapping
from repro.network.topology import Torus3D
from repro.viz.ascii_chart import heatmap, line_chart, sparkline, stacked_bars


def plot_fig6_heatmap(torus_dims: tuple[int, int, int] = (8, 8, 8),
                      scheme: str = "default") -> str:
    """The Figure-6 front-plane link-load view as a value map."""
    torus = Torus3D(torus_dims)
    mapping = build_mapping(torus, MappingScheme(scheme))
    loads = mapping.exchange_loads(1)
    plane = np.maximum(loads.pos[2][:, 0, :], loads.neg[2][:, 0, :])
    return heatmap(
        plane, show_values=True, row_label="x=",
        title=f"Figure 6 ({scheme} mapping): checkpoint messages per Z-link, "
              f"front plane (Y=0) of {torus_dims}",
        col_label="z link position",
    )


def plot_fig7_utilization(points: list[Fig7Point], delta: float,
                          *, width: int = 70) -> str:
    """Figure 7(a): utilization vs sockets/replica, one series per scheme."""
    series = {}
    for scheme in ResilienceScheme:
        xs, ys = fig7_series(points, scheme, delta, "utilization")
        if len(xs):
            series[str(scheme)] = (list(xs), list(ys))
    return line_chart(
        series, width=width, logx=True, y_min=0.0, y_max=0.5,
        title=f"Figure 7(a): utilization vs sockets/replica (delta={delta:g}s)",
    )


def plot_fig8_bars(rows: list[Fig8Row], app: str, cores: int) -> str:
    """One Figure-8 panel slice: stacked phase bars per detection method."""
    sel = [r for r in rows if r.app == app and r.cores_per_replica == cores]
    labels = [r.method for r in sel]
    segments = {
        "local": [r.local for r in sel],
        "transfer": [r.transfer for r in sel],
        "compare": [r.compare for r in sel],
    }
    return stacked_bars(
        labels, segments, unit="s",
        title=f"Figure 8 ({app}, {cores // 1024}K cores/replica): "
              "checkpoint overhead decomposition",
    )


def plot_fig10_bars(rows: list[Fig10Row], app: str, cores: int) -> str:
    """One Figure-10 panel slice: restart phase bars per variant."""
    sel = [r for r in rows if r.app == app and r.cores_per_replica == cores]
    labels = [r.variant for r in sel]
    segments = {
        "transfer": [r.transfer for r in sel],
        "reconstruction": [r.reconstruction for r in sel],
    }
    return stacked_bars(
        labels, segments, unit="s",
        title=f"Figure 10 ({app}, {cores // 1024}K cores/replica): "
              "restart overhead decomposition",
    )


def plot_fig12_intervals(result: Fig12Result, *, width: int = 100) -> str:
    """Figure 12 as text: the event timeline plus the interval trajectory."""
    values = [v for _, v in result.intervals]
    lines = [
        "Figure 12: adaptivity of ACR to a changing failure rate",
        "timeline ('X' failure injected, '|' checkpoint performed):",
        result.ascii_timeline,
        "checkpoint-interval trajectory "
        f"(min {min(values):.1f}s, max {max(values):.1f}s):"
        if values else "(no interval history)",
    ]
    if values:
        lines.append(sparkline(values, width=width))
    return "\n".join(lines)
