"""Terminal plotting: line charts, stacked bars, and heatmaps in plain text.

The reproduction is terminal-first (no display on a cluster head node), so
the paper's figures render as ASCII: utilization curves (Fig. 7), stacked
overhead bars (Figs. 8/10), link-load heatmaps (Fig. 6), and the Figure-12
interval trajectory.  Everything returns strings; nothing touches a GUI.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.util.errors import ConfigurationError

#: Glyphs used for multiple series in a line chart, in order.
SERIES_GLYPHS = "ox+*#@%&"

#: Intensity ramp for heatmaps, light to dark.
HEAT_RAMP = " .:-=+*#%@"


def _format_tick(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 10_000 or abs(v) < 0.01:
        return f"{v:.1e}"
    if abs(v) >= 100:
        return f"{v:.0f}"
    return f"{v:.3g}"


def line_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 70,
    height: int = 18,
    title: str | None = None,
    logx: bool = False,
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Plot one or more (xs, ys) series on shared axes.

    Points are marked with per-series glyphs; a legend maps glyphs to labels.
    ``logx`` spaces the x axis logarithmically (socket-count sweeps).
    """
    if not series:
        raise ConfigurationError("line_chart needs at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError("chart too small")

    def tx(x: float) -> float:
        if not logx:
            return x
        if x <= 0:
            raise ConfigurationError("logx requires positive x values")
        return math.log10(x)

    all_x, all_y = [], []
    for xs, ys in series.values():
        if len(xs) != len(ys):
            raise ConfigurationError("series xs and ys must match in length")
        all_x += [tx(x) for x in xs]
        all_y += list(ys)
    if not all_x:
        raise ConfigurationError("series are empty")
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo = min(all_y) if y_min is None else y_min
    y_hi = max(all_y) if y_max is None else y_max
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (label, (xs, ys)) in zip(SERIES_GLYPHS, series.items()):
        for x, y in zip(xs, ys):
            cx = int(round((tx(x) - x_lo) / (x_hi - x_lo) * (width - 1)))
            cy = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            row = height - 1 - cy
            if 0 <= row < height and 0 <= cx < width:
                grid[row][cx] = glyph

    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = max(len(_format_tick(y_hi)), len(_format_tick(y_lo)))
    for i, row in enumerate(grid):
        if i == 0:
            ylab = _format_tick(y_hi)
        elif i == height - 1:
            ylab = _format_tick(y_lo)
        else:
            ylab = ""
        lines.append(f"{ylab.rjust(label_width)} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_left = _format_tick(10 ** x_lo if logx else x_lo)
    x_right = _format_tick(10 ** x_hi if logx else x_hi)
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * (label_width + 2) + x_left + " " * max(pad, 1) + x_right)
    legend = "   ".join(f"{glyph}={label}"
                        for glyph, label in zip(SERIES_GLYPHS, series))
    lines.append("legend: " + legend)
    return "\n".join(lines)


def stacked_bars(
    labels: Sequence[str],
    segments: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal stacked bars — one bar per label, one glyph per segment.

    The Figure-8/10 shape: each bar decomposes a total into phases (local /
    transfer / compare; transfer / reconstruction).
    """
    if not labels or not segments:
        raise ConfigurationError("stacked_bars needs labels and segments")
    for name, values in segments.items():
        if len(values) != len(labels):
            raise ConfigurationError(
                f"segment {name!r} has {len(values)} values for "
                f"{len(labels)} labels")
        if any(v < 0 for v in values):
            raise ConfigurationError(f"segment {name!r} has negative values")

    totals = [sum(segments[s][i] for s in segments) for i in range(len(labels))]
    peak = max(totals) or 1.0
    label_width = max(len(lab) for lab in labels)
    lines: list[str] = []
    if title:
        lines.append(title)
    for i, lab in enumerate(labels):
        bar = ""
        for glyph, name in zip(SERIES_GLYPHS, segments):
            cells = int(round(segments[name][i] / peak * width))
            bar += glyph * cells
        total_txt = _format_tick(totals[i]) + (f" {unit}" if unit else "")
        lines.append(f"{lab.rjust(label_width)} |{bar.ljust(width)}| {total_txt}")
    legend = "   ".join(f"{glyph}={name}"
                        for glyph, name in zip(SERIES_GLYPHS, segments))
    lines.append("legend: " + legend)
    return "\n".join(lines)


def heatmap(
    matrix: np.ndarray,
    *,
    title: str | None = None,
    row_label: str = "",
    col_label: str = "",
    show_values: bool = False,
) -> str:
    """Render a 2D non-negative matrix as an intensity map (Fig. 6 views)."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ConfigurationError("heatmap needs a 2D matrix")
    if arr.size == 0:
        raise ConfigurationError("heatmap matrix is empty")
    if (arr < 0).any():
        raise ConfigurationError("heatmap values must be non-negative")
    peak = arr.max()
    lines: list[str] = []
    if title:
        lines.append(title)
    if col_label:
        lines.append(f"   ({col_label} →)")
    for r in range(arr.shape[0]):
        if show_values:
            width = max(len(str(int(peak))), 1)
            cells = " ".join(str(int(v)).rjust(width) for v in arr[r])
        else:
            cells = "".join(
                HEAT_RAMP[min(int(v / peak * (len(HEAT_RAMP) - 1)),
                              len(HEAT_RAMP) - 1)] if peak > 0 else HEAT_RAMP[0]
                for v in arr[r]
            )
        prefix = f"{row_label}{r}:" if row_label else f"{r}:"
        lines.append(f"{prefix.rjust(6)} {cells}")
    lines.append(f"scale: min={arr.min():.3g} max={peak:.3g} "
                 f"(ramp '{HEAT_RAMP}')")
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, width: int | None = None) -> str:
    """A one-line trend (the Figure-12 interval trajectory at a glance)."""
    ramp = "▁▂▃▄▅▆▇█"
    vals = list(values)
    if not vals:
        raise ConfigurationError("sparkline needs values")
    if width is not None and len(vals) > width:
        # Downsample by bucket means.
        buckets = np.array_split(np.asarray(vals, dtype=float), width)
        vals = [float(b.mean()) for b in buckets]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return ramp[0] * len(vals)
    return "".join(
        ramp[min(int((v - lo) / (hi - lo) * (len(ramp) - 1)), len(ramp) - 1)]
        for v in vals
    )
