"""Terminal-first visualization of the paper's figures."""

from repro.viz.ascii_chart import (
    HEAT_RAMP,
    SERIES_GLYPHS,
    heatmap,
    line_chart,
    sparkline,
    stacked_bars,
)
from repro.viz.figures import (
    plot_fig6_heatmap,
    plot_fig7_utilization,
    plot_fig8_bars,
    plot_fig10_bars,
    plot_fig12_intervals,
)

__all__ = [
    "HEAT_RAMP",
    "SERIES_GLYPHS",
    "heatmap",
    "line_chart",
    "sparkline",
    "stacked_bars",
    "plot_fig6_heatmap",
    "plot_fig7_utilization",
    "plot_fig8_bars",
    "plot_fig10_bars",
    "plot_fig12_intervals",
]
