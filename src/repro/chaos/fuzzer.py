"""Chaos schedule fuzzing: randomized, phase-aware fault schedules.

One seed deterministically generates one :class:`ChaosSchedule` — a full ACR
configuration (scheme × blocking/async × checksum/full-compare, node count,
checkpoint period) plus an :class:`~repro.faults.injector.InjectionPlan`
whose fault *timing is aimed at protocol phases*.  A failure-free probe run
of the chosen configuration maps out where consensus rounds, pack/transfer
windows, and post-checkpoint gaps fall on the clock; faults are then placed
inside those windows (or chained after an earlier fault to land in recovery
and weak-pending windows, or fired back-to-back at a buddy pair).

Everything is derived from ``RngStream(seed, ...)``, so a schedule — and the
monitored run it drives — is bitwise-reproducible from its seed alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.core.config import ACRConfig
from repro.core.events import TimelineKind
from repro.faults.injector import FaultEvent, FaultKind, InjectionPlan
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

#: The coverage base: every combination of scheme × checkpoint mode ×
#: comparison mode appears once per 12 consecutive seeds.
SCHEMES = ("strong", "medium", "weak")

#: Fault-timing targeting modes the fuzzer draws from.
TARGETING_MODES = (
    "consensus",        # inside a consensus round (request → decision)
    "pack-transfer",    # between the decision and checkpoint completion
    "post-checkpoint",  # right after a checkpoint commits
    "chained",          # shortly after an earlier fault: recovery /
                        # weak-pending windows
    "buddy-pair",       # back-to-back hard faults on one buddy pair
    "random",           # anywhere in the run
    "storage-torn",     # tear the next durable-tier group write
    "storage-rot",      # flip a bit at rest in a stored generation
    "storage-spike",    # pathological latency on the next group write
)

#: Storage-fault targeting modes (only drawn for storage-enabled schedules).
STORAGE_MODES = ("storage-torn", "storage-rot", "storage-spike")

_STORAGE_KIND_OF_MODE = {
    "storage-torn": FaultKind.TORN_WRITE,
    "storage-rot": FaultKind.BIT_ROT,
    "storage-spike": FaultKind.WRITE_SPIKE,
}

#: Heartbeat detection latency bound used when chaining faults into the
#: recovery window opened by an earlier fault (timeout_factor * interval).
_DETECTION_LATENCY = 4.0 * 0.5


@dataclass(frozen=True)
class ChaosSchedule:
    """One fuzzed scenario: configuration axes plus a fault schedule."""

    seed: int
    app: str
    nodes_per_replica: int
    scheme: str
    async_checkpointing: bool
    use_checksum: bool
    checkpoint_interval: float
    total_iterations: int
    tasks_per_node: int
    spare_nodes: int
    horizon: float
    events: tuple[FaultEvent, ...] = ()
    #: Targeting mode used for each entry of ``events`` (diagnostics only).
    modes: tuple[str, ...] = ()
    #: Run with the default durable tiers (levels 2+3) behind the store.
    storage_tiers: bool = False
    #: Group-write protocol for the tiers ("unsafe" | "atomic-dirsync").
    storage_protocol: str = "atomic-dirsync"

    def plan(self) -> InjectionPlan:
        return InjectionPlan(list(self.events))

    def config(self) -> ACRConfig:
        from repro.model.schemes import ResilienceScheme

        tiers: tuple = ()
        if self.storage_tiers:
            from repro.storage.tiers import WriteProtocol, default_tiers

            # Pin the tier periods to multiples of the level-1 interval so
            # persists (and the faults aimed at them) actually fire within
            # the bounded chaotic run.
            tiers = default_tiers(
                protocol=WriteProtocol(self.storage_protocol),
                tier2_interval=2.0 * self.checkpoint_interval,
                tier3_interval=5.0 * self.checkpoint_interval,
            )
        return ACRConfig(
            scheme=ResilienceScheme(self.scheme),
            async_checkpointing=self.async_checkpointing,
            use_checksum=self.use_checksum,
            checkpoint_interval=self.checkpoint_interval,
            total_iterations=self.total_iterations,
            tasks_per_node=self.tasks_per_node,
            spare_nodes=self.spare_nodes,
            app_scale=1e-4,
            seed=self.seed,
            storage_tiers=tiers,
        )

    def with_events(self, events: tuple[FaultEvent, ...],
                    modes: tuple[str, ...] | None = None) -> "ChaosSchedule":
        if modes is None:
            modes = ("?",) * len(events)
        return replace(self, events=tuple(events), modes=tuple(modes))

    # -- serialization (replayable repro plans) ---------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "app": self.app,
            "nodes_per_replica": self.nodes_per_replica,
            "scheme": self.scheme,
            "async_checkpointing": self.async_checkpointing,
            "use_checksum": self.use_checksum,
            "checkpoint_interval": self.checkpoint_interval,
            "total_iterations": self.total_iterations,
            "tasks_per_node": self.tasks_per_node,
            "spare_nodes": self.spare_nodes,
            "horizon": self.horizon,
            "events": [
                {"time": e.time, "kind": str(e.kind), "replica": e.replica,
                 "node_id": e.node_id, "level": e.level}
                for e in self.events
            ],
            "modes": list(self.modes),
            "storage_tiers": self.storage_tiers,
            "storage_protocol": self.storage_protocol,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSchedule":
        events = tuple(
            FaultEvent(time=float(e["time"]), kind=FaultKind(e["kind"]),
                       replica=int(e["replica"]), node_id=int(e["node_id"]),
                       level=int(e.get("level", 0)))
            for e in data["events"]
        )
        modes = tuple(data.get("modes") or ("?",) * len(events))
        return cls(
            seed=int(data["seed"]),
            app=str(data["app"]),
            nodes_per_replica=int(data["nodes_per_replica"]),
            scheme=str(data["scheme"]),
            async_checkpointing=bool(data["async_checkpointing"]),
            use_checksum=bool(data["use_checksum"]),
            checkpoint_interval=float(data["checkpoint_interval"]),
            total_iterations=int(data["total_iterations"]),
            tasks_per_node=int(data["tasks_per_node"]),
            spare_nodes=int(data["spare_nodes"]),
            horizon=float(data["horizon"]),
            events=events,
            modes=modes,
            storage_tiers=bool(data.get("storage_tiers", False)),
            storage_protocol=str(data.get("storage_protocol",
                                          "atomic-dirsync")),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class PhaseWindows:
    """Protocol-phase time windows mapped out by a failure-free probe run."""

    consensus: tuple[tuple[float, float], ...]
    pack_transfer: tuple[tuple[float, float], ...]
    checkpoint_done: tuple[float, ...]
    final_time: float


def probe_phase_windows(schedule: ChaosSchedule) -> PhaseWindows:
    """Run the schedule's configuration fault-free and extract phase windows."""
    from repro.core.framework import ACR

    acr = ACR(schedule.app, nodes_per_replica=schedule.nodes_per_replica,
              config=schedule.config(), injection_plan=InjectionPlan())
    report = acr.run(until=schedule.horizon, max_events=50_000_000)
    starts = report.timeline.times_of(TimelineKind.CONSENSUS_START)
    decisions = report.timeline.times_of(TimelineKind.CONSENSUS_DECIDED)
    dones = report.timeline.times_of(TimelineKind.CHECKPOINT_DONE)
    consensus = tuple(zip(starts, decisions))
    pack_transfer = tuple(zip(decisions, dones))
    return PhaseWindows(
        consensus=consensus,
        pack_transfer=pack_transfer,
        checkpoint_done=tuple(dones),
        final_time=report.final_time,
    )


def _pick_window(rng: RngStream,
                 windows: tuple[tuple[float, float], ...]) -> float | None:
    usable = [(a, b) for a, b in windows if b > a]
    if not usable:
        return None
    a, b = usable[int(rng.integers(0, len(usable)))]
    return float(rng.uniform(a, b))


def fuzz_schedule(seed: int, *, app: str = "jacobi3d-charm") -> ChaosSchedule:
    """Deterministically fuzz one schedule from ``seed``.

    The configuration axes cycle so any 12 consecutive seeds cover all three
    schemes × blocking/async × checksum/full-compare; two further axes turn
    the durable storage tiers on every other dozen and alternate their write
    protocol, and the remaining knobs and the fault schedule are drawn from
    seed-derived random streams.
    """
    if seed < 0:
        raise ConfigurationError(f"chaos seed must be >= 0, got {seed}")
    rng = RngStream(seed, "chaos/fuzzer")
    scheme = SCHEMES[seed % 3]
    async_ckpt = bool((seed // 3) % 2)
    use_checksum = bool((seed // 6) % 2)
    storage_tiers = bool((seed // 12) % 2)
    storage_protocol = "unsafe" if (seed // 24) % 2 else "atomic-dirsync"
    nodes = int(rng.integers(2, 5))
    tasks_per_node = int(rng.integers(1, 3))
    interval = float(rng.uniform(1.5, 5.0))
    iterations = int(rng.integers(40, 121))
    base = ChaosSchedule(
        seed=seed,
        app=app,
        nodes_per_replica=nodes,
        scheme=scheme,
        async_checkpointing=async_ckpt,
        use_checksum=use_checksum,
        checkpoint_interval=interval,
        total_iterations=iterations,
        tasks_per_node=tasks_per_node,
        spare_nodes=16,
        horizon=0.0,  # patched below from the probe run
        events=(),
        storage_tiers=storage_tiers,
        storage_protocol=storage_protocol,
    )
    # Probe with a generous provisional horizon, then bound the chaotic run
    # at a multiple of the failure-free duration (rollbacks cost rework).
    probe_sched = replace(base, horizon=10_000.0)
    windows = probe_phase_windows(probe_sched)
    horizon = 12.0 * windows.final_time + 120.0
    events, modes = _draw_faults(rng, base, windows)
    return replace(base, horizon=horizon, events=tuple(events),
                   modes=tuple(modes))


def _draw_faults(rng: RngStream, sched: ChaosSchedule,
                 windows: PhaseWindows) -> tuple[list[FaultEvent], list[str]]:
    n_faults = int(rng.integers(1, 5))
    events: list[FaultEvent] = []
    modes: list[str] = []
    mode_rng = rng.child("modes")
    for i in range(n_faults):
        mode = TARGETING_MODES[int(mode_rng.integers(0, len(TARGETING_MODES)))]
        kind = (FaultKind.SDC if rng.uniform() < 0.25 else FaultKind.HARD)
        replica = int(rng.integers(0, 2))
        rank = int(rng.integers(0, sched.nodes_per_replica))
        if mode == "consensus":
            t = _pick_window(rng, windows.consensus)
        elif mode == "pack-transfer":
            t = _pick_window(rng, windows.pack_transfer)
        elif mode == "post-checkpoint":
            if windows.checkpoint_done:
                done = windows.checkpoint_done[
                    int(rng.integers(0, len(windows.checkpoint_done)))]
                t = done + float(rng.uniform(0.0, 0.3))
            else:
                t = None
        elif mode == "chained" and events:
            # Land in the detection + recovery (or weak-pending) window the
            # previous fault opens; hard faults only — that is the cascade.
            prev = events[-1]
            t = prev.time + _DETECTION_LATENCY * float(rng.uniform(0.5, 3.0))
            kind = FaultKind.HARD
        elif mode == "buddy-pair":
            # Two back-to-back hard faults on the same rank, both replicas:
            # the §2.3 worst case (nobody holds the pair's checkpoint).
            t = float(rng.uniform(1.0, max(windows.final_time, 2.0)))
            gap = float(rng.uniform(0.0, 3.0))
            events.append(FaultEvent(time=t, kind=FaultKind.HARD,
                                     replica=replica, node_id=rank))
            modes.append(mode)
            events.append(FaultEvent(time=t + gap, kind=FaultKind.HARD,
                                     replica=1 - replica, node_id=rank))
            modes.append(mode)
            continue
        else:
            mode = "random"
            t = None
        if t is None:
            mode = "random"
            t = float(rng.uniform(0.5, max(windows.final_time, 2.0)))
        events.append(FaultEvent(time=float(t), kind=kind, replica=replica,
                                 node_id=rank))
        modes.append(mode)
    if sched.storage_tiers:
        # Storage faults come from a dedicated child stream AFTER the node
        # faults, so enabling the tiers never perturbs the base draws above.
        srng = rng.child("storage")
        for _ in range(int(srng.integers(1, 4))):
            mode = STORAGE_MODES[int(srng.integers(0, len(STORAGE_MODES)))]
            level = 2 if srng.uniform() < 0.7 else 3
            t = float(srng.uniform(0.5, max(windows.final_time, 2.0)))
            events.append(FaultEvent(time=t, kind=_STORAGE_KIND_OF_MODE[mode],
                                     replica=0, node_id=0, level=level))
            modes.append(mode)
    order = sorted(range(len(events)), key=lambda j: events[j].time)
    return [events[j] for j in order], [modes[j] for j in order]
