"""Chaos testing for the ACR protocol state machine.

Fuzz randomized, phase-aware fault schedules (:mod:`repro.chaos.fuzzer`),
run them under a catalog of runtime invariants
(:mod:`repro.chaos.monitor`), shrink failures to minimal replayable repro
plans (:mod:`repro.chaos.shrinker`), and drive whole campaigns in parallel
(:mod:`repro.chaos.campaign`).
"""

from repro.chaos.campaign import ChaosCampaignResult, run_chaos_campaign
from repro.chaos.fuzzer import (
    ChaosSchedule,
    PhaseWindows,
    TARGETING_MODES,
    fuzz_schedule,
    probe_phase_windows,
)
from repro.chaos.monitor import (
    InvariantMonitor,
    InvariantViolation,
    LEGAL_TRANSITIONS,
)
from repro.chaos.runner import ChaosOutcome, run_chaos_seed, run_schedule
from repro.chaos.shrinker import ShrinkResult, shrink_schedule

__all__ = [
    "ChaosCampaignResult",
    "ChaosOutcome",
    "ChaosSchedule",
    "InvariantMonitor",
    "InvariantViolation",
    "LEGAL_TRANSITIONS",
    "PhaseWindows",
    "ShrinkResult",
    "TARGETING_MODES",
    "fuzz_schedule",
    "probe_phase_windows",
    "run_chaos_campaign",
    "run_chaos_seed",
    "run_schedule",
    "shrink_schedule",
]
