"""Execute one chaos schedule under full invariant monitoring.

The runner is the bridge between the fuzzer and the framework: it builds the
ACR job a :class:`~repro.chaos.fuzzer.ChaosSchedule` describes, attaches an
:class:`~repro.chaos.monitor.InvariantMonitor`, runs the simulation, and
folds the outcome — including any violation and a reproducibility
fingerprint — into a picklable :class:`ChaosOutcome`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.chaos.fuzzer import ChaosSchedule, fuzz_schedule
from repro.chaos.monitor import InvariantMonitor, InvariantViolation
from repro.core.events import TimelineKind
from repro.obs.flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.util.errors import ACRError


@dataclass
class ChaosOutcome:
    """Result of one monitored chaos run (picklable, crosses process pools)."""

    seed: int
    ok: bool
    invariant: str | None = None
    violation: str | None = None
    completed: bool = False
    aborted_reason: str | None = None
    final_time: float = 0.0
    checkpoints: int = 0
    rollbacks: int = 0
    hard_injected: int = 0
    hard_detected: int = 0
    sdc_injected: int = 0
    sdc_detected: int = 0
    recoveries: dict[str, int] = field(default_factory=dict)
    checks_performed: int = 0
    #: SHA-256 over the run's observable behaviour; equal fingerprints mean
    #: bitwise-identical replays.
    fingerprint: str = ""
    schedule: dict = field(default_factory=dict)
    #: End-of-run metrics snapshot (plain dict, see
    #: :meth:`repro.obs.metrics.MetricsRegistry.snapshot`) — shipped home
    #: alongside the repro plan for every schedule, passing or failing.
    metrics: dict = field(default_factory=dict)
    #: Path of the flight-recorder artifact dumped for a failing run (None
    #: for passing runs or when no ``flight_dir`` was configured); see
    #: :class:`repro.obs.flight.FlightRecorder`.
    flight_path: str | None = None

    @property
    def scheme(self) -> str:
        return str(self.schedule.get("scheme", "?"))


def _fingerprint(report) -> str:
    h = hashlib.sha256()
    h.update(repr(report.final_time).encode())
    h.update(repr(report.iterations_completed).encode())
    for e in report.timeline.events:
        h.update(f"{e.time!r}:{e.kind}:{sorted(e.detail.items())!r}".encode())
    for replica in sorted(report.digests):
        h.update(report.digests[replica].tobytes())
    return h.hexdigest()


def run_schedule(schedule: ChaosSchedule, *,
                 flight_dir: str | None = None,
                 flight_capacity: int = DEFAULT_FLIGHT_CAPACITY) -> ChaosOutcome:
    """Run one schedule to its horizon with every invariant armed.

    With ``flight_dir`` set, a :class:`~repro.obs.flight.FlightRecorder`
    rides along (passively — it never schedules events, so the execution is
    unchanged) and a failing run dumps its event tail plus the replayable
    schedule to ``<flight_dir>/flight-seed<seed>.json``; the artifact path
    comes back on :attr:`ChaosOutcome.flight_path`.
    """
    from repro.core.framework import ACR

    acr = ACR(schedule.app, nodes_per_replica=schedule.nodes_per_replica,
              config=schedule.config(), injection_plan=schedule.plan(),
              metrics=MetricsRegistry())
    flight = None
    if flight_dir is not None:
        flight = FlightRecorder(capacity=flight_capacity)
        flight.attach(acr)
    monitor = InvariantMonitor().attach(acr)
    outcome = ChaosOutcome(seed=schedule.seed, ok=True,
                           schedule=schedule.to_dict())
    try:
        report = acr.run(until=schedule.horizon, max_events=50_000_000)
        monitor.final_check(report)
    except InvariantViolation as violation:
        outcome.ok = False
        outcome.invariant = violation.invariant
        outcome.violation = str(violation)
    except ACRError as error:
        # Any other library error escaping the state machine is itself a
        # protocol defect: the run must end in done, not in a stack trace.
        outcome.ok = False
        outcome.invariant = "no-crash"
        outcome.violation = f"{type(error).__name__}: {error}"
    report = acr.report
    outcome.completed = report.completed
    outcome.aborted_reason = report.aborted_reason
    outcome.final_time = acr.sim.now
    outcome.checkpoints = report.checkpoints_completed
    outcome.rollbacks = report.rollbacks
    outcome.hard_injected = report.hard_injected
    outcome.hard_detected = report.hard_detected
    outcome.sdc_injected = report.sdc_injected
    outcome.sdc_detected = report.sdc_detected
    outcome.recoveries = dict(report.recoveries)
    outcome.checks_performed = monitor.checks_performed
    outcome.fingerprint = _fingerprint(report)
    # Snapshot even when the run died mid-protocol: the metrics of a failing
    # schedule are exactly the ones worth keeping.
    outcome.metrics = acr.metrics_snapshot()
    if flight is not None:
        flight.detach()
        if not outcome.ok:
            from pathlib import Path

            path = Path(flight_dir) / f"flight-seed{schedule.seed}.json"
            flight.dump(
                path,
                reason="invariant_violation" if outcome.invariant != "no-crash"
                else "run_raised",
                invariant=outcome.invariant,
                violation=outcome.violation,
                schedule=outcome.schedule,
                context={"seed": schedule.seed,
                         "final_time": outcome.final_time,
                         "fingerprint": outcome.fingerprint},
            )
            outcome.flight_path = str(path)
    return outcome


def run_chaos_seed(seed: int, app: str = "jacobi3d-charm",
                   flight_dir: str | None = None) -> ChaosOutcome:
    """Fuzz + run one seed end to end (module-level, hence picklable)."""
    return run_schedule(fuzz_schedule(seed, app=app), flight_dir=flight_dir)
