"""Minimize a failing chaos schedule to a replayable repro plan.

Classic delta debugging (Zeller's ddmin) over the fault-event list: chunks of
events are bisected away while the invariant violation persists, converging
on a 1-minimal schedule — removing any single remaining fault makes the
failure disappear.  Because every run is a deterministic replay of its
schedule, a minimized plan is a perfect regression test: serialize it with
``ChaosSchedule.to_json`` and replay it with ``repro chaos --replay``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.chaos.fuzzer import ChaosSchedule
from repro.chaos.runner import ChaosOutcome, run_schedule


@dataclass
class ShrinkResult:
    """A minimized schedule plus the shrinking effort it took."""

    schedule: ChaosSchedule
    outcome: ChaosOutcome
    original_events: int
    minimized_events: int
    runs_spent: int

    @property
    def removed(self) -> int:
        return self.original_events - self.minimized_events


def _default_fails(schedule: ChaosSchedule) -> ChaosOutcome | None:
    """Run the schedule; truthy (the outcome) when an invariant still breaks."""
    outcome = run_schedule(schedule)
    return None if outcome.ok else outcome


def shrink_schedule(
    schedule: ChaosSchedule,
    *,
    fails: Callable[[ChaosSchedule], ChaosOutcome | None] | None = None,
    max_runs: int = 200,
) -> ShrinkResult:
    """ddmin the schedule's fault list down to a minimal failing core.

    ``fails(candidate)`` returns a failing :class:`ChaosOutcome` (or ``None``
    if the candidate passes); the default replays the candidate under the
    invariant monitor.  ``max_runs`` bounds the total replays spent.
    """
    fails = fails or _default_fails
    runs = 0

    def test(events: list) -> ChaosOutcome | None:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        candidate = schedule.with_events(tuple(events))
        return fails(candidate)

    events = list(schedule.events)
    outcome = fails(schedule)
    runs += 1
    if outcome is None:
        raise ValueError("shrink_schedule needs a failing schedule")

    granularity = 2
    while len(events) >= 2 and runs < max_runs:
        chunk = max(1, len(events) // granularity)
        reduced = False
        for start in range(0, len(events), chunk):
            complement = events[:start] + events[start + chunk:]
            if not complement:
                continue
            failing = test(complement)
            if failing is not None:
                events = complement
                outcome = failing
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)

    # Final 1-minimality sweep: drop single events while the failure holds.
    changed = True
    while changed and runs < max_runs:
        changed = False
        for i in range(len(events)):
            if len(events) <= 1:
                break
            candidate = events[:i] + events[i + 1:]
            failing = test(candidate)
            if failing is not None:
                events = candidate
                outcome = failing
                changed = True
                break

    minimized = schedule.with_events(tuple(events))
    return ShrinkResult(
        schedule=minimized,
        outcome=outcome,
        original_events=len(schedule.events),
        minimized_events=len(events),
        runs_spent=runs,
    )
