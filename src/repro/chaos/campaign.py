"""Chaos campaigns: fuzz many seeds, in parallel, and aggregate verdicts.

``run_chaos_campaign(seeds, workers=N)`` drives one monitored chaos run per
seed over the same process-pool fan-out the experiment campaigns use (each
seed re-derives everything from itself, so parallel results are
bitwise-identical to serial), then shrinks every failing schedule to a
minimal replayable repro plan.

Like experiment campaigns, chaos sweeps are resumable: with ``cache_dir=``
(or a :class:`~repro.store.ResultStore`) every verdict is persisted as it
lands, keyed by (seed, app, code fingerprint) — a schedule is a pure
function of its seed, so those pin the outcome completely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.chaos.runner import ChaosOutcome, run_chaos_seed
from repro.chaos.shrinker import ShrinkResult, shrink_schedule
from repro.chaos.fuzzer import ChaosSchedule
from repro.harness.campaign import effective_workers, fan_out
from repro.obs.metrics import merge_snapshots
from repro.obs.progress import ProgressTracker
from repro.store import (
    KIND_CHAOS_OUTCOME,
    ResultStore,
    chaos_cell_material,
    outcome_from_dict,
    outcome_to_dict,
)


@dataclass
class ChaosCampaignResult:
    """Verdicts of one chaos campaign."""

    seeds: list[int]
    outcomes: list[ChaosOutcome]
    shrunk: list[ShrinkResult] = field(default_factory=list)
    #: Verdicts loaded from the result store instead of re-run.
    cache_hits: int = 0
    #: Verdicts actually executed this invocation.
    cache_misses: int = 0

    @property
    def failures(self) -> list[ChaosOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_checks(self) -> int:
        return sum(o.checks_performed for o in self.outcomes)

    def merged_metrics(self) -> dict:
        """Campaign-wide metrics snapshot (counters add, gauges last-writer
        by worker index, histograms merge bucket-wise across every
        schedule's run)."""
        return merge_snapshots([o.metrics for o in self.outcomes])

    def coverage(self) -> dict[str, int]:
        """Schedules per (scheme, mode) cell — the fuzzer's coverage matrix."""
        cells: dict[str, int] = {}
        for o in self.outcomes:
            sched = o.schedule
            key = "{}/{}/{}".format(
                sched.get("scheme", "?"),
                "async" if sched.get("async_checkpointing") else "blocking",
                "checksum" if sched.get("use_checksum") else "full-compare",
            )
            cells[key] = cells.get(key, 0) + 1
        return cells


def run_chaos_campaign(
    seeds: Sequence[int] | int,
    *,
    workers: int | None = None,
    app: str = "jacobi3d-charm",
    shrink: bool = True,
    shrink_max_runs: int = 200,
    cache: ResultStore | None = None,
    cache_dir: str | None = None,
    resume: bool = True,
    flight_dir: str | None = None,
    progress: ProgressTracker | None = None,
) -> ChaosCampaignResult:
    """Fuzz + run + verify one schedule per seed; shrink any failures.

    ``seeds`` is a sequence of seeds or a count (meaning ``range(count)``).
    ``workers`` > 1 fans the runs out over a process pool (clamped to
    ``os.cpu_count()``); results are ordered by seed and bitwise-identical
    to the serial path.  ``cache`` /
    ``cache_dir`` persist each verdict as it completes and — with ``resume``
    (the default) — load cached verdicts instead of re-running them.

    ``flight_dir`` arms a flight recorder on every run: failing seeds dump
    their recent-event tail plus the replayable schedule there (see
    :func:`repro.chaos.runner.run_schedule`).  When a result store is
    configured and no explicit ``flight_dir`` is given, dumps land in the
    store's ``quarantine/`` directory — forensic artifacts live next to the
    other objects the store had to set aside.  ``progress`` receives a tick
    per verdict (cached, passed, or failed).
    """
    if isinstance(seeds, int):
        seeds = range(seeds)
    seed_list = [int(s) for s in seeds]
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    store = cache if cache is not None else (
        ResultStore(cache_dir) if cache_dir is not None else None
    )
    if flight_dir is None and store is not None:
        flight_dir = str(store.quarantine_dir)

    outcomes: list[ChaosOutcome | None] = [None] * len(seed_list)
    materials: dict[int, dict] = {}
    hits = 0
    pending: list[tuple[int, int]] = []  # (position, seed)
    for pos, seed in enumerate(seed_list):
        if store is not None:
            materials[pos] = chaos_cell_material(seed, app)
            if resume:
                payload = store.get(materials[pos])
                if payload is not None:
                    outcomes[pos] = outcome_from_dict(payload)
                    hits += 1
                    if progress is not None:
                        progress.cell_cached()
                    continue
        pending.append((pos, seed))

    def commit(pos: int, outcome: ChaosOutcome) -> None:
        outcomes[pos] = outcome
        if store is not None:
            store.put(
                materials[pos], outcome_to_dict(outcome),
                kind=KIND_CHAOS_OUTCOME,
            )
        if progress is not None:
            if outcome.ok:
                progress.cell_completed()
            else:
                progress.cell_failed()

    if pending:
        nworkers = effective_workers(workers, len(pending))
        done = None
        if nworkers > 1:
            positions = [pos for pos, _ in pending]
            done = fan_out(
                run_chaos_seed,
                [(seed, app, flight_dir) for _, seed in pending],
                nworkers,
                on_result=lambda j, outcome: commit(positions[j], outcome),
            )
        if done is None:
            for pos, seed in pending:
                if outcomes[pos] is None:
                    commit(pos, run_chaos_seed(seed, app, flight_dir))

    if progress is not None:
        progress.finish()
    final = [o for o in outcomes if o is not None]
    assert len(final) == len(seed_list)
    result = ChaosCampaignResult(
        seeds=seed_list,
        outcomes=final,
        cache_hits=hits,
        cache_misses=len(seed_list) - hits,
    )
    if shrink:
        for failure in result.failures:
            schedule = ChaosSchedule.from_dict(failure.schedule)
            try:
                result.shrunk.append(
                    shrink_schedule(schedule, max_runs=shrink_max_runs))
            except ValueError:
                # The failure did not reproduce on replay — report it
                # unshrunk rather than dropping it on the floor.
                continue
    return result
