"""Chaos campaigns: fuzz many seeds, in parallel, and aggregate verdicts.

``run_chaos_campaign(seeds, workers=N)`` drives one monitored chaos run per
seed over the same process-pool fan-out the experiment campaigns use (each
seed re-derives everything from itself, so parallel results are
bitwise-identical to serial), then shrinks every failing schedule to a
minimal replayable repro plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.chaos.runner import ChaosOutcome, run_chaos_seed
from repro.chaos.shrinker import ShrinkResult, shrink_schedule
from repro.chaos.fuzzer import ChaosSchedule
from repro.harness.campaign import fan_out
from repro.obs.metrics import merge_snapshots


@dataclass
class ChaosCampaignResult:
    """Verdicts of one chaos campaign."""

    seeds: list[int]
    outcomes: list[ChaosOutcome]
    shrunk: list[ShrinkResult] = field(default_factory=list)

    @property
    def failures(self) -> list[ChaosOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_checks(self) -> int:
        return sum(o.checks_performed for o in self.outcomes)

    def merged_metrics(self) -> dict:
        """Campaign-wide metrics snapshot (counters add, gauges take max,
        histograms merge bucket-wise across every schedule's run)."""
        return merge_snapshots([o.metrics for o in self.outcomes])

    def coverage(self) -> dict[str, int]:
        """Schedules per (scheme, mode) cell — the fuzzer's coverage matrix."""
        cells: dict[str, int] = {}
        for o in self.outcomes:
            sched = o.schedule
            key = "{}/{}/{}".format(
                sched.get("scheme", "?"),
                "async" if sched.get("async_checkpointing") else "blocking",
                "checksum" if sched.get("use_checksum") else "full-compare",
            )
            cells[key] = cells.get(key, 0) + 1
        return cells


def run_chaos_campaign(
    seeds: Sequence[int] | int,
    *,
    workers: int | None = None,
    app: str = "jacobi3d-charm",
    shrink: bool = True,
    shrink_max_runs: int = 200,
) -> ChaosCampaignResult:
    """Fuzz + run + verify one schedule per seed; shrink any failures.

    ``seeds`` is a sequence of seeds or a count (meaning ``range(count)``).
    ``workers`` > 1 fans the runs out over a process pool; results are
    ordered by seed and bitwise-identical to the serial path.
    """
    if isinstance(seeds, int):
        seeds = range(seeds)
    seed_list = [int(s) for s in seeds]
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    nworkers = min(workers or 1, max(len(seed_list), 1))
    outcomes = None
    if nworkers > 1:
        outcomes = fan_out(run_chaos_seed,
                           [(seed, app) for seed in seed_list], nworkers)
    if outcomes is None:
        outcomes = [run_chaos_seed(seed, app) for seed in seed_list]
    result = ChaosCampaignResult(seeds=seed_list, outcomes=outcomes)
    if shrink:
        for failure in result.failures:
            schedule = ChaosSchedule.from_dict(failure.schedule)
            try:
                result.shrunk.append(
                    shrink_schedule(schedule, max_runs=shrink_max_runs))
            except ValueError:
                # The failure did not reproduce on replay — report it
                # unshrunk rather than dropping it on the floor.
                continue
    return result
