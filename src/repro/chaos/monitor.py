"""Runtime invariant checking for the ACR protocol state machine.

The recovery logic in :mod:`repro.core.framework` is a hand-written state
machine whose hardest paths — second failures mid-recovery, deaths during
asynchronous transfer, weak-pending cascades — encode the paper's §2.3
correctness claims.  The :class:`InvariantMonitor` hooks the framework's
phase transitions, its timeline, and the :class:`CheckpointStore`, and
asserts a catalog of machine-checkable invariants on every event, turning
any fuzzed fault schedule into an oracle-checked test case.

Invariant catalog
-----------------

``phase-legal``
    Phase transitions follow the documented state machine
    (idle → running → consensus → checkpointing → … → done) and nothing
    transitions out of ``done``.
``timeline-monotone``
    Timeline event timestamps never decrease.
``generation-complete``
    Every committed or installed checkpoint generation holds a shard for
    every rank (no partially packed generation ever becomes a rollback
    target).
``safe-sync``
    The safe generations of the two replicas agree in iteration at every
    phase boundary, except inside a weak-pending window where the healthy
    replica legitimately checkpoints alone (§2.3, Fig. 5d).
``spare-accounting``
    ``spare_nodes_used`` matches the pool drain exactly, never exceeds the
    detected-failure count, and every revival consumed a spare.
``quiescence``
    Entering ``done`` leaves no pending checkpoint timer, phase event,
    background transfer, or consensus watchdog on the event queue.
``liveness``
    A finished run either completed or aborted with a reason — it did not
    silently hang at the horizon.
``result-correct``
    A completed bounded run has ``result_correct=True`` and both safe
    generations at the iteration cap: ACR's end-to-end guarantee.  The one
    documented exception is an undetected SDC landing in a *vulnerability
    window* — a weak-pending solo checkpoint or a medium-recovery checkpoint
    commits without comparison (§2.3), exactly the exposure the Section-5
    model quantifies.
``storage-monotone``
    Generations persisted to one durable tier never go backwards in
    iteration (a later group write always stores a later-or-equal state).
``storage-integrity``
    A durable-tier restore never serves a torn or rotted copy: every shard
    of the generation handed back to recovery re-verifies against its
    recorded SHA-256, the generation is complete, and the returned bytes
    equal the stored bytes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.checkpoint import CheckpointGeneration
from repro.util.errors import ACRError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.framework import ACR, RunReport


class InvariantViolation(ACRError):
    """An ACR protocol invariant failed during a monitored run."""

    def __init__(self, invariant: str, time: float, message: str):
        self.invariant = invariant
        self.time = time
        self.message = message
        super().__init__(f"[{invariant}] t={time:.6g}: {message}")


#: Legal protocol phase transitions.  Same-value assignments do not notify
#: (the framework's phase setter filters them), so self-loops are omitted.
LEGAL_TRANSITIONS: dict[str | None, frozenset[str]] = {
    None: frozenset({"idle"}),
    "idle": frozenset({"running"}),
    "running": frozenset({"consensus", "recovering", "done"}),
    "consensus": frozenset({"checkpointing", "running", "done"}),
    "checkpointing": frozenset({"running", "persisting", "recovering", "done"}),
    "persisting": frozenset({"running", "done"}),
    "recovering": frozenset({"running", "done"}),
    "done": frozenset(),
}


@dataclass
class InvariantMonitor:
    """Attachable runtime oracle for one :class:`~repro.core.framework.ACR` run.

    Usage::

        acr = ACR(...)
        monitor = InvariantMonitor().attach(acr)
        report = acr.run(...)
        monitor.final_check(report)   # raises InvariantViolation on failure

    Every check raises :class:`InvariantViolation` immediately (the DES
    propagates it out of ``run``), so the failing schedule, simulated time,
    and invariant name identify the defect precisely.
    """

    violations: list[InvariantViolation] = field(default_factory=list)
    checks_performed: int = 0
    transitions_seen: list[tuple[float, str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._acr: "ACR | None" = None
        self._last_event_time = 0.0
        #: Per-tier iteration high-water marks (storage-monotone).
        self._tier_last_iteration: dict[int, int] = {}

    # -- wiring --------------------------------------------------------------------
    def attach(self, acr: "ACR") -> "InvariantMonitor":
        if self._acr is not None:
            raise ACRError("InvariantMonitor is single-use; attach a fresh one")
        self._acr = acr
        acr.attach_observer(self)
        acr.store.observers.append(self)
        if getattr(acr, "storage", None) is not None:
            acr.storage.observers.append(self)
        # Subscribe (don't clobber): the telemetry tracer and this monitor
        # can both observe the same run's timeline.
        acr.timeline.subscribe(self._on_timeline_event)
        return self

    def _fail(self, invariant: str, message: str) -> None:
        violation = InvariantViolation(invariant, self._now(), message)
        self.violations.append(violation)
        raise violation

    def _now(self) -> float:
        return self._acr.sim.now if self._acr is not None else 0.0

    # -- framework hooks ---------------------------------------------------------------
    def on_phase_change(self, acr: "ACR", old: str | None, new: str) -> None:
        self.checks_performed += 1
        self.transitions_seen.append((acr.sim.now, str(old), new))
        if new not in LEGAL_TRANSITIONS.get(old, frozenset()):
            self._fail("phase-legal", f"illegal transition {old!r} -> {new!r}")
        self._check_safe_sync(acr)
        self._check_spares(acr)
        if new == "done":
            self._check_quiescence(acr)

    def _on_timeline_event(self, event) -> None:
        self.checks_performed += 1
        if event.time < self._last_event_time - 1e-12:
            self._fail("timeline-monotone",
                       f"{event.kind} recorded at {event.time} after an event "
                       f"at {self._last_event_time}")
        self._last_event_time = max(self._last_event_time, event.time)

    # -- store hooks ----------------------------------------------------------------
    def on_commit(self, replica: int, gen: CheckpointGeneration) -> None:
        self._check_generation("commit", replica, gen)

    def on_install(self, replica: int, gen: CheckpointGeneration) -> None:
        self._check_generation("install", replica, gen)

    def _check_generation(self, action: str, replica: int,
                          gen: CheckpointGeneration) -> None:
        self.checks_performed += 1
        acr = self._acr
        n = acr.store.nodes_per_replica if acr is not None else len(gen.shards)
        if not gen.complete(n):
            self._fail("generation-complete",
                       f"{action} on replica {replica}: generation at iteration "
                       f"{gen.iteration} holds {len(gen.shards)}/{n} shards")
        if gen.iteration < 0:
            self._fail("generation-complete",
                       f"{action} on replica {replica}: negative iteration "
                       f"{gen.iteration}")

    # -- durable-storage hooks -------------------------------------------------------
    def on_tier_persist(self, level: int, staged, torn: bool) -> None:
        """A group write landed on a tier (possibly torn under ``unsafe``)."""
        self.checks_performed += 1
        last = self._tier_last_iteration.get(level)
        if last is not None and staged.iteration < last:
            self._fail("storage-monotone",
                       f"tier {level} persisted iteration {staged.iteration} "
                       f"after iteration {last}")
        self._tier_last_iteration[level] = staged.iteration

    def on_tier_restore(self, level: int, staged, gen) -> None:
        """Recovery accepted a stored copy: re-verify it independently.

        The check recomputes every shard's SHA-256 from the stored bytes —
        never trusting the hierarchy's own ``torn`` bookkeeping — so a torn
        or rotted generation sneaking past the framework's guard fails here.
        """
        import hashlib

        self.checks_performed += 1
        acr = self._acr
        n = acr.store.nodes_per_replica if acr is not None else len(gen.shards)
        if len(staged.shards) != n or not gen.complete(n):
            self._fail("storage-integrity",
                       f"tier {level} restore served an incomplete generation "
                       f"({len(staged.shards)}/{n} stored, "
                       f"{len(gen.shards)}/{n} returned)")
        for rank in sorted(staged.shards):
            shard = staged.shards[rank]
            stored = shard.state.buffer.tobytes()
            if hashlib.sha256(stored).hexdigest() != shard.digest:
                self._fail("storage-integrity",
                           f"tier {level} restore served rank {rank} whose "
                           f"bytes do not match the recorded SHA-256 "
                           f"(torn={shard.torn})")
            if gen.shards[rank].buffer.tobytes() != stored:
                self._fail("storage-integrity",
                           f"tier {level} restore returned rank {rank} bytes "
                           f"differing from the verified stored copy")

    # -- the individual invariants -------------------------------------------------------
    def _check_safe_sync(self, acr: "ACR") -> None:
        if acr._weak_pending is not None:
            return  # the healthy replica legitimately runs ahead (Fig. 5d)
        it0 = acr.store.safe_iteration(0)
        it1 = acr.store.safe_iteration(1)
        if it0 is not None and it1 is not None and it0 != it1:
            self._fail("safe-sync",
                       f"safe generations diverged outside a weak-pending "
                       f"window: replica 0 at iteration {it0}, replica 1 at "
                       f"{it1}")

    def _check_spares(self, acr: "ACR") -> None:
        used = acr.report.spare_nodes_used
        drained = acr.config.spare_nodes - acr._spares_left
        if used != drained:
            self._fail("spare-accounting",
                       f"spare_nodes_used={used} but pool drained {drained}")
        if used > acr.report.hard_detected:
            self._fail("spare-accounting",
                       f"{used} spares consumed for only "
                       f"{acr.report.hard_detected} detected failures")
        revivals = sum(n.failures_survived for n in acr.nodes.values())
        if revivals > used:
            self._fail("spare-accounting",
                       f"{revivals} revivals but only {used} spares consumed")

    def _check_quiescence(self, acr: "ACR") -> None:
        orphans = []
        if acr._checkpoint_timer is not None and acr._checkpoint_timer.pending:
            orphans.append("checkpoint timer")
        orphans.extend(f"phase event @{h.time:.6g}"
                       for h in acr._phase_events if h.pending)
        if acr._background_event is not None and acr._background_event.pending:
            orphans.append("background transfer")
        if acr._watchdog_event is not None and acr._watchdog_event.pending:
            orphans.append("consensus watchdog")
        if orphans:
            self._fail("quiescence",
                       f"timers still pending after done: {', '.join(orphans)}")

    # -- end-of-run verdict ------------------------------------------------------------
    def final_check(self, report: "RunReport") -> None:
        """Whole-run invariants, called after ``acr.run()`` returns."""
        acr = self._acr
        if acr is None:
            raise ACRError("monitor was never attached")
        self.checks_performed += 1
        if not report.completed and report.aborted_reason is None:
            self._fail("liveness",
                       f"run neither completed nor aborted by t="
                       f"{report.final_time:.6g} (phase {acr.phase!r}, "
                       f"{report.iterations_completed} iterations)")
        self._check_spares(acr)
        if report.completed:
            self._check_safe_sync(acr)
            cap = acr.config.total_iterations
            if cap is not None:
                for replica in (0, 1):
                    it = acr.store.safe_iteration(replica)
                    if it != cap:
                        self._fail("result-correct",
                                   f"completed run left replica {replica}'s "
                                   f"safe generation at iteration {it}, "
                                   f"cap {cap}")
                if (report.result_correct is not True
                        and not self._sdc_vulnerability_window(report)):
                    self._fail("result-correct",
                               f"completed run has result_correct="
                               f"{report.result_correct}")

    @staticmethod
    def _sdc_vulnerability_window(report: "RunReport") -> bool:
        """True when an incorrect result is the paper's *documented* exposure
        rather than a protocol bug: an injected SDC went undetected AND one
        replica's state later propagated to both without comparison (§2.3,
        §5).  Two paths do that — a weak-pending solo checkpoint (recorded
        as ``CHECKPOINT_DONE`` with ``compared=False``) and a medium
        recovery, whose immediate solo checkpoint is committed and installed
        for the crashed replica sight unseen."""
        if report.sdc_injected <= report.sdc_detected:
            return False
        from repro.core.events import TimelineKind

        injected = [e.time for e in report.timeline.events
                    if e.kind is TimelineKind.SDC_INJECTED]
        if not injected:
            return False
        first = min(injected)
        for e in report.timeline.events:
            if e.time < first:
                continue
            if (e.kind is TimelineKind.CHECKPOINT_DONE
                    and e.detail.get("compared") is False):
                return True
            if (e.kind is TimelineKind.RECOVERY_DONE
                    and e.detail.get("scheme") == "medium"):
                return True
        return False
