"""Message types and the simulated transport.

The transport models the fail-stop semantics of §6.1: a dead node neither
sends nor receives — messages addressed to it vanish without error, which is
exactly why failure detection needs heartbeats rather than connection errors.

Per-message costs are the second-hottest path after event dispatch itself, so
:class:`Message` carries ``__slots__`` (no per-message ``__dict__``), the
``MsgKind.value`` descriptor lookups are hoisted into a module-level table,
the per-kind accounting dicts auto-initialise (no ``.get`` per send), and
deliveries ride the simulator's fire-and-forget :meth:`~
repro.runtime.des.Simulator.post` path — nothing ever cancels an in-flight
message, so no :class:`~repro.runtime.des.EventHandle` is allocated for one.
:meth:`Transport.send_small` is the dedicated fast path for the two
small-message firehoses (heartbeats and task dependency stamps).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable

from repro.runtime.des import Simulator
from repro.util.errors import SimulationError


class MsgKind(str, Enum):
    """Classes of runtime traffic."""

    APP = "app"                # application dependency messages
    HEARTBEAT = "heartbeat"    # buddy liveness probes
    CONTROL = "control"        # ACR protocol traffic (reductions, broadcasts)
    CHECKPOINT = "checkpoint"  # bulk checkpoint payloads


#: ``Enum.value`` is a ``DynamicClassAttribute`` — a descriptor *call* per
#: access.  The send paths run per message, so they resolve kinds through
#: this plain dict instead.
_KIND_VALUE: dict[MsgKind, str] = {k: k.value for k in MsgKind}


@dataclass(slots=True)
class Message:
    """One simulated message between nodes."""

    kind: MsgKind
    src: int          # global node id
    dst: int          # global node id
    payload: Any = None
    nbytes: int = 64
    tag: str = ""
    send_time: float = 0.0


class Transport:
    """Delivers messages between nodes with latency and fail-stop filtering.

    Latency here is the small per-message control-plane latency; *bulk*
    checkpoint transfer times come from the topology-aware cost model and are
    scheduled explicitly by the checkpoint machinery.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        latency: float = 5.0e-6,
        bandwidth: float = 167.0e6,
    ):
        if latency < 0 or bandwidth <= 0:
            raise SimulationError("latency must be >= 0 and bandwidth > 0")
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self._handlers: dict[int, Callable[[Message], None]] = {}
        self._stamp_handlers: dict[int, Callable[[int, int, int, int], None]] = {}
        self._alive: dict[int, bool] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Per-link-class accounting (always on — two dict bumps per send)
        #: feeding the telemetry metrics registry: how many messages and how
        #: many payload bytes each traffic class shipped.  ``defaultdict`` so
        #: the hot path is one ``+=``, not a ``.get`` per send; only kinds
        #: actually sent appear when iterating.
        self.sent_by_kind: dict[str, int] = defaultdict(int)
        self.bytes_by_kind: dict[str, int] = defaultdict(int)
        #: latency + nbytes/bandwidth memoised per small-message size — the
        #: fast path sends the same two sizes millions of times.
        self._small_delay: dict[int, float] = {}
        #: Batched-delivery accounting: how many logical messages rode a
        #: batched delivery event (:meth:`send_stamps` fan-outs, monitor-wide
        #: heartbeat sweeps) and how many such events were posted.  The
        #: pre-batching engine processed one heap event per message, so
        #: ``events_processed + batched_messages - batch_events`` is the
        #: legacy-granularity event count — the unit scale benchmarks use to
        #: compare throughput across the batching change.
        self.batched_messages = 0
        self.batch_events = 0

    # -- registration -----------------------------------------------------------
    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        self._handlers[node_id] = handler
        self._alive[node_id] = True

    def register_stamps(
        self, node_id: int,
        handler: Callable[[int, int, int, int], None],
    ) -> None:
        """Install the flat dependency-stamp handler for a node.

        ``handler(to_task, from_task, stamp, epoch)`` receives exactly the
        payload a ``MsgKind.APP`` message would carry, without the
        :class:`Message` envelope — the delivery half of :meth:`send_stamps`.
        """
        self._stamp_handlers[node_id] = handler

    def set_alive(self, node_id: int, alive: bool) -> None:
        if node_id not in self._handlers:
            raise SimulationError(f"unknown node {node_id}")
        self._alive[node_id] = alive

    def is_alive(self, node_id: int) -> bool:
        return self._alive.get(node_id, False)

    # -- sending ------------------------------------------------------------------
    def send(self, msg: Message, *, extra_delay: float = 0.0) -> None:
        """Send a message; silently dropped if either endpoint is dead.

        The drop-on-dead-sender rule models the no-response scheme: "the
        process on that node stops responding to any communication".
        """
        if msg.dst not in self._handlers:
            raise SimulationError(f"message to unregistered node {msg.dst}")
        if not self._alive.get(msg.src, False):
            self.messages_dropped += 1
            return
        self.messages_sent += 1
        kind = _KIND_VALUE[msg.kind]
        self.sent_by_kind[kind] += 1
        self.bytes_by_kind[kind] += msg.nbytes
        sim = self.sim
        msg.send_time = sim.now
        delay = self.latency + msg.nbytes / self.bandwidth + extra_delay
        sim.post(delay, self._deliver, msg)

    def send_small(
        self,
        kind: MsgKind,
        src: int,
        dst: int,
        payload: Any = None,
        *,
        nbytes: int = 64,
        tag: str = "",
    ) -> None:
        """Small-message fast path: ``send(Message(...))`` in one flat call.

        Observable semantics are identical to building a :class:`Message` and
        calling :meth:`send` with no ``extra_delay`` — same drop rules, same
        accounting, same delivery instant (the memoised delay is the same
        float the general path computes).  Heartbeats and task dependency
        stamps ship through here; anything with a payload measured in more
        than a few KiB should use :meth:`send` so ``extra_delay`` and bulk
        modelling stay available.
        """
        if dst not in self._handlers:
            raise SimulationError(f"message to unregistered node {dst}")
        if not self._alive.get(src, False):
            self.messages_dropped += 1
            return
        self.messages_sent += 1
        kv = _KIND_VALUE[kind]
        self.sent_by_kind[kv] += 1
        self.bytes_by_kind[kv] += nbytes
        delay = self._small_delay.get(nbytes)
        if delay is None:
            # Same expression (and therefore bit-identical float) as send().
            delay = self.latency + nbytes / self.bandwidth + 0.0
            self._small_delay[nbytes] = delay
        sim = self.sim
        sim.post(delay, self._deliver,
                 Message(kind, src, dst, payload, nbytes, tag, sim.now))

    def send_stamps(
        self,
        src: int,
        targets: list[tuple[int, int]],
        from_task: int,
        stamp: int,
        epoch: int,
        *,
        nbytes: int,
    ) -> None:
        """Fan one task's dependency stamp out to its neighbors in one event.

        Observably identical to looping ``send_small(MsgKind.APP, src, dst,
        (to_task, from_task, stamp, epoch))`` over ``targets``: the per-call
        sends draw consecutive sequence numbers and share one memoised delay,
        so nothing can ever interleave between their deliveries — delivering
        them back-to-back inside a single posted event preserves the exact
        global order while paying one heap entry (and zero :class:`Message`
        allocations) for the whole fan-out.  Accounting (sent / delivered /
        dropped, per-kind tallies) matches the per-message path count for
        count.  Targets must be registered via :meth:`register_stamps`.
        """
        if not self._alive.get(src, False):
            self.messages_dropped += len(targets)
            return
        n = len(targets)
        self.messages_sent += n
        self.sent_by_kind["app"] += n
        self.bytes_by_kind["app"] += n * nbytes
        self.batched_messages += n
        self.batch_events += 1
        delay = self._small_delay.get(nbytes)
        if delay is None:
            delay = self.latency + nbytes / self.bandwidth + 0.0
            self._small_delay[nbytes] = delay
        self.sim.post(delay, self._deliver_stamps, targets, from_task,
                      stamp, epoch)

    def _deliver_stamps(
        self, targets: list[tuple[int, int]], from_task: int,
        stamp: int, epoch: int,
    ) -> None:
        alive = self._alive
        handlers = self._stamp_handlers
        for dst, to_task in targets:
            if not alive.get(dst, False):
                self.messages_dropped += 1
                continue
            self.messages_delivered += 1
            handlers[dst](to_task, from_task, stamp, epoch)

    # -- bulk accounting (monitor-wide sweeps) ------------------------------------
    # The heartbeat monitor batches a whole sweep's worth of probes into one
    # posted event; these keep the transport the single owner of the counters
    # while letting the sweep settle N messages with O(1) Python work.  The
    # sums are exactly what N individual send_small/_deliver calls would have
    # produced.
    def small_delay(self, nbytes: int) -> float:
        """The memoised small-message delay — bit-identical to send_small's."""
        delay = self._small_delay.get(nbytes)
        if delay is None:
            delay = self.latency + nbytes / self.bandwidth + 0.0
            self._small_delay[nbytes] = delay
        return delay

    def account_sent(self, kind: MsgKind, count: int, nbytes_total: int) -> None:
        # Each call corresponds to exactly one posted batched delivery event
        # settling ``count`` probes (see the heartbeat monitor's send sweep).
        self.messages_sent += count
        kv = _KIND_VALUE[kind]
        self.sent_by_kind[kv] += count
        self.bytes_by_kind[kv] += nbytes_total
        self.batched_messages += count
        self.batch_events += 1

    def account_delivered(self, count: int) -> None:
        self.messages_delivered += count

    def account_dropped(self, count: int) -> None:
        self.messages_dropped += count

    def _deliver(self, msg: Message) -> None:
        if not self._alive.get(msg.dst, False):
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        self._handlers[msg.dst](msg)
