"""Message types and the simulated transport.

The transport models the fail-stop semantics of §6.1: a dead node neither
sends nor receives — messages addressed to it vanish without error, which is
exactly why failure detection needs heartbeats rather than connection errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.runtime.des import Simulator
from repro.util.errors import SimulationError


class MsgKind(str, Enum):
    """Classes of runtime traffic."""

    APP = "app"                # application dependency messages
    HEARTBEAT = "heartbeat"    # buddy liveness probes
    CONTROL = "control"        # ACR protocol traffic (reductions, broadcasts)
    CHECKPOINT = "checkpoint"  # bulk checkpoint payloads


@dataclass
class Message:
    """One simulated message between nodes."""

    kind: MsgKind
    src: int          # global node id
    dst: int          # global node id
    payload: Any = None
    nbytes: int = 64
    tag: str = ""
    send_time: float = field(default=0.0)


class Transport:
    """Delivers messages between nodes with latency and fail-stop filtering.

    Latency here is the small per-message control-plane latency; *bulk*
    checkpoint transfer times come from the topology-aware cost model and are
    scheduled explicitly by the checkpoint machinery.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        latency: float = 5.0e-6,
        bandwidth: float = 167.0e6,
    ):
        if latency < 0 or bandwidth <= 0:
            raise SimulationError("latency must be >= 0 and bandwidth > 0")
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self._handlers: dict[int, Callable[[Message], None]] = {}
        self._alive: dict[int, bool] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Per-link-class accounting (always on — two dict bumps per send)
        #: feeding the telemetry metrics registry: how many messages and how
        #: many payload bytes each traffic class shipped.
        self.sent_by_kind: dict[str, int] = {}
        self.bytes_by_kind: dict[str, int] = {}

    # -- registration -----------------------------------------------------------
    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        self._handlers[node_id] = handler
        self._alive[node_id] = True

    def set_alive(self, node_id: int, alive: bool) -> None:
        if node_id not in self._handlers:
            raise SimulationError(f"unknown node {node_id}")
        self._alive[node_id] = alive

    def is_alive(self, node_id: int) -> bool:
        return self._alive.get(node_id, False)

    # -- sending ------------------------------------------------------------------
    def send(self, msg: Message, *, extra_delay: float = 0.0) -> None:
        """Send a message; silently dropped if either endpoint is dead.

        The drop-on-dead-sender rule models the no-response scheme: "the
        process on that node stops responding to any communication".
        """
        if msg.dst not in self._handlers:
            raise SimulationError(f"message to unregistered node {msg.dst}")
        if not self._alive.get(msg.src, False):
            self.messages_dropped += 1
            return
        self.messages_sent += 1
        kind = msg.kind.value
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + msg.nbytes
        msg.send_time = self.sim.now
        delay = self.latency + msg.nbytes / self.bandwidth + extra_delay
        self.sim.schedule(delay, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        if not self._alive.get(msg.dst, False):
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        self._handlers[msg.dst](msg)
