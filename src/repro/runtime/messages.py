"""Message types and the simulated transport.

The transport models the fail-stop semantics of §6.1: a dead node neither
sends nor receives — messages addressed to it vanish without error, which is
exactly why failure detection needs heartbeats rather than connection errors.

Per-message costs are the second-hottest path after event dispatch itself, so
:class:`Message` carries ``__slots__`` (no per-message ``__dict__``), the
``MsgKind.value`` descriptor lookups are hoisted into a module-level table,
the per-kind accounting dicts auto-initialise (no ``.get`` per send), and
deliveries ride the simulator's fire-and-forget :meth:`~
repro.runtime.des.Simulator.post` path — nothing ever cancels an in-flight
message, so no :class:`~repro.runtime.des.EventHandle` is allocated for one.
:meth:`Transport.send_small` is the dedicated fast path for the two
small-message firehoses (heartbeats and task dependency stamps).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable

from repro.runtime.des import Simulator
from repro.util.errors import SimulationError


class MsgKind(str, Enum):
    """Classes of runtime traffic."""

    APP = "app"                # application dependency messages
    HEARTBEAT = "heartbeat"    # buddy liveness probes
    CONTROL = "control"        # ACR protocol traffic (reductions, broadcasts)
    CHECKPOINT = "checkpoint"  # bulk checkpoint payloads


#: ``Enum.value`` is a ``DynamicClassAttribute`` — a descriptor *call* per
#: access.  The send paths run per message, so they resolve kinds through
#: this plain dict instead.
_KIND_VALUE: dict[MsgKind, str] = {k: k.value for k in MsgKind}


@dataclass(slots=True)
class Message:
    """One simulated message between nodes."""

    kind: MsgKind
    src: int          # global node id
    dst: int          # global node id
    payload: Any = None
    nbytes: int = 64
    tag: str = ""
    send_time: float = 0.0


class Transport:
    """Delivers messages between nodes with latency and fail-stop filtering.

    Latency here is the small per-message control-plane latency; *bulk*
    checkpoint transfer times come from the topology-aware cost model and are
    scheduled explicitly by the checkpoint machinery.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        latency: float = 5.0e-6,
        bandwidth: float = 167.0e6,
    ):
        if latency < 0 or bandwidth <= 0:
            raise SimulationError("latency must be >= 0 and bandwidth > 0")
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self._handlers: dict[int, Callable[[Message], None]] = {}
        self._alive: dict[int, bool] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Per-link-class accounting (always on — two dict bumps per send)
        #: feeding the telemetry metrics registry: how many messages and how
        #: many payload bytes each traffic class shipped.  ``defaultdict`` so
        #: the hot path is one ``+=``, not a ``.get`` per send; only kinds
        #: actually sent appear when iterating.
        self.sent_by_kind: dict[str, int] = defaultdict(int)
        self.bytes_by_kind: dict[str, int] = defaultdict(int)
        #: latency + nbytes/bandwidth memoised per small-message size — the
        #: fast path sends the same two sizes millions of times.
        self._small_delay: dict[int, float] = {}

    # -- registration -----------------------------------------------------------
    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        self._handlers[node_id] = handler
        self._alive[node_id] = True

    def set_alive(self, node_id: int, alive: bool) -> None:
        if node_id not in self._handlers:
            raise SimulationError(f"unknown node {node_id}")
        self._alive[node_id] = alive

    def is_alive(self, node_id: int) -> bool:
        return self._alive.get(node_id, False)

    # -- sending ------------------------------------------------------------------
    def send(self, msg: Message, *, extra_delay: float = 0.0) -> None:
        """Send a message; silently dropped if either endpoint is dead.

        The drop-on-dead-sender rule models the no-response scheme: "the
        process on that node stops responding to any communication".
        """
        if msg.dst not in self._handlers:
            raise SimulationError(f"message to unregistered node {msg.dst}")
        if not self._alive.get(msg.src, False):
            self.messages_dropped += 1
            return
        self.messages_sent += 1
        kind = _KIND_VALUE[msg.kind]
        self.sent_by_kind[kind] += 1
        self.bytes_by_kind[kind] += msg.nbytes
        sim = self.sim
        msg.send_time = sim.now
        delay = self.latency + msg.nbytes / self.bandwidth + extra_delay
        sim.post(delay, self._deliver, msg)

    def send_small(
        self,
        kind: MsgKind,
        src: int,
        dst: int,
        payload: Any = None,
        *,
        nbytes: int = 64,
        tag: str = "",
    ) -> None:
        """Small-message fast path: ``send(Message(...))`` in one flat call.

        Observable semantics are identical to building a :class:`Message` and
        calling :meth:`send` with no ``extra_delay`` — same drop rules, same
        accounting, same delivery instant (the memoised delay is the same
        float the general path computes).  Heartbeats and task dependency
        stamps ship through here; anything with a payload measured in more
        than a few KiB should use :meth:`send` so ``extra_delay`` and bulk
        modelling stay available.
        """
        if dst not in self._handlers:
            raise SimulationError(f"message to unregistered node {dst}")
        if not self._alive.get(src, False):
            self.messages_dropped += 1
            return
        self.messages_sent += 1
        kv = _KIND_VALUE[kind]
        self.sent_by_kind[kv] += 1
        self.bytes_by_kind[kv] += nbytes
        delay = self._small_delay.get(nbytes)
        if delay is None:
            # Same expression (and therefore bit-identical float) as send().
            delay = self.latency + nbytes / self.bandwidth + 0.0
            self._small_delay[nbytes] = delay
        sim = self.sim
        sim.post(delay, self._deliver,
                 Message(kind, src, dst, payload, nbytes, tag, sim.now))

    def _deliver(self, msg: Message) -> None:
        if not self._alive.get(msg.dst, False):
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        self._handlers[msg.dst](msg)
