"""Struct-of-arrays hot state for paper-scale runs.

At 2×64Ki nodes the per-node/per-task Python objects are fine as the home of
*behaviour* (state machines, handlers), but any monitor-wide operation that
walks them — heartbeat send/check sweeps, the at-iteration-cap test that runs
once per completed iteration — turns into N attribute chases per tick and
dominates the run.  This module keeps the hot *state* in contiguous numpy
arrays so those operations become single vectorized expressions:

* :class:`NodeStateArrays` — liveness, last-heartbeat timestamps, and failure
  incarnations for a set of nodes.  Written through by :class:`~repro.runtime.
  node.Node` on the rare transitions (``die``/``revive``), read vectorized by
  the :class:`~repro.runtime.heartbeat.HeartbeatMonitor` sweeps every
  interval.
* :class:`TaskProgressArray` — per-task progress stamps plus an O(1)
  below-cap counter, so "are all 2·N·tpn tasks at the iteration cap?" is an
  integer compare instead of a generator sweep per progress event.

The arrays are *mirrors with a single writer*: exactly one object method owns
each transition (``Node.die``/``Node.revive`` for liveness, ``Task`` progress
assignment for stamps), and that method updates the object attribute and the
array together, so the two views cannot diverge.  Nothing here schedules
events or changes observable simulation behaviour — binding the arrays is a
pure representation change, which is what keeps the golden digests and trace
oracles bit-identical.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NodeStateArrays", "TaskProgressArray"]


class NodeStateArrays:
    """Liveness / last-heartbeat / incarnation state for N nodes.

    Slots are assigned in the order node ids are passed to the constructor
    (the heartbeat monitor uses registration order, which is what fixes the
    sweep ordering contract).
    """

    __slots__ = ("ids", "slot_of", "alive", "last_seen", "failures_survived")

    def __init__(self, node_ids: list[int]):
        n = len(node_ids)
        self.ids = np.asarray(node_ids, dtype=np.int64)
        self.slot_of: dict[int, int] = {nid: i for i, nid in enumerate(node_ids)}
        self.alive = np.ones(n, dtype=bool)
        self.last_seen = np.zeros(n, dtype=np.float64)
        self.failures_survived = np.zeros(n, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.ids)

    # -- single-writer transitions (called by Node.die / Node.revive) -----------
    def set_dead(self, slot: int) -> None:
        self.alive[slot] = False

    def set_alive(self, slot: int, failures_survived: int) -> None:
        self.alive[slot] = True
        self.failures_survived[slot] = failures_survived


class TaskProgressArray:
    """Progress stamps for T tasks with an O(1) all-at-cap test.

    ``below_cap`` counts tasks whose progress is < ``cap``; every progress
    assignment reports its old/new value through :meth:`stamp`, which keeps
    the counter exact across forward progress *and* rollbacks (restores can
    move stamps down, re-raising the count).
    """

    __slots__ = ("progress", "cap", "below_cap")

    def __init__(self, n_tasks: int):
        self.progress = np.zeros(n_tasks, dtype=np.int64)
        self.cap: int | None = None
        self.below_cap = n_tasks

    def __len__(self) -> int:
        return len(self.progress)

    def set_cap(self, cap: int | None) -> None:
        """Install the iteration cap and (re)count tasks still below it."""
        self.cap = cap
        if cap is None:
            self.below_cap = len(self.progress)
        else:
            self.below_cap = int(np.count_nonzero(self.progress < cap))

    def stamp(self, index: int, old: int, new: int) -> None:
        """Record ``task.progress`` moving from ``old`` to ``new``."""
        self.progress[index] = new
        cap = self.cap
        if cap is not None:
            if old < cap <= new:
                self.below_cap -= 1
            elif new < cap <= old:
                self.below_cap += 1

    @property
    def all_at_cap(self) -> bool:
        return self.below_cap == 0

    def min_progress(self) -> int:
        return int(self.progress.min()) if len(self.progress) else 0

    def all_at_least(self, bound: int) -> bool:
        """True when every stamp is >= ``bound`` (vectorized rework check)."""
        return bool((self.progress >= bound).all())
