"""Struct-of-arrays hot state for paper-scale runs.

At 2×64Ki nodes the per-node/per-task Python objects are fine as the home of
*behaviour* (state machines, handlers), but any monitor-wide operation that
walks them — heartbeat send/check sweeps, the at-iteration-cap test that runs
once per completed iteration — turns into N attribute chases per tick and
dominates the run.  This module keeps the hot *state* in contiguous numpy
arrays so those operations become single vectorized expressions:

* :class:`NodeStateArrays` — liveness, last-heartbeat timestamps, and failure
  incarnations for a set of nodes.  Written through by :class:`~repro.runtime.
  node.Node` on the rare transitions (``die``/``revive``), read vectorized by
  the :class:`~repro.runtime.heartbeat.HeartbeatMonitor` sweeps every
  interval.
* :class:`TaskProgressArray` — per-task progress stamps plus an O(1)
  below-cap counter, so "are all 2·N·tpn tasks at the iteration cap?" is an
  integer compare instead of a generator sweep per progress event.

The arrays are *mirrors with a single writer*: exactly one object method owns
each transition (``Node.die``/``Node.revive`` for liveness, ``Task`` progress
assignment for stamps), and that method updates the object attribute and the
array together, so the two views cannot diverge.  Nothing here schedules
events or changes observable simulation behaviour — binding the arrays is a
pure representation change, which is what keeps the golden digests and trace
oracles bit-identical.

The arrays can live in private process memory (the default) or inside a
:class:`ShmArena` — one named ``multiprocessing.shared_memory`` segment that
hands out numpy views at caller-planned offsets.  The parallel DES mode
(:mod:`repro.harness.parallel`) plans one arena for all partitions before
forking, so every worker's hot state is a view into the same mapping: the
controller reads progress/liveness zero-copy instead of asking over a pipe,
and cross-partition stamp rings live next door in the same segment.  Slab
*content* still has a single writer (the owning partition); the arena only
changes where the bytes live.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NodeStateArrays", "ShmArena", "TaskProgressArray"]


class ShmArena:
    """A named shared-memory segment handing out numpy views by offset.

    Lifecycle contract (see docs/performance.md "Scaling to paper-size
    runs"): the *creator* plans a layout (fixed offsets per array), creates
    the arena, and is the only caller of :meth:`unlink`.  Forked workers
    inherit the mapping and simply build views at the planned offsets;
    unrelated processes may :meth:`attach` by name instead.  ``close()`` detaches
    this process's mapping (views must be dropped first); ``unlink()``
    removes the segment from the OS.  Segments are zero-filled at creation.
    """

    __slots__ = ("shm", "nbytes", "owner")

    def __init__(self, shm, nbytes: int, owner: bool):
        self.shm = shm
        self.nbytes = nbytes
        self.owner = owner

    @classmethod
    def create(cls, nbytes: int) -> "ShmArena":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1))
        return cls(shm, nbytes, owner=True)

    @classmethod
    def attach(cls, name: str, nbytes: int | None = None) -> "ShmArena":
        from multiprocessing import shared_memory

        try:
            # 3.13+: attachers must not register with the resource tracker,
            # or their exit would unlink a segment they do not own.
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pragma: no cover - older Pythons
            shm = shared_memory.SharedMemory(name=name)
        return cls(shm, nbytes if nbytes is not None else shm.size, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    def view(self, offset: int, shape: tuple[int, ...] | int,
             dtype) -> np.ndarray:
        """A numpy array over ``[offset, offset + size)`` of the segment."""
        return np.ndarray(shape, dtype=dtype, buffer=self.shm.buf,
                          offset=offset)

    def close(self) -> None:
        """Detach this process's mapping (drop all views first)."""
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a view outlived its owner
            pass

    def unlink(self) -> None:
        """Remove the segment (creator only; idempotent)."""
        if not self.owner:
            return
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class NodeStateArrays:
    """Liveness / last-heartbeat / incarnation state for N nodes.

    Slots are assigned in the order node ids are passed to the constructor
    (the heartbeat monitor uses registration order, which is what fixes the
    sweep ordering contract).

    ``buffers`` optionally supplies the three state arrays as externally
    owned views — ``(alive, last_seen, failures_survived)``, typically
    slices of a :class:`ShmArena` — which this constructor (re)initialises
    to the same values a private allocation would get, so backing choice
    never changes behaviour.
    """

    __slots__ = ("ids", "slot_of", "alive", "last_seen", "failures_survived")

    def __init__(self, node_ids: list[int], *,
                 buffers: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None):
        n = len(node_ids)
        self.ids = np.asarray(node_ids, dtype=np.int64)
        self.slot_of: dict[int, int] = {nid: i for i, nid in enumerate(node_ids)}
        if buffers is None:
            self.alive = np.ones(n, dtype=bool)
            self.last_seen = np.zeros(n, dtype=np.float64)
            self.failures_survived = np.zeros(n, dtype=np.int64)
        else:
            alive, last_seen, failures = buffers
            if not (len(alive) == len(last_seen) == len(failures) == n):
                raise ValueError("state buffers must match the node count")
            alive[:] = True
            last_seen[:] = 0.0
            failures[:] = 0
            self.alive = alive
            self.last_seen = last_seen
            self.failures_survived = failures

    def __len__(self) -> int:
        return len(self.ids)

    # -- single-writer transitions (called by Node.die / Node.revive) -----------
    def set_dead(self, slot: int) -> None:
        self.alive[slot] = False

    def set_alive(self, slot: int, failures_survived: int) -> None:
        self.alive[slot] = True
        self.failures_survived[slot] = failures_survived


class TaskProgressArray:
    """Progress stamps for T tasks with an O(1) all-at-cap test.

    ``below_cap`` counts tasks whose progress is < ``cap``; every progress
    assignment reports its old/new value through :meth:`stamp`, which keeps
    the counter exact across forward progress *and* rollbacks (restores can
    move stamps down, re-raising the count).

    ``progress_buffer`` optionally supplies the stamp array as an externally
    owned int64 view (a :class:`ShmArena` slice); it is zeroed on
    construction so shared and private backings start identically.
    """

    __slots__ = ("progress", "cap", "below_cap")

    def __init__(self, n_tasks: int, *,
                 progress_buffer: np.ndarray | None = None):
        if progress_buffer is None:
            self.progress = np.zeros(n_tasks, dtype=np.int64)
        else:
            if len(progress_buffer) != n_tasks:
                raise ValueError("progress buffer must match the task count")
            progress_buffer[:] = 0
            self.progress = progress_buffer
        self.cap: int | None = None
        self.below_cap = n_tasks

    def __len__(self) -> int:
        return len(self.progress)

    def set_cap(self, cap: int | None) -> None:
        """Install the iteration cap and (re)count tasks still below it."""
        self.cap = cap
        if cap is None:
            self.below_cap = len(self.progress)
        else:
            self.below_cap = int(np.count_nonzero(self.progress < cap))

    def stamp(self, index: int, old: int, new: int) -> None:
        """Record ``task.progress`` moving from ``old`` to ``new``."""
        self.progress[index] = new
        cap = self.cap
        if cap is not None:
            if old < cap <= new:
                self.below_cap -= 1
            elif new < cap <= old:
                self.below_cap += 1

    @property
    def all_at_cap(self) -> bool:
        return self.below_cap == 0

    def min_progress(self) -> int:
        return int(self.progress.min()) if len(self.progress) else 0

    def all_at_least(self, bound: int) -> bool:
        """True when every stamp is >= ``bound`` (vectorized rework check)."""
        return bool((self.progress >= bound).all())
