"""Simulated compute nodes hosting tasks.

A node is the failure unit (fail-stop kills the whole node), the checkpoint
unit (one local checkpoint per node, §2.1), and the progress-aggregation unit
of the consensus protocol's Phase 1 ("ACR records the maximum progress among
all the tasks residing on the same node").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.runtime.des import Simulator
from repro.runtime.messages import Message, MsgKind, Transport
from repro.runtime.task import Task, TaskState
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.soa import NodeStateArrays


class Node:
    """One simulated node: tasks, liveness, and ACR-agent bookkeeping."""

    def __init__(
        self,
        node_id: int,
        replica: int,
        rank: int,
        sim: Simulator,
        transport: Transport,
    ):
        self.node_id = node_id      # globally unique
        self.replica = replica      # 0 or 1
        self.rank = rank            # index within the replica (buddy-aligned)
        self.sim = sim
        self.transport = transport
        self.tasks: list[Task] = []
        self._task_by_id: dict[int, Task] = {}
        self.alive = True
        self.failures_survived = 0
        #: Optional struct-of-arrays mirror of (alive, failures_survived);
        #: bound by the heartbeat monitor so its sweeps read liveness
        #: vectorized.  die()/revive() are the only writers (see soa.py).
        self._soa: "NodeStateArrays | None" = None
        self._soa_slot = -1
        #: Maximum progress reported by any local task (consensus Phase 1).
        self.local_max_progress = 0
        #: Hooks installed by the ACR framework.
        self.on_progress: Callable[["Node"], None] | None = None
        self.on_all_tasks_ready: Callable[["Node"], None] | None = None
        self.control_handler: Callable[[Message], None] | None = None
        self.heartbeat_handler: Callable[[Message], None] | None = None
        transport.register(node_id, self._on_message)
        transport.register_stamps(node_id, self._on_stamp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(id={self.node_id}, replica={self.replica}, rank={self.rank})"

    # -- struct-of-arrays binding -------------------------------------------------
    def bind_state_arrays(self, soa: "NodeStateArrays", slot: int) -> None:
        """Mirror this node's liveness into a :class:`NodeStateArrays` slot."""
        self._soa = soa
        self._soa_slot = slot
        soa.alive[slot] = self.alive
        soa.failures_survived[slot] = self.failures_survived

    # -- task hosting -------------------------------------------------------------
    def add_task(self, task: Task) -> None:
        self.tasks.append(task)
        self._task_by_id[task.task_id] = task

    def start_tasks(self) -> None:
        for t in self.tasks:
            t.start()

    # -- message dispatch ---------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        if not self.alive:
            return
        if msg.kind is MsgKind.APP:
            to_task, from_task, stamp, epoch = msg.payload
            task = self._find_task(to_task)
            if task is not None:
                task.on_dep_message(from_task, stamp, epoch)
        elif msg.kind is MsgKind.HEARTBEAT:
            if self.heartbeat_handler is not None:
                self.heartbeat_handler(msg)
        elif msg.kind in (MsgKind.CONTROL, MsgKind.CHECKPOINT):
            if self.control_handler is None:
                raise SimulationError(f"node {self.node_id}: no control handler")
            self.control_handler(msg)

    def _find_task(self, task_id: int) -> Task | None:
        return self._task_by_id.get(task_id)

    def _on_stamp(self, to_task: int, from_task: int, stamp: int,
                  epoch: int) -> None:
        """Flat dependency-stamp delivery (Transport.send_stamps fast path)."""
        if not self.alive:
            return
        task = self._task_by_id.get(to_task)
        if task is not None:
            task.on_dep_message(from_task, stamp, epoch)

    # -- ACR agent callbacks (installed by the framework) ---------------------------
    def on_task_progress(self, task: Task) -> None:
        """Phase 1: a local task finished an iteration; track the node max."""
        if task.progress > self.local_max_progress:
            self.local_max_progress = task.progress
        if self.on_progress is not None:
            self.on_progress(self)

    def on_task_ready_for_checkpoint(self, task: Task) -> None:
        """A task paused at the decided iteration; fire when all local tasks are."""
        if self.all_tasks_ready():
            if self.on_all_tasks_ready is not None:
                self.on_all_tasks_ready(self)

    def all_tasks_ready(self) -> bool:
        return all(t.state in (TaskState.PAUSED, TaskState.DEAD) for t in self.tasks)

    def min_task_progress(self) -> int:
        live = [t.progress for t in self.tasks if t.state is not TaskState.DEAD]
        return min(live) if live else 0

    # -- liveness --------------------------------------------------------------------
    def die(self) -> None:
        """Fail-stop: stop responding to any communication (§6.1)."""
        if not self.alive:
            return
        self.alive = False
        if self._soa is not None:
            self._soa.set_dead(self._soa_slot)
        self.transport.set_alive(self.node_id, False)
        for t in self.tasks:
            t.kill()

    def revive(self) -> None:
        """A spare node takes over this node's identity after recovery."""
        self.alive = True
        self.failures_survived += 1
        if self._soa is not None:
            self._soa.set_alive(self._soa_slot, self.failures_survived)
        self.transport.set_alive(self.node_id, True)
