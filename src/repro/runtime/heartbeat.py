"""Buddy heartbeats and fail-stop detection (paper §6.1).

"When a hard fault is injected to a node, the process on that node stops
responding to any communication.  Thereafter, when the buddy node of this
node does not receive heartbeat for a certain period of time, the node is
diagnosed as dead."

Each node periodically sends a heartbeat to its buddy in the other replica
and checks the buddy's last-seen time; a silence longer than ``timeout``
triggers the death callback exactly once per failure epoch.

The monitor used to schedule two events *per node* per interval (a send tick
and a check tick), which at N nodes made heartbeats the dominant event-queue
load of long quiet runs.  It now runs two monitor-wide periodic sweeps — one
send sweep, one check sweep — that walk all nodes in registration order
inside a single event each.  Observable behaviour is identical to the
per-node ticks: messages leave in the same order at the same instants, and
silence checks evaluate at the same instants in the same node order (the
check sweep first fires one ``timeout`` after start, then every ``interval``,
exactly like the old per-node check ticks).
"""

from __future__ import annotations

from typing import Callable

from repro.runtime.des import PeriodicHandle
from repro.runtime.messages import Message, MsgKind
from repro.runtime.node import Node
from repro.util.errors import ConfigurationError

#: Heartbeat payload size in bytes (a liveness probe carries no data).
HEARTBEAT_NBYTES = 16


class HeartbeatMonitor:
    """Mutual buddy-pair liveness monitoring across the two replicas."""

    def __init__(
        self,
        nodes: list[Node],
        buddy_of: dict[int, int],
        *,
        interval: float = 1.0,
        timeout_factor: float = 4.0,
        on_death: Callable[[Node, Node], None],
    ):
        """
        Parameters
        ----------
        nodes:
            All nodes (both replicas).
        buddy_of:
            Map node_id -> buddy node_id (symmetric).
        interval:
            Heartbeat period in simulated seconds.
        timeout_factor:
            Silence threshold in heartbeat periods before declaring death.
        on_death:
            ``callback(detector, dead_node)`` fired once per failure.
        """
        if interval <= 0 or timeout_factor < 2:
            raise ConfigurationError("interval must be > 0 and timeout_factor >= 2")
        self.nodes = {n.node_id: n for n in nodes}
        self.buddy_of = dict(buddy_of)
        for a, b in self.buddy_of.items():
            if self.buddy_of.get(b) != a:
                raise ConfigurationError(f"buddy map not symmetric at {a}<->{b}")
        self.interval = interval
        self.timeout = timeout_factor * interval
        self.on_death = on_death
        self.last_seen: dict[int, float] = {}
        self._reported: set[tuple[int, int]] = set()  # (node_id, failures_survived)
        self._started = False
        self._send_sweep_event: PeriodicHandle | None = None
        self._check_sweep_event: PeriodicHandle | None = None

    def start(self) -> None:
        sim = next(iter(self.nodes.values())).sim
        now = sim.now
        for node in self.nodes.values():
            self.last_seen[node.node_id] = now
            node.heartbeat_handler = self._on_heartbeat
        # One monitor-wide sweep per event class instead of one tick per
        # node: 2 heap entries per interval, not 2·N.
        self._send_sweep_event = sim.schedule_periodic(
            self.interval, self._send_sweep)
        self._check_sweep_event = sim.schedule_periodic(
            self.interval, self._check_sweep, first_delay=self.timeout)
        self._started = True

    def stop(self) -> None:
        """Cancel both sweeps (lets a drained queue actually drain)."""
        if self._send_sweep_event is not None:
            self._send_sweep_event.cancel()
            self._send_sweep_event = None
        if self._check_sweep_event is not None:
            self._check_sweep_event.cancel()
            self._check_sweep_event = None

    # -- periodic sweeps ---------------------------------------------------------
    def _send_sweep(self) -> None:
        """Every live node heartbeats its buddy, in registration order.

        Dead nodes are simply skipped this sweep — the spare-node replacement
        revives the same logical node, which resumes heartbeating on the next
        sweep without any rescheduling.
        """
        buddy_of = self.buddy_of
        for node in self.nodes.values():
            if node.alive:
                node.transport.send_small(
                    MsgKind.HEARTBEAT, node.node_id, buddy_of[node.node_id],
                    nbytes=HEARTBEAT_NBYTES, tag="hb",
                )

    def _check_sweep(self) -> None:
        """Every live node inspects its buddy's silence, in registration order.

        Detection is purely silence-based: the detector has no ground truth
        about its buddy, only missing heartbeats.
        """
        timeout = self.timeout
        last_seen = self.last_seen
        reported = self._reported
        for node in self.nodes.values():
            if not node.alive:
                continue
            buddy_id = self.buddy_of[node.node_id]
            silent_for = node.sim.now - last_seen[buddy_id]
            if silent_for >= timeout:
                buddy = self.nodes[buddy_id]
                key = (buddy_id, buddy.failures_survived)
                if key not in reported:
                    reported.add(key)
                    self.on_death(node, buddy)

    def _on_heartbeat(self, msg: Message) -> None:
        self.last_seen[msg.src] = self.nodes[msg.src].sim.now

    def notify_revived(self, node_id: int) -> None:
        """Reset silence clocks when a spare replaces a dead node.

        Both directions need resetting: the buddy stopped hearing the dead
        node, and the dead node heard nothing while down — without the second
        reset the revived node would immediately (and wrongly) declare its
        perfectly healthy buddy dead.
        """
        now = self.nodes[node_id].sim.now
        self.last_seen[node_id] = now
        self.last_seen[self.buddy_of[node_id]] = now
