"""Buddy heartbeats and fail-stop detection (paper §6.1).

"When a hard fault is injected to a node, the process on that node stops
responding to any communication.  Thereafter, when the buddy node of this
node does not receive heartbeat for a certain period of time, the node is
diagnosed as dead."

Each node periodically sends a heartbeat to its buddy in the other replica
and checks the buddy's last-seen time; a silence longer than ``timeout``
triggers the death callback exactly once per failure epoch.
"""

from __future__ import annotations

from typing import Callable

from repro.runtime.messages import Message, MsgKind
from repro.runtime.node import Node
from repro.util.errors import ConfigurationError


class HeartbeatMonitor:
    """Mutual buddy-pair liveness monitoring across the two replicas."""

    def __init__(
        self,
        nodes: list[Node],
        buddy_of: dict[int, int],
        *,
        interval: float = 1.0,
        timeout_factor: float = 4.0,
        on_death: Callable[[Node, Node], None],
    ):
        """
        Parameters
        ----------
        nodes:
            All nodes (both replicas).
        buddy_of:
            Map node_id -> buddy node_id (symmetric).
        interval:
            Heartbeat period in simulated seconds.
        timeout_factor:
            Silence threshold in heartbeat periods before declaring death.
        on_death:
            ``callback(detector, dead_node)`` fired once per failure.
        """
        if interval <= 0 or timeout_factor < 2:
            raise ConfigurationError("interval must be > 0 and timeout_factor >= 2")
        self.nodes = {n.node_id: n for n in nodes}
        self.buddy_of = dict(buddy_of)
        for a, b in self.buddy_of.items():
            if self.buddy_of.get(b) != a:
                raise ConfigurationError(f"buddy map not symmetric at {a}<->{b}")
        self.interval = interval
        self.timeout = timeout_factor * interval
        self.on_death = on_death
        self.last_seen: dict[int, float] = {}
        self._reported: set[tuple[int, int]] = set()  # (node_id, failures_survived)
        self._started = False

    def start(self) -> None:
        sim = next(iter(self.nodes.values())).sim
        now = sim.now
        for node in self.nodes.values():
            self.last_seen[node.node_id] = now
            node.heartbeat_handler = self._on_heartbeat
            sim.schedule(self.interval, self._send_tick, node.node_id)
            sim.schedule(self.timeout, self._check_tick, node.node_id)
        self._started = True

    # -- periodic events --------------------------------------------------------
    def _send_tick(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if node.alive:
            buddy_id = self.buddy_of[node_id]
            node.transport.send(
                Message(kind=MsgKind.HEARTBEAT, src=node_id, dst=buddy_id,
                        nbytes=16, tag="hb")
            )
        # Keep ticking even while dead: the spare-node replacement revives the
        # same logical node, which must resume heartbeating.
        node.sim.schedule(self.interval, self._send_tick, node_id)

    def _on_heartbeat(self, msg: Message) -> None:
        self.last_seen[msg.src] = self.nodes[msg.src].sim.now

    def _check_tick(self, node_id: int) -> None:
        node = self.nodes[node_id]
        buddy_id = self.buddy_of[node_id]
        buddy = self.nodes[buddy_id]
        if node.alive:
            # Detection is purely silence-based: the detector has no ground
            # truth about its buddy, only missing heartbeats.
            silent_for = node.sim.now - self.last_seen[buddy_id]
            key = (buddy_id, buddy.failures_survived)
            if silent_for >= self.timeout and key not in self._reported:
                self._reported.add(key)
                self.on_death(node, buddy)
        node.sim.schedule(self.interval, self._check_tick, node_id)

    def notify_revived(self, node_id: int) -> None:
        """Reset silence clocks when a spare replaces a dead node.

        Both directions need resetting: the buddy stopped hearing the dead
        node, and the dead node heard nothing while down — without the second
        reset the revived node would immediately (and wrongly) declare its
        perfectly healthy buddy dead.
        """
        now = self.nodes[node_id].sim.now
        self.last_seen[node_id] = now
        self.last_seen[self.buddy_of[node_id]] = now
