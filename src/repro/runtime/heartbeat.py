"""Buddy heartbeats and fail-stop detection (paper §6.1).

"When a hard fault is injected to a node, the process on that node stops
responding to any communication.  Thereafter, when the buddy node of this
node does not receive heartbeat for a certain period of time, the node is
diagnosed as dead."

Each node periodically sends a heartbeat to its buddy in the other replica
and checks the buddy's last-seen time; a silence longer than ``timeout``
triggers the death callback exactly once per failure epoch.

The monitor used to walk all N node objects per sweep (attribute chases,
N ``send_small`` calls, N posted delivery events).  It now keeps liveness,
last-seen timestamps, and failure incarnations in a
:class:`~repro.runtime.soa.NodeStateArrays` struct-of-arrays, so:

* the send sweep is one vectorized liveness scan plus a *single* posted
  delivery event that settles the whole sweep's probes at the common arrival
  instant (every probe shares the same size, hence bit-identical delay, and
  the per-message deliveries would have carried consecutive sequence numbers
  — nothing could ever observe a state between them);
* the check sweep is one vectorized silence scan; only when it finds a
  fresh, unreported candidate does it fall back to the exact legacy per-node
  walk (in registration order, re-reading live state between callbacks), so
  detection instants, detector attribution, and callback ordering are
  bit-identical to the per-object implementation.

Transport accounting flows through :meth:`Transport.account_sent`/
``account_delivered``/``account_dropped`` in bulk — the counter totals equal
the per-message path's count for count.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.runtime.des import PeriodicHandle, Simulator
from repro.runtime.messages import Message, MsgKind, Transport
from repro.runtime.node import Node
from repro.runtime.soa import NodeStateArrays
from repro.util.errors import ConfigurationError

#: Heartbeat payload size in bytes (a liveness probe carries no data).
HEARTBEAT_NBYTES = 16


class HeartbeatMonitor:
    """Mutual buddy-pair liveness monitoring across the two replicas."""

    def __init__(
        self,
        nodes: list[Node],
        buddy_of: dict[int, int],
        *,
        interval: float = 1.0,
        timeout_factor: float = 4.0,
        on_death: Callable[[Node, Node], None],
        state_buffers: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ):
        """
        Parameters
        ----------
        nodes:
            All nodes (both replicas).
        buddy_of:
            Map node_id -> buddy node_id (symmetric).
        interval:
            Heartbeat period in simulated seconds.
        timeout_factor:
            Silence threshold in heartbeat periods before declaring death.
        on_death:
            ``callback(detector, dead_node)`` fired once per failure.
        state_buffers:
            Optional ``(alive, last_seen, failures_survived)`` arrays to
            back the node state (shared-memory views from a
            :class:`~repro.runtime.soa.ShmArena`); default is private
            process memory.  Behaviour is identical either way.
        """
        if interval <= 0 or timeout_factor < 2:
            raise ConfigurationError("interval must be > 0 and timeout_factor >= 2")
        self.nodes = {n.node_id: n for n in nodes}
        self.buddy_of = dict(buddy_of)
        for a, b in self.buddy_of.items():
            if self.buddy_of.get(b) != a:
                raise ConfigurationError(f"buddy map not symmetric at {a}<->{b}")
        self.interval = interval
        self.timeout = timeout_factor * interval
        self.on_death = on_death
        self._reported: set[tuple[int, int]] = set()  # (node_id, failures_survived)
        self._started = False
        self._send_sweep_event: PeriodicHandle | None = None
        self._check_sweep_event: PeriodicHandle | None = None
        #: Struct-of-arrays node state, bound at start() (see soa.py).
        self._soa: NodeStateArrays | None = None
        self._buddy_slots: np.ndarray | None = None
        #: Per-slot highest failures_survived already reported dead — the
        #: vectorized mirror of the ``_reported`` dedup set (incarnations are
        #: monotone, so "key in reported" == "fs <= reported_upto").
        self._reported_upto: np.ndarray | None = None
        self._sim: Simulator | None = None
        self._transport: Transport | None = None
        self._state_buffers = state_buffers

    @property
    def state_arrays(self) -> NodeStateArrays | None:
        """The bound node struct-of-arrays (None before :meth:`start`)."""
        return self._soa

    def start(self) -> None:
        if not self.nodes:
            # An empty partition has nothing to monitor; stay inert so
            # degenerate decompositions (more partitions than ranks need)
            # do not crash.
            self._started = True
            return
        first = next(iter(self.nodes.values()))
        sim = first.sim
        self._sim = sim
        self._transport = first.transport
        # Slots follow registration order — that is what keeps the sweep
        # walk order of the scalar fallback identical to the legacy loop.
        soa = NodeStateArrays(list(self.nodes), buffers=self._state_buffers)
        self._soa = soa
        for node in self.nodes.values():
            node.bind_state_arrays(soa, soa.slot_of[node.node_id])
            node.heartbeat_handler = self._on_heartbeat
        soa.last_seen[:] = sim.now
        self._buddy_slots = np.array(
            [soa.slot_of[self.buddy_of[nid]] for nid in self.nodes],
            dtype=np.int64)
        self._reported_upto = np.full(len(soa), -1, dtype=np.int64)
        # One monitor-wide sweep per event class instead of one tick per
        # node: 2 heap entries per interval, not 2·N.
        self._send_sweep_event = sim.schedule_periodic(
            self.interval, self._send_sweep)
        self._check_sweep_event = sim.schedule_periodic(
            self.interval, self._check_sweep, first_delay=self.timeout)
        self._started = True

    def stop(self) -> None:
        """Cancel both sweeps (lets a drained queue actually drain)."""
        if self._send_sweep_event is not None:
            self._send_sweep_event.cancel()
            self._send_sweep_event = None
        if self._check_sweep_event is not None:
            self._check_sweep_event.cancel()
            self._check_sweep_event = None

    # -- compatibility views ------------------------------------------------------
    @property
    def last_seen(self) -> dict[int, float]:
        """Last-heartbeat times keyed by node id (a copy; state lives in the
        struct-of-arrays)."""
        if self._soa is None:
            return {}
        return {int(nid): float(t)
                for nid, t in zip(self._soa.ids, self._soa.last_seen)}

    # -- periodic sweeps ---------------------------------------------------------
    def _send_sweep(self) -> None:
        """Every live node heartbeats its buddy, in registration order.

        Dead nodes are simply skipped this sweep — the spare-node replacement
        revives the same logical node, which resumes heartbeating on the next
        sweep without any rescheduling.  The whole sweep is one vectorized
        liveness scan, one bulk accounting call, and one posted delivery
        event (all probes share one bit-identical delay).
        """
        soa = self._soa
        alive = soa.alive
        n_alive = int(np.count_nonzero(alive))
        if n_alive == 0:
            return
        transport = self._transport
        transport.account_sent(MsgKind.HEARTBEAT, n_alive,
                               n_alive * HEARTBEAT_NBYTES)
        senders = None if n_alive == len(alive) else np.flatnonzero(alive)
        self._sim.post(transport.small_delay(HEARTBEAT_NBYTES),
                       self._deliver_sweep, senders)

    def _deliver_sweep(self, senders: np.ndarray | None) -> None:
        """Arrival of one send sweep's probes: vectorized last-seen update.

        A probe from ``s`` to ``buddy(s)`` is delivered iff the buddy is
        alive *at arrival* (fail-stop receive filtering), and its only
        observable effect is ``last_seen[s] = now`` — order within the batch
        cannot matter, so settling all probes in one event is exact.
        """
        soa = self._soa
        alive = soa.alive
        buddies = self._buddy_slots
        if senders is None:
            n_sent = len(buddies)
            delivered_src = np.flatnonzero(alive[buddies])
        else:
            n_sent = len(senders)
            delivered_src = senders[alive[buddies[senders]]]
        n_delivered = len(delivered_src)
        transport = self._transport
        transport.account_delivered(n_delivered)
        if n_delivered != n_sent:
            transport.account_dropped(n_sent - n_delivered)
        soa.last_seen[delivered_src] = self._sim.now

    def _check_sweep(self) -> None:
        """Every live node inspects its buddy's silence, in registration order.

        Detection is purely silence-based: the detector has no ground truth
        about its buddy, only missing heartbeats.  The vectorized scan exits
        early when no *unreported* silence exists (the steady state); a
        candidate drops to the exact legacy walk, which re-reads live state
        between callbacks so side effects (revivals, cascades) influence
        later nodes in the same sweep exactly as before.
        """
        soa = self._soa
        now = self._sim.now
        buddies = self._buddy_slots
        silent = (now - soa.last_seen) >= self.timeout
        fresh = (soa.alive & silent[buddies]
                 & (soa.failures_survived[buddies] > self._reported_upto[buddies]))
        if not fresh.any():
            return
        timeout = self.timeout
        last_seen = soa.last_seen
        slot_of = soa.slot_of
        reported = self._reported
        reported_upto = self._reported_upto
        for node in self.nodes.values():
            if not node.alive:
                continue
            buddy_id = self.buddy_of[node.node_id]
            buddy_slot = slot_of[buddy_id]
            silent_for = node.sim.now - last_seen[buddy_slot]
            if silent_for >= timeout:
                buddy = self.nodes[buddy_id]
                key = (buddy_id, buddy.failures_survived)
                if key not in reported:
                    reported.add(key)
                    reported_upto[buddy_slot] = buddy.failures_survived
                    self.on_death(node, buddy)

    def _on_heartbeat(self, msg: Message) -> None:
        """Per-message path kept for externally injected HEARTBEAT traffic."""
        soa = self._soa
        soa.last_seen[soa.slot_of[msg.src]] = self.nodes[msg.src].sim.now

    def notify_revived(self, node_id: int) -> None:
        """Reset silence clocks when a spare replaces a dead node.

        Both directions need resetting: the buddy stopped hearing the dead
        node, and the dead node heard nothing while down — without the second
        reset the revived node would immediately (and wrongly) declare its
        perfectly healthy buddy dead.
        """
        now = self.nodes[node_id].sim.now
        soa = self._soa
        soa.last_seen[soa.slot_of[node_id]] = now
        soa.last_seen[soa.slot_of[self.buddy_of[node_id]]] = now
