"""Deterministic discrete-event simulation engine.

Everything dynamic in the reproduction — task iterations, message deliveries,
heartbeats, checkpoint phases, fault injections — is an event on this queue.
Determinism is guaranteed by a monotone sequence number that breaks ties among
events scheduled for the same instant (FIFO order), so a given seed always
replays the same execution.

The dispatch loop is the hottest code in the repo (every campaign cell spends
its life here), so the queue holds plain ``(time, seq, handle, callback,
args)`` tuples — tie-breaking comparisons run entirely in C, and the loop
reads the callback straight out of the tuple.  Three scheduling entry points
trade generality for cost:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` — the general
  path; returns a cancellable :class:`EventHandle`;
* :meth:`Simulator.post` — fire-and-forget: no handle is allocated, for the
  per-message deliveries that nothing ever cancels;
* :meth:`Simulator.schedule_periodic` — recurring timers rescheduled inside
  the engine, so a heartbeat that ticks a million times costs one handle and
  no public re-entry per tick.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable

from repro.util.errors import SimulationError

_INF = float("inf")


class EventHandle:
    """A scheduled event; cancel() prevents a pending callback from firing."""

    __slots__ = ("callback", "args", "cancelled", "fired", "time", "_sim")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple,
        sim: "Simulator | None" = None,
    ):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1

    @property
    def pending(self) -> bool:
        return not (self.cancelled or self.fired)


class PeriodicHandle(EventHandle):
    """A recurring event; stays scheduled (``pending``) until cancelled.

    The engine re-inserts the next occurrence itself after each firing — the
    public scheduling API (validation, handle allocation) is paid once for
    the timer's whole lifetime, not once per tick.
    """

    __slots__ = ("interval",)

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple,
        sim: "Simulator",
        interval: float,
    ):
        super().__init__(time, callback, args, sim)
        self.interval = interval


class Simulator:
    """A minimal, fast event-driven simulator with simulated seconds."""

    def __init__(self) -> None:
        self.now = 0.0
        #: Heap of ``(time, seq, handle_or_None, callback, args)`` tuples.
        #: ``handle`` is None for fire-and-forget events (see :meth:`post`);
        #: (time, seq) is unique, so the trailing fields are never compared.
        self._heap: list[tuple] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Raw scheduling stats (always on — plain int bumps) feeding the
        #: telemetry metrics registry: how many events were ever scheduled,
        #: how many were reaped cancelled, and the queue's high-water mark.
        self.events_scheduled = 0
        self.events_cancelled = 0
        self.max_queue_depth = 0
        #: Cohort-batching stats: the run loop drains all events sharing one
        #: timestamp as a single batch (one pop loop, one dispatch pass).
        #: ``cohort_hist[i]`` counts cohorts of size in [2^i, 2^(i+1)) —
        #: index = size.bit_length()-1, capped — and ``max_cohort_events`` is
        #: the largest batch seen.  Together with ``max_queue_depth`` these
        #: quantify how much same-instant batching the workload exposes.
        self.cohort_hist = [0] * 20
        self.max_cohort_events = 0
        self.cohorts_dispatched = 0
        #: Live count of pending events (scheduled, neither fired nor
        #: cancelled) — kept current by schedule/cancel/dispatch so
        #: :attr:`pending_events` is O(1) instead of a heap scan.
        self._live = 0

    # -- scheduling ---------------------------------------------------------------
    # The push bookkeeping (heap insert, stats, live count) is inlined into
    # schedule_at and post on purpose: they run once per event and a helper
    # call per event is measurable at campaign scale.

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        handle = EventHandle(time, callback, args, self)
        heap = self._heap
        heappush(heap, (time, next(self._seq), handle, callback, args))
        self.events_scheduled += 1
        self._live += 1
        if len(heap) > self.max_queue_depth:
            self.max_queue_depth = len(heap)
        return handle

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle`.

        The fast path for events nothing can cancel (message deliveries);
        dispatch order and sequence numbering are identical to
        :meth:`schedule`, only the per-event handle allocation is gone.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heap = self._heap
        heappush(heap, (self.now + delay, next(self._seq), None, callback, args))
        self.events_scheduled += 1
        self._live += 1
        if len(heap) > self.max_queue_depth:
            self.max_queue_depth = len(heap)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        first_delay: float | None = None,
    ) -> PeriodicHandle:
        """Fire ``callback(*args)`` every ``interval`` seconds until cancelled.

        The first firing is ``first_delay`` seconds from now (default: one
        ``interval``); each subsequent occurrence is re-inserted by the run
        loop itself with a fresh sequence number, exactly as if the callback
        had rescheduled itself as its last statement — but without churning
        the public API per tick.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be > 0, got {interval}")
        delay = interval if first_delay is None else first_delay
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        handle = PeriodicHandle(time, callback, args, self, interval)
        heap = self._heap
        heappush(heap, (time, next(self._seq), handle, callback, args))
        self.events_scheduled += 1
        self._live += 1
        if len(heap) > self.max_queue_depth:
            self.max_queue_depth = len(heap)
        return handle

    # -- control ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def _reap_cancelled_head(self) -> None:
        """Pop retired (cancelled) entries off the heap head, counting each
        exactly once — the one reaping path shared by :meth:`peek_time` and
        :meth:`run`, so ``events_cancelled`` stays consistent between them."""
        heap = self._heap
        while heap:
            handle = heap[0][2]
            if handle is None or not (handle.cancelled or handle.fired):
                return
            heappop(heap)
            self.events_cancelled += 1

    def peek_time(self) -> float | None:
        """Time of the next pending event, or None if the queue is empty."""
        self._reap_cancelled_head()
        heap = self._heap
        return heap[0][0] if heap else None

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in order until the queue drains, ``until`` is
        reached, or ``max_events`` have fired.  Returns the final time."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        heap = self._heap
        time_limit = _INF if until is None else until
        event_limit = _INF if max_events is None else max_events
        # The run loop is the only writer of events_processed (callbacks may
        # read it mid-run), so it lives in a local and is stored back before
        # every callback fires.
        processed = self.events_processed
        cohort_hist = self.cohort_hist
        hist_top = len(cohort_hist) - 1
        try:
            while heap and not self._stopped:
                entry = heap[0]
                handle = entry[2]
                if handle is not None and (handle.cancelled or handle.fired):
                    # Retired head: reap through the shared helper (the one
                    # place events_cancelled is counted), then re-test.
                    self._reap_cancelled_head()
                    continue
                time = entry[0]
                if time > time_limit:
                    self.now = until  # type: ignore[assignment]
                    break
                if processed >= event_limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                heappop(heap)
                self.now = time
                if not heap or heap[0][0] != time:
                    # Singleton cohort — dispatch inline, no batch list (the
                    # common case for jittered compute-completion storms).
                    cohort_hist[0] += 1
                    self.cohorts_dispatched += 1
                    processed += 1
                    self.events_processed = processed
                    if handle is None:
                        # Fire-and-forget event: nothing to mark fired.
                        self._live -= 1
                        entry[3](*entry[4])
                    elif type(handle) is PeriodicHandle:
                        entry[3](*entry[4])
                        if not handle.cancelled:
                            # Re-insert in-engine: same ordering as a callback
                            # that reschedules itself as its last statement.
                            next_time = time + handle.interval
                            handle.time = next_time
                            heappush(heap, (next_time, next(self._seq), handle,
                                            entry[3], entry[4]))
                            self.events_scheduled += 1
                            if len(heap) > self.max_queue_depth:
                                self.max_queue_depth = len(heap)
                    else:
                        handle.fired = True
                        self._live -= 1
                        entry[3](*entry[4])
                    continue
                # Same-timestamp cohort: drain every entry sharing this
                # instant in one pop loop, then dispatch in one pass.  Seq
                # order is preserved (heappop yields ascending (time, seq)),
                # and each entry's cancelled flag is re-read at its dispatch
                # turn — an earlier cohort member may have cancelled it.
                cohort = [entry]
                while heap and heap[0][0] == time:
                    cohort.append(heappop(heap))
                size = len(cohort)
                self.cohorts_dispatched += 1
                bucket = size.bit_length() - 1
                cohort_hist[bucket if bucket < hist_top else hist_top] += 1
                if size > self.max_cohort_events:
                    self.max_cohort_events = size
                for i, entry in enumerate(cohort):
                    if self._stopped:
                        # stop() landed mid-cohort: the unreached tail never
                        # fired (nor was reaped) — push it back untouched.
                        for e in cohort[i:]:
                            heappush(heap, e)
                        break
                    handle = entry[2]
                    if handle is not None and (handle.cancelled or handle.fired):
                        # Reap at its turn, exactly as the head-reaper would
                        # have when this entry surfaced.
                        self.events_cancelled += 1
                        continue
                    if processed >= event_limit:
                        for e in cohort[i:]:
                            heappush(heap, e)
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "runaway simulation?"
                        )
                    processed += 1
                    self.events_processed = processed
                    if handle is None:
                        self._live -= 1
                        entry[3](*entry[4])
                    elif type(handle) is PeriodicHandle:
                        entry[3](*entry[4])
                        if not handle.cancelled:
                            next_time = time + handle.interval
                            handle.time = next_time
                            heappush(heap, (next_time, next(self._seq), handle,
                                            entry[3], entry[4]))
                            self.events_scheduled += 1
                            if len(heap) > self.max_queue_depth:
                                self.max_queue_depth = len(heap)
                    else:
                        handle.fired = True
                        self._live -= 1
                        entry[3](*entry[4])
            else:
                if until is not None and not heap and self.now < until:
                    self.now = until
        finally:
            self._running = False
        return self.now

    @property
    def pending_events(self) -> int:
        return self._live
