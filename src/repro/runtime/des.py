"""Deterministic discrete-event simulation engine.

Everything dynamic in the reproduction — task iterations, message deliveries,
heartbeats, checkpoint phases, fault injections — is an event on this queue.
Determinism is guaranteed by a monotone sequence number that breaks ties among
events scheduled for the same instant (FIFO order), so a given seed always
replays the same execution.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.errors import SimulationError


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled event; cancel() prevents a pending callback from firing."""

    __slots__ = ("callback", "args", "cancelled", "fired", "time")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not (self.cancelled or self.fired)


class Simulator:
    """A minimal, fast event-driven simulator with simulated seconds."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Raw scheduling stats (always on — plain int bumps) feeding the
        #: telemetry metrics registry: how many events were ever scheduled,
        #: how many were reaped cancelled, and the queue's high-water mark.
        self.events_scheduled = 0
        self.events_cancelled = 0
        self.max_queue_depth = 0

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        handle = EventHandle(time, callback, args)
        heapq.heappush(self._heap, _QueueEntry(time, next(self._seq), handle))
        self.events_scheduled += 1
        if len(self._heap) > self.max_queue_depth:
            self.max_queue_depth = len(self._heap)
        return handle

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def peek_time(self) -> float | None:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and not self._heap[0].handle.pending:
            heapq.heappop(self._heap)
            self.events_cancelled += 1
        return self._heap[0].time if self._heap else None

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in order until the queue drains, ``until`` is
        reached, or ``max_events`` have fired.  Returns the final time."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                entry = self._heap[0]
                if until is not None and entry.time > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                handle = entry.handle
                if not handle.pending:
                    self.events_cancelled += 1
                    continue
                if max_events is not None and self.events_processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                self.now = entry.time
                handle.fired = True
                self.events_processed += 1
                handle.callback(*handle.args)
            else:
                if until is not None and not self._heap and self.now < until:
                    self.now = until
        finally:
            self._running = False
        return self.now

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._heap if e.handle.pending)
