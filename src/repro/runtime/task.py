"""Iterative application tasks with message-driven progress.

Tasks are the unit the checkpoint-consensus protocol reasons about (paper
§2.2): they progress through iterations at different rates, gated by
dependency messages from neighbor tasks (no global synchronization), report
progress to the runtime "through a function call ... at the end of each
iteration", and can be paused and resumed by the consensus machinery.

Rollback safety uses an *epoch* counter: every dependency message carries the
sender's epoch, and a restart bumps the epoch, so messages in flight across a
rollback are discarded — modelling the flush of stale traffic that a real
coordinated-checkpoint recovery performs.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Callable

from repro.runtime.des import EventHandle
from repro.util.errors import SimulationError

#: Dependency-stamp message size (paper §2.2 neighbor messages).
DEP_STAMP_NBYTES = 1024

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.node import Node
    from repro.runtime.soa import TaskProgressArray


class TaskState(str, Enum):
    IDLE = "idle"          # waiting for dependencies
    COMPUTING = "computing"
    PAUSED = "paused"      # held by the consensus protocol
    DEAD = "dead"          # hosting node failed


class Task:
    """One migratable application task (a chare, in Charm++ terms)."""

    def __init__(
        self,
        task_id: int,
        node: "Node",
        *,
        neighbors: list[tuple[int, int]],
        iteration_time: Callable[[int, int], float],
    ):
        """
        Parameters
        ----------
        task_id:
            Globally unique id within the task's replica.
        node:
            Hosting node.
        neighbors:
            ``(node_id, task_id)`` pairs whose iteration-(p) messages gate this
            task's iteration p+1.
        iteration_time:
            ``f(task_id, iteration) -> seconds`` compute-time model; per-task
            jitter creates the progress skew the consensus protocol handles.
        """
        self.task_id = task_id
        self.node = node
        self.neighbors = list(neighbors)
        self.iteration_time = iteration_time
        self.progress = 0
        self.state = TaskState.IDLE
        self.epoch = 0
        #: Highest dependency stamp received from each neighbor this epoch.
        self.dep_stamps: dict[int, int] = {tid: -1 for _, tid in self.neighbors}
        #: Pause request: stop after completing this iteration (None = run).
        self.pause_at: int | None = None
        #: Hard cap on progress for bounded runs (never exceeded, survives
        #: rollbacks); None = unbounded.
        self.iteration_cap: int | None = None
        self._compute_event: EventHandle | None = None
        self.iterations_executed = 0
        #: Optional struct-of-arrays mirror of ``progress``; bound by the
        #: framework so monitor-wide at-cap/rework checks are O(1)/vectorized
        #: (see soa.py).  Progress assignments are the only writers.
        self._soa: "TaskProgressArray | None" = None
        self._soa_index = -1

    def bind_progress(self, soa: "TaskProgressArray", index: int) -> None:
        """Mirror this task's progress into a :class:`TaskProgressArray`."""
        self._soa = soa
        self._soa_index = index
        soa.progress[index] = self.progress

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Begin execution: announce the initial stamp and try to compute."""
        self._announce_progress()
        self._try_start()

    def kill(self) -> None:
        """The hosting node died: abort any in-flight compute."""
        self.state = TaskState.DEAD
        if self._compute_event is not None:
            self._compute_event.cancel()
            self._compute_event = None

    def restore(self, progress: int) -> None:
        """Roll back (or forward) to a checkpointed iteration.

        Bumps the epoch (discarding stale in-flight messages), resets the
        dependency view, and re-announces the restored stamp — the "resend"
        that prevents the hang scenario of §2.2.
        """
        if self._compute_event is not None:
            self._compute_event.cancel()
            self._compute_event = None
        old = self.progress
        self.progress = int(progress)
        if self._soa is not None:
            self._soa.stamp(self._soa_index, old, self.progress)
        self.epoch += 1
        self.dep_stamps = {tid: self.progress - 1 for _, tid in self.neighbors}
        self.pause_at = None
        self.state = TaskState.IDLE
        self._announce_progress()
        self._try_start()

    # -- consensus protocol hooks ---------------------------------------------------
    def request_pause_at(self, iteration: int | None) -> None:
        """Ask the task to pause once its progress reaches ``iteration``.

        ``None`` pauses at the current progress (Phase-2 tentative pause);
        a concrete iteration is the decided checkpoint iteration (Phase 3).
        """
        if self.state is TaskState.DEAD:
            return
        self.pause_at = self.progress if iteration is None else int(iteration)
        bound = self._pause_bound()
        if self.state is TaskState.IDLE and bound is not None and self.progress >= bound:
            self.state = TaskState.PAUSED
            self.node.on_task_ready_for_checkpoint(self)

    def resume(self) -> None:
        """Release a pause (checkpoint done, or the decision allows running on)."""
        if self.state is TaskState.DEAD:
            return
        self.pause_at = None
        if self.state is TaskState.PAUSED:
            self.state = TaskState.IDLE
        self._try_start()

    def resume_if_below(self) -> None:
        """Un-pause a task whose pause bar moved above its progress (Phase 3:
        the decided iteration is beyond the tentative local-max pause)."""
        bound = self._pause_bound()
        if self.state is TaskState.PAUSED and (bound is None or self.progress < bound):
            self.state = TaskState.IDLE
            self._try_start()

    # -- execution engine ---------------------------------------------------------
    def _deps_satisfied(self) -> bool:
        # Plain loop, not all(genexpr): this runs a few times per iteration
        # per task and the generator frame is measurable at campaign scale.
        progress = self.progress
        for stamp in self.dep_stamps.values():
            if stamp < progress:
                return False
        return True

    def _pause_bound(self) -> int | None:
        p = self.pause_at
        c = self.iteration_cap
        if p is None:
            return c
        if c is None:
            return p
        return p if p < c else c

    def _try_start(self) -> None:
        if self.state in (TaskState.COMPUTING, TaskState.DEAD):
            return
        bound = self._pause_bound()
        if bound is not None and self.progress >= bound:
            if self.state is not TaskState.PAUSED:
                self.state = TaskState.PAUSED
                self.node.on_task_ready_for_checkpoint(self)
            return
        if not self._deps_satisfied():
            self.state = TaskState.IDLE
            return
        self.state = TaskState.COMPUTING
        duration = self.iteration_time(self.task_id, self.progress + 1)
        if duration <= 0:
            raise SimulationError(f"iteration_time must be positive, got {duration}")
        epoch = self.epoch
        self._compute_event = self.node.sim.schedule(
            duration, self._on_iteration_done, epoch
        )

    def _on_iteration_done(self, epoch: int) -> None:
        if epoch != self.epoch or self.state is TaskState.DEAD:
            return  # stale completion from before a rollback
        self._compute_event = None
        progress = self.progress + 1
        self.progress = progress
        if self._soa is not None:
            self._soa.stamp(self._soa_index, progress - 1, progress)
        self.iterations_executed += 1
        self.state = TaskState.IDLE
        self._announce_progress()
        self.node.on_task_progress(self)
        self._try_start()

    def _announce_progress(self) -> None:
        """Send the dependency stamp for the just-completed iteration.

        Stamps go out once per task per iteration per neighbor — the app
        firehose — so the whole fan-out rides one
        :meth:`~repro.runtime.messages.Transport.send_stamps` event
        (observably identical to per-neighbor ``send_small`` calls: the
        per-call sends share one delay and consecutive sequence numbers, so
        nothing could ever interleave between their deliveries).
        """
        node = self.node
        node.transport.send_stamps(
            node.node_id, self.neighbors,
            self.task_id, self.progress, self.epoch,
            nbytes=DEP_STAMP_NBYTES,
        )

    def on_dep_message(self, from_task: int, stamp: int, epoch: int) -> None:
        """Receive a neighbor's dependency stamp (idempotent, monotone)."""
        if self.state is TaskState.DEAD:
            return
        if epoch < self.epoch:
            return  # pre-rollback traffic: flushed
        stamps = self.dep_stamps
        prev = stamps.get(from_task, -1)
        if stamp > prev:
            stamps[from_task] = stamp
        if self.state is not TaskState.IDLE:
            return
        # Skip _try_start while some dependency still lags: an IDLE task
        # always sits below its pause bound (every transition into IDLE runs
        # _try_start, which parks it PAUSED otherwise), so with unsatisfied
        # deps the call would be a pure no-op — and roughly half the stamp
        # deliveries in a ring arrive before the task's other neighbor.
        progress = self.progress
        for s in stamps.values():
            if s < progress:
                return
        self._try_start()
