"""Message-driven simulated runtime: DES engine, nodes, tasks, heartbeats.

This is the Charm++-like substrate ACR runs on in the reproduction: a
deterministic discrete-event simulation with fail-stop nodes, dependency-gated
iterative tasks, and buddy heartbeat failure detection.
"""

from repro.runtime.des import EventHandle, Simulator
from repro.runtime.heartbeat import HeartbeatMonitor
from repro.runtime.messages import Message, MsgKind, Transport
from repro.runtime.node import Node
from repro.runtime.task import Task, TaskState

__all__ = [
    "EventHandle",
    "Simulator",
    "HeartbeatMonitor",
    "Message",
    "MsgKind",
    "Transport",
    "Node",
    "Task",
    "TaskState",
]
