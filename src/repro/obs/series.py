"""Time-series sampling over the metrics registry.

:class:`TimeSeriesRecorder` turns the end-of-run aggregates PR 3 introduced
into *streaming* telemetry: a framework-armed ``schedule_periodic`` timer
calls :meth:`TimeSeriesRecorder.sample` every ``interval`` simulated seconds
with a full :meth:`~repro.core.framework.ACR.metrics_snapshot`, and the
recorder stores the counter/gauge values columnar — one shared time axis,
one column per metric key.  That makes queue depth, tier persist rates and
failure-rate estimates visible as they *evolve* over simulated time, which
the paper's §5 adaptive controller (online MTBF / phase-duration estimates)
and the campaign-as-a-service roadmap item both need.

Design points, mirroring the rest of ``repro.obs``:

* **Opt-in, overhead-neutral default.**  :data:`NULL_SERIES` is a shared
  no-op; an un-instrumented run arms no timer and stays bit-identical
  (golden digests are the oracle).  Enabling sampling *does* schedule
  engine-level periodic events, so a sampled run is a different (still
  deterministic) execution — callers opt in knowingly.
* **Columnar + mergeable.**  Series from campaign workers or parallel-DES
  partitions merge onto a union time grid (:func:`merge_series`): counters
  add, gauges follow the same last-writer-by-worker-index rule as
  :func:`~repro.obs.metrics.merge_snapshots`.
* **Exportable.**  JSONL (one row per sample) for downstream pandas/jq, and
  Prometheus/OpenMetrics text exposition (:meth:`to_openmetrics`) so a
  scrape endpoint or pushgateway can serve the last sample directly.
"""

from __future__ import annotations

import json

from repro.obs.metrics import parse_metric_key

#: Default sampling cadence in simulated seconds.  At the paper-scale
#: configurations (checkpoint intervals of 2-30 s) this lands a few samples
#: per checkpoint period without dominating the event budget.
DEFAULT_SERIES_INTERVAL = 5.0

SERIES_FORMAT = "repro-series/1"


class NullSeriesRecorder:
    """Do-nothing recorder: the overhead-neutral default.

    ``enabled`` is False so the framework skips arming the sampling timer
    entirely — a disabled run schedules zero extra events.
    """

    enabled = False
    interval = 0.0

    def sample(self, t: float, snapshot: dict) -> None:
        return None

    def to_dict(self) -> dict:
        return {"format": SERIES_FORMAT, "interval": 0.0,
                "times": [], "counters": {}, "gauges": {}}


#: The shared no-op recorder every un-sampled run uses.
NULL_SERIES = NullSeriesRecorder()


class TimeSeriesRecorder:
    """Columnar time series of metric snapshots over simulated time.

    Counter columns are zero-padded on the left when a key first appears
    mid-run, so every column always spans the full time axis.  Gauge columns
    pad with the first observed value (a gauge that did not exist yet has no
    meaningful zero).
    """

    enabled = True

    def __init__(self, interval: float = DEFAULT_SERIES_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.times: list[float] = []
        self.counters: dict[str, list[float]] = {}
        self.gauges: dict[str, list[float]] = {}

    # -- recording -----------------------------------------------------------
    def sample(self, t: float, snapshot: dict) -> None:
        """Append one sample at simulated time ``t``.

        Out-of-order or duplicate timestamps are collapsed: a sample at a
        time <= the previous one overwrites the last row (the final
        end-of-run sample often coincides with the last periodic tick).
        """
        if self.times and t <= self.times[-1]:
            self._overwrite_last(snapshot)
            return
        n = len(self.times)
        self.times.append(float(t))
        for key, value in snapshot.get("counters", {}).items():
            col = self.counters.get(key)
            if col is None:
                col = self.counters[key] = [0.0] * n
            col.append(float(value))
        for key, value in snapshot.get("gauges", {}).items():
            col = self.gauges.get(key)
            if col is None:
                col = self.gauges[key] = [float(value)] * n
            col.append(float(value))
        # Keys absent from this snapshot carry their previous value forward
        # (a counter that stopped being reported has not gone backwards).
        for cols in (self.counters, self.gauges):
            for col in cols.values():
                if len(col) <= n:
                    col.append(col[-1] if col else 0.0)

    def _overwrite_last(self, snapshot: dict) -> None:
        n = len(self.times)
        for key, value in snapshot.get("counters", {}).items():
            col = self.counters.get(key)
            if col is None:
                col = self.counters[key] = [0.0] * n
            col[-1] = float(value)
        for key, value in snapshot.get("gauges", {}).items():
            col = self.gauges.get(key)
            if col is None:
                col = self.gauges[key] = [float(value)] * n
            col[-1] = float(value)

    # -- derivation ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.times)

    def keys(self) -> list[str]:
        return sorted(self.counters) + sorted(self.gauges)

    def column(self, key: str) -> list[float]:
        if key in self.counters:
            return self.counters[key]
        return self.gauges[key]

    def deltas(self, key: str) -> list[float]:
        """Per-interval increments of a counter column (len == samples - 1)."""
        col = self.column(key)
        return [b - a for a, b in zip(col, col[1:])]

    def rates(self, key: str) -> list[float]:
        """Per-second rates of a counter column over each sample gap."""
        col = self.column(key)
        out = []
        for i in range(1, len(col)):
            dt = self.times[i] - self.times[i - 1]
            out.append((col[i] - col[i - 1]) / dt if dt > 0 else 0.0)
        return out

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": SERIES_FORMAT,
            "interval": self.interval,
            "times": list(self.times),
            "counters": {k: list(v) for k, v in sorted(self.counters.items())},
            "gauges": {k: list(v) for k, v in sorted(self.gauges.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TimeSeriesRecorder":
        fmt = payload.get("format", SERIES_FORMAT)
        if fmt != SERIES_FORMAT:
            raise ValueError(f"unsupported series format {fmt!r}")
        rec = cls(interval=payload.get("interval") or DEFAULT_SERIES_INTERVAL)
        rec.times = [float(t) for t in payload.get("times", [])]
        rec.counters = {k: [float(x) for x in v]
                        for k, v in payload.get("counters", {}).items()}
        rec.gauges = {k: [float(x) for x in v]
                      for k, v in payload.get("gauges", {}).items()}
        return rec

    def to_jsonl(self) -> str:
        """Row-oriented JSONL: one object per sample, ``{"t": ..., key: ...}``."""
        lines = []
        for i, t in enumerate(self.times):
            row: dict = {"t": t}
            for key in sorted(self.counters):
                row[key] = self.counters[key][i]
            for key in sorted(self.gauges):
                row[key] = self.gauges[key][i]
            lines.append(json.dumps(row, sort_keys=False))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_openmetrics(self) -> str:
        """Prometheus/OpenMetrics text exposition of the **last** sample.

        Metric names swap dots for underscores (Prometheus charset); the
        sample's simulated time is attached as the OpenMetrics timestamp so
        scrapes of successive exports preserve ordering.
        """
        if not self.times:
            return "# EOF\n"
        t = self.times[-1]
        lines: list[str] = []
        for kind, cols in (("counter", self.counters), ("gauge", self.gauges)):
            seen_names: set[str] = set()
            for key in sorted(cols):
                name, labels = parse_metric_key(key)
                om_name = name.replace(".", "_").replace("-", "_")
                if kind == "counter":
                    om_name += "_total"
                if om_name not in seen_names:
                    seen_names.add(om_name)
                    lines.append(f"# TYPE {om_name} {kind}")
                label_str = ""
                if labels:
                    inner = ",".join(
                        f'{k}="{v}"' for k, v in sorted(labels.items()))
                    label_str = f"{{{inner}}}"
                value = cols[key][-1]
                lines.append(f"{om_name}{label_str} {value:g} {t:g}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def merge_series(series_list: list[dict | None]) -> dict:
    """Merge per-worker/per-partition series dicts onto a union time grid.

    Each input is a :meth:`TimeSeriesRecorder.to_dict` payload (``None`` and
    empty entries are skipped).  Sample times are unioned and each column is
    forward-filled onto the union grid (step-function semantics: a counter
    holds its last observed value between its own samples, zero before its
    first).  Counters then add across inputs; gauges follow
    last-writer-by-worker-index — the latest input in the list wins at every
    grid point where it has been observed, matching
    :func:`~repro.obs.metrics.merge_snapshots`.
    """
    inputs = [s for s in series_list if s and s.get("times")]
    if not inputs:
        return {"format": SERIES_FORMAT, "interval": 0.0,
                "times": [], "counters": {}, "gauges": {}}
    grid = sorted({float(t) for s in inputs for t in s["times"]})
    index = {t: i for i, t in enumerate(grid)}

    def resampled(times: list[float], col: list[float],
                  fill: float) -> tuple[list[float], list[bool]]:
        out = [fill] * len(grid)
        observed = [False] * len(grid)
        j = 0
        last = fill
        seen = False
        for i, t in enumerate(grid):
            while j < len(times) and float(times[j]) <= t:
                last = float(col[j])
                seen = True
                j += 1
            out[i] = last
            observed[i] = seen
        return out, observed

    merged_counters: dict[str, list[float]] = {}
    merged_gauges: dict[str, list[float]] = {}
    for s in inputs:
        times = [float(t) for t in s["times"]]
        for key, col in s.get("counters", {}).items():
            values, _ = resampled(times, col, 0.0)
            into = merged_counters.get(key)
            if into is None:
                merged_counters[key] = values
            else:
                merged_counters[key] = [a + b for a, b in zip(into, values)]
        for key, col in s.get("gauges", {}).items():
            values, observed = resampled(times, col, 0.0)
            into = merged_gauges.get(key)
            if into is None:
                merged_gauges[key] = values
            else:
                # Later input wins wherever it has actually sampled.
                merged_gauges[key] = [
                    v if obs else prior
                    for prior, v, obs in zip(into, values, observed)]
    del index
    return {
        "format": SERIES_FORMAT,
        "interval": max(float(s.get("interval") or 0.0) for s in inputs),
        "times": grid,
        "counters": {k: merged_counters[k] for k in sorted(merged_counters)},
        "gauges": {k: merged_gauges[k] for k in sorted(merged_gauges)},
    }


def write_series(path, series: dict, *, fmt: str = "json") -> None:
    """Write a series dict as ``json``, ``jsonl`` or ``openmetrics`` text."""
    from pathlib import Path

    path = Path(path)
    if fmt == "json":
        path.write_text(json.dumps(series, indent=2, sort_keys=True) + "\n")
    elif fmt == "jsonl":
        path.write_text(TimeSeriesRecorder.from_dict(series).to_jsonl())
    elif fmt in ("openmetrics", "prom"):
        path.write_text(TimeSeriesRecorder.from_dict(series).to_openmetrics())
    else:
        raise ValueError(f"unknown series format {fmt!r}")
