"""Live campaign progress: per-cell events, rates, ETA, machine-readable file.

Campaigns are the long-running surface of this repo — a resumed figure sweep
or chaos soak can occupy a machine for hours with nothing on the terminal
until the final summary.  :class:`ProgressTracker` hangs off the campaign
commit path (``fan_out``/``run_campaign``/``run_chaos_campaign``): every
cell that completes, fails, or is served from the result-store cache ticks
the tracker, which

* invokes an ``on_event`` callback with a progress snapshot (the
  ``repro campaign --progress`` / ``repro chaos --progress`` live renderer),
  and
* atomically rewrites an optional JSON *progress file* so an external poller
  (the future ``repro serve``) can watch a campaign without attaching to the
  process.

Rates deliberately count only *computed* cells (completed + failed): cache
hits land in microseconds and would otherwise make the ETA of a resumed
sweep wildly optimistic right up until the cached prefix runs out.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

PROGRESS_FORMAT = "repro-progress/1"


class ProgressTracker:
    """Track per-cell campaign progress and derive rate / ETA estimates."""

    def __init__(self, total: int, *, on_event=None, path=None,
                 label: str = "campaign", clock=time.monotonic) -> None:
        self.total = int(total)
        self.label = label
        self.on_event = on_event
        self.path = Path(path) if path else None
        self._clock = clock
        self._t0 = clock()
        self.completed = 0
        self.cached = 0
        self.failed = 0
        self.done = False

    # -- ticking -------------------------------------------------------------
    def cell_completed(self, n: int = 1) -> None:
        self.completed += n
        self._emit()

    def cell_cached(self, n: int = 1) -> None:
        self.cached += n
        self._emit()

    def cell_failed(self, n: int = 1) -> None:
        self.failed += n
        self._emit()

    def finish(self) -> None:
        """Mark the campaign done and emit one final snapshot."""
        self.done = True
        self._emit()

    # -- derived view --------------------------------------------------------
    @property
    def processed(self) -> int:
        return self.completed + self.cached + self.failed

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.processed)

    def snapshot(self) -> dict:
        """One progress event: counts, rates, cache-hit rate, ETA."""
        elapsed = max(self._clock() - self._t0, 1e-9)
        computed = self.completed + self.failed
        cells_per_s = computed / elapsed
        eta_s: float | None
        if self.remaining == 0:
            eta_s = 0.0
        elif cells_per_s > 0:
            eta_s = self.remaining / cells_per_s
        else:
            eta_s = None  # nothing computed yet: no basis for an estimate
        return {
            "format": PROGRESS_FORMAT,
            "label": self.label,
            "total": self.total,
            "completed": self.completed,
            "cached": self.cached,
            "failed": self.failed,
            "processed": self.processed,
            "remaining": self.remaining,
            "elapsed_s": elapsed,
            "cells_per_s": cells_per_s,
            "cache_hit_rate": (self.cached / self.processed
                               if self.processed else 0.0),
            "eta_s": eta_s,
            "done": self.done,
        }

    # -- sinks ---------------------------------------------------------------
    def _emit(self) -> None:
        event = self.snapshot()
        if self.on_event is not None:
            self.on_event(event)
        if self.path is not None:
            self._write_file(event)

    def _write_file(self, event: dict) -> None:
        """Atomic replace so a poller never reads a torn progress file."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(event, indent=2) + "\n")
        os.replace(tmp, self.path)


def render_progress_line(event: dict) -> str:
    """One-line terminal rendering of a progress event (\\r-refreshed)."""
    total = event["total"]
    width = len(str(total))
    parts = [
        f"{event['label']}: {event['processed']:{width}d}/{total}",
        f"ok={event['completed']}",
        f"cached={event['cached']}",
    ]
    if event["failed"]:
        parts.append(f"failed={event['failed']}")
    parts.append(f"{event['cells_per_s']:.1f} cells/s")
    parts.append(f"hit={100.0 * event['cache_hit_rate']:.0f}%")
    eta = event["eta_s"]
    if event["done"]:
        parts.append(f"done in {event['elapsed_s']:.1f}s")
    elif eta is None:
        parts.append("eta --")
    else:
        parts.append(f"eta {eta:.0f}s")
    return "  ".join(parts)
