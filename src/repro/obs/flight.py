"""Flight recorder: a bounded ring of recent timeline events for forensics.

When a chaos invariant fires, a run raises, or an outcome fails, the last
thing anyone wants is to re-run a multi-minute campaign with tracing on just
to see what led up to the failure.  The :class:`FlightRecorder` keeps a
bounded ring buffer of the most recent :class:`~repro.core.events.Timeline`
events (plus phase transitions), costing O(capacity) memory regardless of
run length, and :meth:`dump` writes a *replayable* JSON artifact: the
failing :class:`~repro.chaos.fuzzer.ChaosSchedule` plan is embedded, so
``repro chaos --replay <artifact>`` reproduces the exact execution whose
tail the artifact shows.

The recorder is passive — it subscribes to the timeline and never schedules
simulator events, so attaching it cannot perturb a deterministic run.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

FLIGHT_FORMAT = "repro-flight/1"

#: Default ring capacity: enough to span several checkpoint periods of
#: events at paper-scale configs while staying trivially small in memory.
DEFAULT_FLIGHT_CAPACITY = 256


class FlightRecorder:
    """Bounded ring buffer of recent timeline events + phase transitions."""

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"flight capacity must be > 0, got {capacity}")
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self.recorded = 0
        self._acr = None

    # -- recording -----------------------------------------------------------
    def record(self, t: float, kind: str, detail: dict | None = None) -> None:
        """Append one entry, evicting the oldest when the ring is full."""
        self._ring.append(
            {"t": float(t), "kind": str(kind), "detail": dict(detail or {})})
        self.recorded += 1

    @property
    def evicted(self) -> int:
        """How many entries have been pushed out of the ring so far."""
        return self.recorded - len(self._ring)

    def events(self) -> list[dict]:
        """Ring contents oldest-first (eviction order)."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    # -- wiring --------------------------------------------------------------
    def _on_timeline_event(self, event) -> None:
        self.record(event.time, str(event.kind), event.detail)

    def on_phase_change(self, acr, old: str, new: str) -> None:
        """Observer hook (``ACR.attach_observer`` protocol)."""
        self.record(acr.sim.now, "phase_change", {"from": old, "to": new})

    def attach(self, acr) -> None:
        """Subscribe to a run's timeline and phase transitions."""
        self._acr = acr
        acr.timeline.subscribe(self._on_timeline_event)
        acr.attach_observer(self)

    def detach(self) -> None:
        if self._acr is not None:
            self._acr.timeline.unsubscribe(self._on_timeline_event)
            if self in self._acr.observers:
                self._acr.observers.remove(self)
            self._acr = None

    # -- dumping -------------------------------------------------------------
    def dump_dict(self, *, reason: str, invariant: str | None = None,
                  violation: str | None = None, schedule: dict | None = None,
                  context: dict | None = None) -> dict:
        """The artifact payload (see docs/observability.md for the format)."""
        return {
            "format": FLIGHT_FORMAT,
            "reason": reason,
            "invariant": invariant,
            "violation": violation,
            "schedule": schedule,
            "context": dict(context or {}),
            "capacity": self.capacity,
            "recorded": self.recorded,
            "evicted": self.evicted,
            "events": self.events(),
        }

    def dump(self, path, *, reason: str, invariant: str | None = None,
             violation: str | None = None, schedule: dict | None = None,
             context: dict | None = None) -> Path:
        """Write the artifact to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self.dump_dict(reason=reason, invariant=invariant,
                                 violation=violation, schedule=schedule,
                                 context=context)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path


def is_flight_artifact(payload: dict) -> bool:
    """True when a loaded JSON payload is a flight-recorder dump."""
    return payload.get("format") == FLIGHT_FORMAT


def load_flight(path) -> dict:
    """Load and minimally validate a flight-recorder artifact."""
    payload = json.loads(Path(path).read_text())
    if not is_flight_artifact(payload):
        raise ValueError(f"{path}: not a {FLIGHT_FORMAT} artifact")
    return payload
