"""Protocol telemetry: phase spans, metrics registry, exportable traces.

The observability layer the paper's evaluation rests on: checkpoint overhead
breakdowns (Fig. 8–10), failure/recovery timelines (Fig. 12) and the §5
model inputs (δ, τ, R) all come from instrumentation this package provides.

Three pieces:

* :class:`SpanTracer` — nested, timed spans over every protocol phase,
  exportable as Chrome ``trace_event`` JSON (Perfetto) or JSONL;
* :class:`MetricsRegistry` — counters / gauges / fixed-bucket histograms fed
  by hooks in the framework, DES, transport and checkpoint store, with
  mergeable snapshots for multi-worker campaigns;
* export helpers behind ``repro run --trace-out/--metrics-out`` and the
  ``repro report`` subcommand.

Telemetry is off by default: :data:`NULL_TRACER` and :data:`NULL_METRICS`
are shared no-ops, so an un-instrumented run pays only a no-op call on phase
boundaries (verified by the ``tests/obs`` smoke tests).
"""

from repro.obs.export import (
    CHROME_EVENT_REQUIRED_KEYS,
    CHROME_TRACE_REQUIRED_KEYS,
    load_json,
    sanitize_snapshot,
    trace_phase_summary,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    merge_snapshots,
    metric_key,
    snapshot_percentile,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "CHROME_EVENT_REQUIRED_KEYS",
    "CHROME_TRACE_REQUIRED_KEYS",
    "load_json",
    "sanitize_snapshot",
    "trace_phase_summary",
    "validate_chrome_trace",
    "write_metrics",
    "write_trace",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "merge_snapshots",
    "metric_key",
    "snapshot_percentile",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanTracer",
]
