"""Protocol telemetry: phase spans, metrics registry, exportable traces.

The observability layer the paper's evaluation rests on: checkpoint overhead
breakdowns (Fig. 8–10), failure/recovery timelines (Fig. 12) and the §5
model inputs (δ, τ, R) all come from instrumentation this package provides.

Three pieces:

* :class:`SpanTracer` — nested, timed spans over every protocol phase,
  exportable as Chrome ``trace_event`` JSON (Perfetto) or JSONL;
* :class:`MetricsRegistry` — counters / gauges / fixed-bucket histograms fed
  by hooks in the framework, DES, transport and checkpoint store, with
  mergeable snapshots for multi-worker campaigns;
* export helpers behind ``repro run --trace-out/--metrics-out`` and the
  ``repro report`` subcommand.

PR 8 adds the *streaming* layer on top (see docs/observability.md
"Streaming telemetry"):

* :class:`TimeSeriesRecorder` — periodic snapshots of the registry over
  simulated time, columnar, mergeable (:func:`merge_series`), exported as
  JSONL or Prometheus/OpenMetrics text;
* :class:`FlightRecorder` — bounded ring of recent timeline events, dumped
  as a replayable artifact when a chaos invariant fires or a run raises;
* :class:`ProgressTracker` — live per-cell campaign progress (cells/s,
  cache-hit rate, ETA) behind ``repro campaign --progress``.

Telemetry is off by default: :data:`NULL_TRACER`, :data:`NULL_METRICS` and
:data:`NULL_SERIES` are shared no-ops, so an un-instrumented run pays only a
no-op call on phase boundaries and schedules zero sampling events (verified
by the ``tests/obs`` smoke tests and the golden digests).
"""

from repro.obs.export import (
    CHROME_EVENT_REQUIRED_KEYS,
    CHROME_TRACE_REQUIRED_KEYS,
    load_json,
    sanitize_snapshot,
    snapshot_to_openmetrics,
    trace_phase_summary,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.obs.flight import (
    DEFAULT_FLIGHT_CAPACITY,
    FLIGHT_FORMAT,
    FlightRecorder,
    is_flight_artifact,
    load_flight,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    merge_snapshots,
    metric_key,
    parse_metric_key,
    snapshot_percentile,
)
from repro.obs.progress import (
    PROGRESS_FORMAT,
    ProgressTracker,
    render_progress_line,
)
from repro.obs.series import (
    DEFAULT_SERIES_INTERVAL,
    NULL_SERIES,
    NullSeriesRecorder,
    SERIES_FORMAT,
    TimeSeriesRecorder,
    merge_series,
    write_series,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "CHROME_EVENT_REQUIRED_KEYS",
    "CHROME_TRACE_REQUIRED_KEYS",
    "load_json",
    "sanitize_snapshot",
    "snapshot_to_openmetrics",
    "trace_phase_summary",
    "validate_chrome_trace",
    "write_metrics",
    "write_trace",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "merge_snapshots",
    "metric_key",
    "parse_metric_key",
    "snapshot_percentile",
    "DEFAULT_FLIGHT_CAPACITY",
    "FLIGHT_FORMAT",
    "FlightRecorder",
    "is_flight_artifact",
    "load_flight",
    "PROGRESS_FORMAT",
    "ProgressTracker",
    "render_progress_line",
    "DEFAULT_SERIES_INTERVAL",
    "NULL_SERIES",
    "NullSeriesRecorder",
    "SERIES_FORMAT",
    "TimeSeriesRecorder",
    "merge_series",
    "write_series",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanTracer",
]
