"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is fed by instrumentation hooks in the framework, the DES, the
transport and the checkpoint store.  Snapshots are plain JSON-serializable
dicts, snapshotable mid-run, and **mergeable** across campaign workers
(:func:`merge_snapshots`): counters and histogram buckets add (both merges
are associative and order-independent), while gauges resolve conflicts by
**last-writer-by-worker-index** — the snapshot latest in the list wins, so
the merge is deterministic for any fixed worker ordering.

Instruments are addressed by name plus optional labels
(``registry.counter("transport.bytes", kind="app")`` → key
``transport.bytes{kind=app}``), mirroring the Prometheus data model without
the dependency.

Like the tracer, the disabled default is a shared no-op
(:data:`NULL_METRICS`): instrumentation calls it unconditionally and pays a
no-op method call when telemetry is off.
"""

from __future__ import annotations

import bisect
import json

#: Default histogram buckets (seconds): ~1 µs to ~17 minutes, ×4 steps.
DEFAULT_BUCKETS = tuple(1e-6 * 4 ** i for i in range(15))


def metric_key(name: str, labels: dict) -> str:
    """Canonical instrument key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`metric_key`: split ``name{k=v,...}`` back into
    ``(name, labels)``.  Keys without a label block parse to ``(key, {})``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: dict[str, str] = {}
    for pair in inner.split(","):
        if not pair:
            continue
        k, _, v = pair.partition("=")
        labels[k] = v
    return name, labels


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set_total(self, total: float) -> None:
        """Reconcile with an externally kept running total (sampling a cheap
        native counter into the registry at snapshot time)."""
        if total > self.value:
            self.value = total


class Gauge:
    """Last-set value (merged across workers by last-writer-by-worker-index)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with percentile estimates.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything larger.  Percentiles are estimated as the upper bound
    of the bucket containing the requested rank — exact enough for the
    overhead-distribution tables the paper reports.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "min", "max")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (``p`` in [0, 100])."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(round(p / 100.0 * self.count)))
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= rank:
                if i < len(self.buckets):
                    return min(self.buckets[i], self.max)
                return self.max
        return self.max


class _NullInstrument:
    """Stand-in instrument whose mutators all do nothing."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set_total(self, total: float) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


class NullMetrics:
    """Do-nothing registry: the overhead-neutral default."""

    enabled = False
    _instrument = _NullInstrument()

    def counter(self, name: str, **labels) -> _NullInstrument:
        return self._instrument

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return self._instrument

    def histogram(self, name: str, buckets=None, **labels) -> _NullInstrument:
        return self._instrument

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The shared no-op registry every un-instrumented run uses.
NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Live registry of named instruments for one run (or one process)."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) --------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = metric_key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = metric_key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str,
                  buckets: tuple[float, ...] | None = None,
                  **labels) -> Histogram:
        key = metric_key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(buckets or DEFAULT_BUCKETS)
        return inst

    # -- snapshots -------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable view of every instrument (callable mid-run)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, **meta) -> str:
        payload = dict(meta)
        payload.update(self.snapshot())
        return json.dumps(payload, indent=2, sort_keys=True)


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Merge per-worker metric snapshots into one campaign-wide snapshot.

    Counters add and histograms add bucket counts element-wise — both merges
    are associative and independent of snapshot order.  Gauges are
    *last-writer-by-worker-index*: when two snapshots carry the same gauge
    key, the value from the snapshot appearing later in ``snapshots`` wins.
    Callers pass snapshots in worker-index order (campaigns and parallel-DES
    partitions both do), which makes conflicting gauges deterministic without
    pretending a max or mean is meaningful for a last-set value.  Histogram
    snapshots with differing bucket layouts for the same key are rejected —
    they came from incompatible instrument definitions.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        if not snap:
            continue
        for key, value in snap.get("counters", {}).items():
            merged["counters"][key] = merged["counters"].get(key, 0.0) + value
        for key, value in snap.get("gauges", {}).items():
            merged["gauges"][key] = value
        for key, h in snap.get("histograms", {}).items():
            into = merged["histograms"].get(key)
            if into is None:
                merged["histograms"][key] = {
                    "buckets": list(h["buckets"]), "counts": list(h["counts"]),
                    "sum": h["sum"], "count": h["count"],
                    "min": h["min"], "max": h["max"],
                }
                continue
            if into["buckets"] != list(h["buckets"]):
                raise ValueError(f"histogram {key!r}: incompatible buckets")
            prior_count = into["count"]
            into["counts"] = [a + b for a, b in zip(into["counts"], h["counts"])]
            into["sum"] += h["sum"]
            into["count"] += h["count"]
            if h["count"]:
                if prior_count:
                    into["min"] = min(into["min"], h["min"])
                    into["max"] = max(into["max"], h["max"])
                else:
                    into["min"], into["max"] = h["min"], h["max"]
    return merged


def snapshot_percentile(hist: dict, p: float) -> float:
    """Percentile estimate from a *snapshotted* histogram dict."""
    count = hist.get("count", 0)
    if not count:
        return 0.0
    rank = max(1, int(round(p / 100.0 * count)))
    cumulative = 0
    buckets = hist["buckets"]
    for i, c in enumerate(hist["counts"]):
        cumulative += c
        if cumulative >= rank:
            if i < len(buckets):
                return min(buckets[i], hist["max"])
            return hist["max"]
    return hist["max"]
