"""Phase-span tracing for the ACR protocol.

Every protocol phase of a run — consensus rounds (with their four
sub-phases), checkpoint pack/transfer/compare, each recovery flavor,
rollbacks, rework — can be captured as a timed *span* carrying
node/replica/iteration attributes.  Spans nest via explicit parent links,
forming the per-run span tree that the paper's overhead figures (Fig. 8–10)
and recovery timelines (Fig. 12) break down.

The simulator is callback-driven, so the API takes explicit simulated
timestamps instead of wrapping a call stack:

* ``begin(name, t, parent=..., **attrs)`` opens a span and returns its id;
* ``end(span_id, t, **attrs)`` closes it;
* ``emit(name, t0, t1, ...)`` records a completed span retroactively
  (useful when a phase's duration is only known at its completion event);
* ``instant(name, t, **attrs)`` records a point event.

The default tracer is :data:`NULL_TRACER`, a shared no-op whose methods do
nothing — instrumented code calls it unconditionally and a disabled run pays
only a no-op method call on phase boundaries (never on per-iteration paths).

Exports: :meth:`SpanTracer.to_chrome_trace` produces Chrome ``trace_event``
JSON (load in Perfetto / ``chrome://tracing``); :meth:`SpanTracer.to_jsonl`
produces one JSON object per line for ad-hoc analysis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Simulated seconds → Chrome trace microseconds.
_US = 1_000_000.0


@dataclass
class Span:
    """One timed protocol phase (``end is None`` while still open)."""

    span_id: int
    name: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


class NullTracer:
    """Do-nothing tracer: the overhead-neutral default.

    Shares the interface of :class:`SpanTracer`; every method is a no-op so
    instrumentation sites never need an ``if enabled`` branch.
    """

    enabled = False

    def begin(self, name: str, t: float, *, parent: int | None = None,
              **attrs) -> None:
        return None

    def end(self, span_id, t: float, **attrs) -> None:
        return None

    def emit(self, name: str, t0: float, t1: float, *,
             parent: int | None = None, **attrs) -> None:
        return None

    def instant(self, name: str, t: float, **attrs) -> None:
        return None


#: The shared no-op tracer every un-instrumented run uses.
NULL_TRACER = NullTracer()


class SpanTracer:
    """Recording tracer: accumulates spans and instants incrementally."""

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[tuple[str, float, dict]] = []
        self._open: dict[int, Span] = {}
        self._next_id = 0

    # -- recording -----------------------------------------------------------
    def begin(self, name: str, t: float, *, parent: int | None = None,
              **attrs) -> int:
        """Open a span at simulated time ``t``; returns its id."""
        span = Span(self._next_id, name, float(t), None, parent, dict(attrs))
        self._next_id += 1
        self.spans.append(span)
        self._open[span.span_id] = span
        return span.span_id

    def end(self, span_id: int | None, t: float, **attrs) -> None:
        """Close an open span (tolerates ``None`` / already-closed ids)."""
        if span_id is None:
            return
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end = max(float(t), span.start)
        if attrs:
            span.attrs.update(attrs)

    def emit(self, name: str, t0: float, t1: float, *,
             parent: int | None = None, **attrs) -> int:
        """Record a completed span retroactively; returns its id."""
        sid = self.begin(name, t0, parent=parent, **attrs)
        self.end(sid, t1)
        return sid

    def instant(self, name: str, t: float, **attrs) -> None:
        """Record a point event (rendered as a trace instant)."""
        self.instants.append((name, float(t), dict(attrs)))

    def end_open(self, t: float, **attrs) -> None:
        """Close every still-open span (end of run / abort)."""
        for sid in list(self._open):
            self.end(sid, t, **attrs)

    # -- queries --------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        return len(self._open)

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def phase_names(self) -> set[str]:
        return {s.name for s in self.spans}

    def phase_totals(self) -> dict[str, float]:
        """Total duration per span name (completed spans only)."""
        totals: dict[str, float] = {}
        for s in self.spans:
            if s.end is not None:
                totals[s.name] = totals.get(s.name, 0.0) + s.duration
        return totals

    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    # -- exports ---------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON object (open in Perfetto).

        Spans become complete (``"ph": "X"``) events; instants become global
        instant (``"ph": "i"``) events.  Simulated seconds map to trace
        microseconds, and the span's track attribute (if any) selects the
        ``tid`` so overlapping background work gets its own row.
        """
        events = []
        for s in self.spans:
            end = s.end if s.end is not None else s.start
            args = {k: v for k, v in s.attrs.items() if k != "track"}
            if s.parent_id is not None:
                args["parent_span"] = s.parent_id
            events.append({
                "name": s.name,
                "cat": s.name.split(".")[0],
                "ph": "X",
                "ts": s.start * _US,
                "dur": (end - s.start) * _US,
                "pid": 0,
                "tid": int(s.attrs.get("track", 0)),
                "args": args,
            })
        for name, t, attrs in self.instants:
            events.append({
                "name": name,
                "cat": name.split(".")[0],
                "ph": "i",
                "s": "g",
                "ts": t * _US,
                "pid": 0,
                "tid": int(attrs.get("track", 0)),
                "args": attrs,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated-seconds", "source": "repro.obs"},
        }

    def to_jsonl(self) -> str:
        """One JSON object per line: spans then instants, in record order."""
        lines = []
        for s in self.spans:
            lines.append(json.dumps({
                "type": "span", "id": s.span_id, "name": s.name,
                "start": s.start, "end": s.end, "parent": s.parent_id,
                "attrs": s.attrs,
            }, sort_keys=True))
        for name, t, attrs in self.instants:
            lines.append(json.dumps({
                "type": "instant", "name": name, "t": t, "attrs": attrs,
            }, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")
