"""Serialize traces and metrics to files, and load them back for reporting.

``repro run --trace-out t.json --metrics-out m.json`` lands here; ``repro
report`` reads the same files back and renders them as tables.  The Chrome
trace format is validated by the smoke tests (``json.load`` + required keys)
and loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.
"""

from __future__ import annotations

import json

from repro.obs.tracer import SpanTracer
from repro.util.hashing import to_jsonable

#: Keys every Chrome trace file must carry (checked by the smoke tests).
CHROME_TRACE_REQUIRED_KEYS = ("traceEvents", "displayTimeUnit")
#: Keys every trace event must carry.
CHROME_EVENT_REQUIRED_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")


def write_trace(tracer: SpanTracer, path: str, *, fmt: str = "chrome") -> None:
    """Write a tracer's spans as Chrome trace JSON or as JSONL."""
    if fmt == "chrome":
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(tracer.to_chrome_trace(), fh)
    elif fmt == "jsonl":
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(tracer.to_jsonl())
    else:
        raise ValueError(f"unknown trace format {fmt!r} (chrome or jsonl)")


def write_metrics(snapshot: dict, path: str, **meta) -> None:
    """Write a metrics snapshot (plus optional metadata keys) as JSON."""
    payload = dict(meta)
    payload.update(snapshot)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def sanitize_snapshot(snapshot: dict | None) -> dict | None:
    """Lower a metrics snapshot to plain JSON types, exactly.

    Snapshots are "plain dicts" by construction, but instrumentation can leak
    numpy scalars into counter/gauge values; those serialize fine yet load
    back as Python floats, breaking the load(dump(x)) == x round-trip the
    result store (:mod:`repro.store`) relies on for bitwise-identical resumed
    campaigns.  This canonicalizes the snapshot once, at persistence time.
    """
    if snapshot is None:
        return None
    return to_jsonable(snapshot)


def load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def validate_chrome_trace(payload: dict) -> list[str]:
    """Return a list of schema problems (empty = valid Chrome trace)."""
    problems = []
    for key in CHROME_TRACE_REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        problems.append("traceEvents is not a list")
        return problems
    for i, event in enumerate(events):
        for key in CHROME_EVENT_REQUIRED_KEYS:
            if key not in event:
                problems.append(f"event {i} missing {key!r}")
                break
        if event.get("ph") == "X" and "dur" not in event:
            problems.append(f"complete event {i} missing 'dur'")
    return problems


def trace_phase_summary(payload: dict) -> dict[str, tuple[int, float]]:
    """Per-span-name ``(count, total_seconds)`` from a Chrome trace dict."""
    summary: dict[str, tuple[int, float]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        name = event["name"]
        count, total = summary.get(name, (0, 0.0))
        summary[name] = (count + 1, total + event.get("dur", 0.0) / 1e6)
    return summary
