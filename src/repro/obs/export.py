"""Serialize traces and metrics to files, and load them back for reporting.

``repro run --trace-out t.json --metrics-out m.json`` lands here; ``repro
report`` reads the same files back and renders them as tables.  The Chrome
trace format is validated by the smoke tests (``json.load`` + required keys)
and loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.
"""

from __future__ import annotations

import json

from repro.obs.tracer import SpanTracer
from repro.util.hashing import to_jsonable

#: Keys every Chrome trace file must carry (checked by the smoke tests).
CHROME_TRACE_REQUIRED_KEYS = ("traceEvents", "displayTimeUnit")
#: Keys every trace event must carry.
CHROME_EVENT_REQUIRED_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")


def write_trace(tracer: SpanTracer, path: str, *, fmt: str = "chrome") -> None:
    """Write a tracer's spans as Chrome trace JSON or as JSONL."""
    if fmt == "chrome":
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(tracer.to_chrome_trace(), fh)
    elif fmt == "jsonl":
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(tracer.to_jsonl())
    else:
        raise ValueError(f"unknown trace format {fmt!r} (chrome or jsonl)")


def write_metrics(snapshot: dict, path: str, **meta) -> None:
    """Write a metrics snapshot (plus optional metadata keys) as JSON."""
    payload = dict(meta)
    payload.update(snapshot)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def sanitize_snapshot(snapshot: dict | None) -> dict | None:
    """Lower a metrics snapshot to plain JSON types, exactly.

    Snapshots are "plain dicts" by construction, but instrumentation can leak
    numpy scalars into counter/gauge values; those serialize fine yet load
    back as Python floats, breaking the load(dump(x)) == x round-trip the
    result store (:mod:`repro.store`) relies on for bitwise-identical resumed
    campaigns.  This canonicalizes the snapshot once, at persistence time.
    """
    if snapshot is None:
        return None
    return to_jsonable(snapshot)


def load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _openmetrics_name(name: str) -> str:
    """Metric names limited to the Prometheus charset."""
    return name.replace(".", "_").replace("-", "_")


def _openmetrics_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return f"{{{inner}}}"


def snapshot_to_openmetrics(snapshot: dict) -> str:
    """Prometheus/OpenMetrics text exposition of one metrics snapshot.

    The scrape-endpoint sibling of
    :meth:`~repro.obs.series.TimeSeriesRecorder.to_openmetrics` (which
    exports the last *sample* of a time series): this renders a live
    :meth:`MetricsRegistry.snapshot` directly, so a long-running service can
    serve ``GET /metrics`` without arming a series recorder.  Histograms are
    exposed as Prometheus classic histograms (``_bucket``/``_sum``/
    ``_count``).
    """
    from repro.obs.metrics import parse_metric_key

    lines: list[str] = []
    for kind, suffix in (("counter", "_total"), ("gauge", "")):
        cols = snapshot.get(f"{kind}s", {})
        seen: set[str] = set()
        for key in sorted(cols):
            name, labels = parse_metric_key(key)
            om_name = _openmetrics_name(name) + suffix
            if om_name not in seen:
                seen.add(om_name)
                lines.append(f"# TYPE {om_name} {kind}")
            lines.append(
                f"{om_name}{_openmetrics_labels(labels)} {cols[key]:g}")
    seen = set()
    for key in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][key]
        name, labels = parse_metric_key(key)
        om_name = _openmetrics_name(name)
        if om_name not in seen:
            seen.add(om_name)
            lines.append(f"# TYPE {om_name} histogram")
        cumulative = 0.0
        for edge, count in zip(hist.get("buckets", []),
                               hist.get("counts", [])):
            cumulative += count
            bucket_labels = dict(labels, le=f"{edge:g}")
            lines.append(f"{om_name}_bucket"
                         f"{_openmetrics_labels(bucket_labels)} "
                         f"{cumulative:g}")
        lines.append(f"{om_name}_bucket"
                     f"{_openmetrics_labels(dict(labels, le='+Inf'))} "
                     f"{hist.get('count', 0):g}")
        lines.append(f"{om_name}_sum{_openmetrics_labels(labels)} "
                     f"{hist.get('sum', 0.0):g}")
        lines.append(f"{om_name}_count{_openmetrics_labels(labels)} "
                     f"{hist.get('count', 0):g}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def validate_chrome_trace(payload: dict) -> list[str]:
    """Return a list of schema problems (empty = valid Chrome trace)."""
    problems = []
    for key in CHROME_TRACE_REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        problems.append("traceEvents is not a list")
        return problems
    for i, event in enumerate(events):
        for key in CHROME_EVENT_REQUIRED_KEYS:
            if key not in event:
                problems.append(f"event {i} missing {key!r}")
                break
        if event.get("ph") == "X" and "dur" not in event:
            problems.append(f"complete event {i} missing 'dur'")
    return problems


def trace_phase_summary(payload: dict) -> dict[str, tuple[int, float]]:
    """Per-span-name ``(count, total_seconds)`` from a Chrome trace dict."""
    summary: dict[str, tuple[int, float]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        name = event["name"]
        count, total = summary.get(name, (0, 0.0))
        summary[name] = (count + 1, total + event.get("dur", 0.0) / 1e6)
    return summary
