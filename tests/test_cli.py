"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestApps:
    def test_lists_all_miniapps(self, capsys):
        code, out = run_cli(capsys, "apps")
        assert code == 0
        for name in ("jacobi3d-charm", "hpccg", "lulesh", "leanmd", "minimd"):
            assert name in out


class TestRun:
    def test_failure_free_run(self, capsys):
        code, out = run_cli(capsys, "run", "--nodes", "2",
                            "--iterations", "60", "--seed", "1")
        assert code == 0
        assert "result bit-correct" in out
        assert "True" in out

    def test_run_with_faults(self, capsys):
        code, out = run_cli(capsys, "run", "--nodes", "4", "--scheme", "medium",
                            "--iterations", "200", "--interval", "3",
                            "--hard-mtbf", "15", "--seed", "2")
        assert code == 0
        assert "recoveries" in out

    def test_checksum_and_mapping_flags(self, capsys):
        code, out = run_cli(capsys, "run", "--nodes", "2", "--iterations", "60",
                            "--checksum", "--mapping", "column")
        assert code == 0

    def test_bad_app_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--app", "doom"])


class TestModel:
    def test_prints_all_schemes(self, capsys):
        code, out = run_cli(capsys, "model", "--sockets", "16384",
                            "--delta", "15")
        assert code == 0
        for scheme in ("strong", "medium", "weak"):
            assert scheme in out
        assert "tau_opt" in out

    def test_parameters_change_output(self, capsys):
        _, small = run_cli(capsys, "model", "--sockets", "1024")
        _, large = run_cli(capsys, "model", "--sockets", "262144")
        assert small != large


class TestFigures:
    def test_fig6(self, capsys):
        code, out = run_cli(capsys, "figure", "fig6")
        assert code == 0
        assert "default" in out and "column" in out and "mixed" in out

    def test_fig8_restricted_apps(self, capsys):
        code, out = run_cli(capsys, "figure", "fig8", "--apps", "leanmd")
        assert code == 0
        assert "leanmd" in out
        assert "jacobi3d-charm" not in out

    def test_fig9_and_fig11_differ(self, capsys):
        _, fig9 = run_cli(capsys, "figure", "fig9")
        _, fig11 = run_cli(capsys, "figure", "fig11")
        assert fig9 != fig11
        assert "tau_opt" in fig9

    def test_fig10(self, capsys):
        code, out = run_cli(capsys, "figure", "fig10", "--apps", "minimd")
        assert code == 0
        assert "reconstruction" in out

    def test_fig12_small(self, capsys):
        code, out = run_cli(capsys, "figure", "fig12", "--nodes", "4",
                            "--horizon", "300", "--failures", "6")
        assert code == 0
        assert "mean gap" in out

    def test_table2(self, capsys):
        code, out = run_cli(capsys, "table2")
        assert code == 0
        assert "4000 atoms" in out


class TestEntryPoint:
    def test_module_is_executable(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "apps"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "jacobi3d-charm" in proc.stdout

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestPlotMode:
    def test_fig6_plot(self, capsys):
        code, out = run_cli(capsys, "figure", "fig6", "--plot")
        assert code == 0
        assert "1 2 3 4 3 2 1 0" in out
        assert out.count("Figure 6") == 3  # one heatmap per mapping

    def test_fig7_plot(self, capsys):
        code, out = run_cli(capsys, "figure", "fig7", "--plot")
        assert code == 0
        assert "legend: o=strong" in out

    def test_fig7_table(self, capsys):
        code, out = run_cli(capsys, "figure", "fig7")
        assert code == 0
        assert "P(undetected SDC)" in out

    def test_fig8_plot(self, capsys):
        code, out = run_cli(capsys, "figure", "fig8", "--apps", "leanmd",
                            "--plot")
        assert code == 0
        assert "o=local" in out

    def test_fig10_plot(self, capsys):
        code, out = run_cli(capsys, "figure", "fig10", "--apps", "minimd",
                            "--plot")
        assert code == 0
        assert "reconstruction" in out

    def test_fig12_plot(self, capsys):
        code, out = run_cli(capsys, "figure", "fig12", "--nodes", "4",
                            "--horizon", "300", "--failures", "6", "--plot")
        assert code == 0
        assert "trajectory" in out
