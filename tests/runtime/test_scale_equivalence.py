"""Large-N observable-equivalence oracle for the scale overhaul.

The vectorized heartbeat sweeps, the struct-of-arrays liveness mirror, and
the batched dependency-stamp fan-outs are only legal because nothing
observable changes.  This drives a 4096-node world (both replicas, ring
tasks, mid-run node deaths and revivals) twice — once on the optimized
runtime, once against embedded per-object replicas of the pre-overhaul
implementations — and asserts the *full* observable record matches:

* every death-detection callback (instant, detector, victim, order);
* every task-progress report (instant, node, progress);
* final per-node last-seen clocks;
* transport counter totals (sent / delivered / dropped, per-kind tallies).

The legacy side also routes dependency stamps through per-message
``send_small`` calls (the loop :meth:`Transport.send_stamps` batched away),
so the fan-out batching claim is exercised at scale too, not just asserted
in a docstring.  The one quantity that *should* differ is heap load:
batching must strictly reduce events processed.
"""

from __future__ import annotations

from typing import Callable

import pytest

from repro.runtime.des import PeriodicHandle, Simulator
from repro.runtime.heartbeat import HEARTBEAT_NBYTES, HeartbeatMonitor
from repro.runtime.messages import MsgKind, Transport
from repro.runtime.node import Node
from repro.runtime.task import DEP_STAMP_NBYTES, Task
from repro.util.rng import RngStream

pytestmark = pytest.mark.scale_smoke


class LegacyHeartbeatMonitor:
    """Verbatim replica of the per-object monitor the SoA sweeps replaced:
    dict ``last_seen``, one ``send_small`` per live node per sweep (N posted
    delivery events), and a full attribute-chasing walk per check sweep."""

    def __init__(self, nodes, buddy_of, *, interval, timeout_factor, on_death):
        self.nodes = {n.node_id: n for n in nodes}
        self.buddy_of = dict(buddy_of)
        self.interval = interval
        self.timeout = timeout_factor * interval
        self.on_death = on_death
        self.last_seen: dict[int, float] = {}
        self._reported: set[tuple[int, int]] = set()
        self._send_sweep_event: PeriodicHandle | None = None
        self._check_sweep_event: PeriodicHandle | None = None

    def start(self) -> None:
        first = next(iter(self.nodes.values()))
        sim = first.sim
        for node in self.nodes.values():
            node.heartbeat_handler = self._on_heartbeat
        self.last_seen = {nid: sim.now for nid in self.nodes}
        self._send_sweep_event = sim.schedule_periodic(
            self.interval, self._send_sweep)
        self._check_sweep_event = sim.schedule_periodic(
            self.interval, self._check_sweep, first_delay=self.timeout)

    def stop(self) -> None:
        if self._send_sweep_event is not None:
            self._send_sweep_event.cancel()
            self._send_sweep_event = None
        if self._check_sweep_event is not None:
            self._check_sweep_event.cancel()
            self._check_sweep_event = None

    def _send_sweep(self) -> None:
        buddy_of = self.buddy_of
        for node in self.nodes.values():
            if node.alive:
                node.transport.send_small(
                    MsgKind.HEARTBEAT, node.node_id, buddy_of[node.node_id],
                    nbytes=HEARTBEAT_NBYTES, tag="hb",
                )

    def _check_sweep(self) -> None:
        timeout = self.timeout
        last_seen = self.last_seen
        reported = self._reported
        for node in self.nodes.values():
            if not node.alive:
                continue
            buddy_id = self.buddy_of[node.node_id]
            silent_for = node.sim.now - last_seen[buddy_id]
            if silent_for >= timeout:
                buddy = self.nodes[buddy_id]
                key = (buddy_id, buddy.failures_survived)
                if key not in reported:
                    reported.add(key)
                    self.on_death(node, buddy)

    def _on_heartbeat(self, msg) -> None:
        self.last_seen[msg.src] = self.nodes[msg.src].sim.now

    def notify_revived(self, node_id: int) -> None:
        now = self.nodes[node_id].sim.now
        self.last_seen[node_id] = now
        self.last_seen[self.buddy_of[node_id]] = now


def _iteration_time(task_id: int, iteration: int) -> float:
    # Deterministic per-(task, iteration) jitter; any skew-producing function
    # works as long as both worlds share it.
    return 0.4 + 0.002 * ((task_id * 2654435761 + iteration * 97) % 89)


def _per_message_send_stamps(transport: Transport) -> Callable:
    """The fan-out loop :meth:`Transport.send_stamps` replaced, reproduced on
    top of the per-message fast path (delivery runs through
    ``Node._on_message`` -> ``Task.on_dep_message``, the pre-batching route)."""
    def send_stamps(src, targets, from_task, stamp, epoch, *, nbytes):
        for dst, to_task in targets:
            transport.send_small(MsgKind.APP, src, dst,
                                 (to_task, from_task, stamp, epoch),
                                 nbytes=nbytes)
    return send_stamps


def _fault_plan(n_per_replica: int, seed: int):
    """Seeded kills, post-detection revivals, and one re-kill (second
    incarnation) — identical action list for both worlds."""
    rng = RngStream(seed, "scale-equivalence/faults")
    n_total = 2 * n_per_replica
    victims = [int(v) for v in rng.choice(n_total, size=6, replace=False)]
    plan = []
    for i, nid in enumerate(victims):
        t_kill = float(rng.uniform(2.0, 6.0))
        plan.append((t_kill, "kill", nid))
        if i % 2 == 0:
            # Detection lands at most timeout + interval after the kill;
            # revive after it so the (id, incarnation) dedup is exercised.
            plan.append((t_kill + 6.0, "revive", nid))
    # One revived node dies again: its second incarnation must be re-detected.
    plan.append((14.5, "kill", victims[0]))
    plan.sort()
    return plan


def _run_world(n_per_replica: int, seed: int, *, legacy: bool):
    sim = Simulator()
    transport = Transport(sim)
    if legacy:
        transport.send_stamps = _per_message_send_stamps(transport)
    trace: list[tuple] = []

    nodes: list[Node] = []
    for replica in (0, 1):
        for rank in range(n_per_replica):
            nodes.append(Node(replica * n_per_replica + rank, replica, rank,
                              sim, transport))
    for node in nodes:
        node.on_progress = (lambda nd: trace.append(
            ("prog", sim.now, nd.node_id, nd.local_max_progress)))

    # One ring of tasks per replica (task_id == node_id, tasks_per_node=1),
    # capped so the rings finish mid-run and go quiet like a real app phase.
    for node in nodes:
        base = node.replica * n_per_replica
        left = base + (node.rank - 1) % n_per_replica
        right = base + (node.rank + 1) % n_per_replica
        task = Task(node.node_id, node,
                    neighbors=[(left, left), (right, right)],
                    iteration_time=_iteration_time)
        task.iteration_cap = 8
        node.add_task(task)

    buddy_of = {}
    for rank in range(n_per_replica):
        buddy_of[rank] = n_per_replica + rank
        buddy_of[n_per_replica + rank] = rank
    monitor_cls = LegacyHeartbeatMonitor if legacy else HeartbeatMonitor
    monitor = monitor_cls(
        nodes, buddy_of, interval=1.0, timeout_factor=4.0,
        on_death=lambda det, dead: trace.append(
            ("detect", sim.now, det.node_id, dead.node_id)))
    monitor.start()
    for node in nodes:
        node.start_tasks()

    node_by_id = {n.node_id: n for n in nodes}

    def apply(action: str, nid: int) -> None:
        node = node_by_id[nid]
        if action == "kill":
            trace.append(("kill", sim.now, nid))
            node.die()
        else:
            trace.append(("revive", sim.now, nid))
            node.revive()
            monitor.notify_revived(nid)

    for t, action, nid in _fault_plan(n_per_replica, seed):
        sim.schedule_at(t, apply, action, nid)

    sim.run(until=20.0)
    monitor.stop()
    return {
        "trace": trace,
        "last_seen": dict(monitor.last_seen),
        "sent": transport.messages_sent,
        "delivered": transport.messages_delivered,
        "dropped": transport.messages_dropped,
        "sent_by_kind": dict(transport.sent_by_kind),
        "bytes_by_kind": dict(transport.bytes_by_kind),
        "batched_messages": transport.batched_messages,
        "events": sim.events_processed,
        "final_progress": [t.progress for n in nodes for t in n.tasks],
    }


class TestLargeNObservableEquivalence:
    def test_vectorized_runtime_matches_per_object_replica(self):
        n_per_replica = 2048  # 4096 nodes / 4096 tasks across both replicas
        new = _run_world(n_per_replica, seed=11, legacy=False)
        old = _run_world(n_per_replica, seed=11, legacy=True)

        assert new["trace"] == old["trace"]
        assert new["last_seen"] == old["last_seen"]
        assert new["final_progress"] == old["final_progress"]
        for key in ("sent", "delivered", "dropped",
                    "sent_by_kind", "bytes_by_kind"):
            assert new[key] == old[key], key

        # The scenario actually exercised what it claims to: kills, revivals,
        # a re-detection of a second incarnation, and real app traffic.
        kinds = [entry[0] for entry in new["trace"]]
        assert kinds.count("kill") == 7
        assert kinds.count("revive") == 3
        assert kinds.count("detect") >= 7
        assert kinds.count("prog") > 4 * n_per_replica
        detected = [entry[3] for entry in new["trace"] if entry[0] == "detect"]
        assert len(detected) == len(set(
            (nid, detected[:i].count(nid)) for i, nid in enumerate(detected)))

        # Batching is the *only* divergence: strictly fewer heap events for
        # the same observable execution, every coalesced message accounted.
        assert new["batched_messages"] > 0
        assert old["batched_messages"] == 0
        assert new["events"] < old["events"]
