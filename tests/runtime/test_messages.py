"""Transport tests: latency and fail-stop message semantics."""

import pytest

from repro.runtime.des import Simulator
from repro.runtime.messages import Message, MsgKind, Transport
from repro.util.errors import SimulationError


def setup():
    sim = Simulator()
    transport = Transport(sim, latency=1e-3, bandwidth=1e6)
    inboxes = {i: [] for i in range(3)}
    for i in range(3):
        transport.register(i, inboxes[i].append)
    return sim, transport, inboxes


class TestDelivery:
    def test_message_arrives_with_latency(self):
        sim, transport, inboxes = setup()
        transport.send(Message(MsgKind.APP, src=0, dst=1, payload="hi", nbytes=1000))
        sim.run()
        assert len(inboxes[1]) == 1
        # latency + nbytes/bandwidth = 1 ms + 1 ms.
        assert sim.now == pytest.approx(2e-3)

    def test_extra_delay_applied(self):
        sim, transport, _ = setup()
        transport.send(Message(MsgKind.APP, src=0, dst=1, nbytes=0), extra_delay=0.5)
        sim.run()
        assert sim.now == pytest.approx(0.5 + 1e-3)

    def test_unregistered_destination_rejected(self):
        _, transport, _ = setup()
        with pytest.raises(SimulationError):
            transport.send(Message(MsgKind.APP, src=0, dst=99))


class TestFailStop:
    def test_dead_sender_drops_silently(self):
        sim, transport, inboxes = setup()
        transport.set_alive(0, False)
        transport.send(Message(MsgKind.APP, src=0, dst=1))
        sim.run()
        assert inboxes[1] == []
        assert transport.messages_dropped == 1

    def test_dead_receiver_drops_silently(self):
        sim, transport, inboxes = setup()
        transport.send(Message(MsgKind.APP, src=0, dst=1))
        transport.set_alive(1, False)
        sim.run()
        assert inboxes[1] == []
        assert transport.messages_dropped == 1

    def test_death_after_delivery_does_not_retract(self):
        sim, transport, inboxes = setup()
        transport.send(Message(MsgKind.APP, src=0, dst=1))
        sim.run()
        transport.set_alive(1, False)
        assert len(inboxes[1]) == 1

    def test_revival_restores_delivery(self):
        sim, transport, inboxes = setup()
        transport.set_alive(1, False)
        transport.send(Message(MsgKind.APP, src=0, dst=1))
        sim.run()
        transport.set_alive(1, True)
        transport.send(Message(MsgKind.APP, src=0, dst=1))
        sim.run()
        assert len(inboxes[1]) == 1

    def test_counters(self):
        sim, transport, _ = setup()
        transport.send(Message(MsgKind.APP, src=0, dst=1))
        transport.send(Message(MsgKind.APP, src=0, dst=2))
        sim.run()
        assert transport.messages_sent == 2
        assert transport.messages_delivered == 2


class TestSendSmall:
    """The fast path must be observably identical to send(Message(...))."""

    def test_same_delivery_instant_as_send(self):
        sim_a, tr_a, in_a = setup()
        tr_a.send(Message(MsgKind.HEARTBEAT, src=0, dst=1, nbytes=16, tag="hb"))
        sim_a.run()
        sim_b, tr_b, in_b = setup()
        tr_b.send_small(MsgKind.HEARTBEAT, 0, 1, nbytes=16, tag="hb")
        sim_b.run()
        assert sim_a.now == sim_b.now  # bit-identical delay
        assert len(in_a[1]) == len(in_b[1]) == 1

    def test_delivered_message_fields(self):
        sim, transport, inboxes = setup()
        transport.send_small(MsgKind.APP, 0, 2, payload=("p", 1),
                             nbytes=128, tag="dep")
        sim.run()
        (msg,) = inboxes[2]
        assert msg.kind is MsgKind.APP
        assert (msg.src, msg.dst) == (0, 2)
        assert msg.payload == ("p", 1)
        assert msg.nbytes == 128
        assert msg.tag == "dep"
        assert msg.send_time == 0.0

    def test_same_accounting_as_send(self):
        sim, transport, _ = setup()
        transport.send_small(MsgKind.HEARTBEAT, 0, 1, nbytes=16)
        transport.send_small(MsgKind.HEARTBEAT, 1, 2, nbytes=16)
        sim.run()
        assert transport.messages_sent == 2
        assert transport.sent_by_kind["heartbeat"] == 2
        assert transport.bytes_by_kind["heartbeat"] == 32

    def test_dead_sender_drops(self):
        sim, transport, inboxes = setup()
        transport.set_alive(0, False)
        transport.send_small(MsgKind.HEARTBEAT, 0, 1, nbytes=16)
        sim.run()
        assert inboxes[1] == []
        assert transport.messages_dropped == 1

    def test_dead_receiver_drops(self):
        sim, transport, inboxes = setup()
        transport.send_small(MsgKind.HEARTBEAT, 0, 1, nbytes=16)
        transport.set_alive(1, False)
        sim.run()
        assert inboxes[1] == []
        assert transport.messages_dropped == 1

    def test_unregistered_destination_rejected(self):
        _, transport, _ = setup()
        with pytest.raises(SimulationError):
            transport.send_small(MsgKind.APP, 0, 99)

    def test_memoised_delay_is_not_stale_across_sizes(self):
        sim, transport, _ = setup()
        transport.send_small(MsgKind.APP, 0, 1, nbytes=1000)
        sim.run()
        t_big = sim.now
        sim2, transport2, _ = setup()
        transport2.send_small(MsgKind.APP, 0, 1, nbytes=0)
        transport2.send_small(MsgKind.APP, 0, 1, nbytes=1000)
        sim2.run()
        assert sim2.now == t_big  # the 1000-byte delay, not the memoised 0-byte one
