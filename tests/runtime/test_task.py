"""Task execution-engine tests: dependencies, pausing, rollback epochs."""

import pytest

from repro.runtime.des import Simulator
from repro.runtime.messages import Transport
from repro.runtime.node import Node
from repro.runtime.task import Task, TaskState


def build_ring(n_tasks=4, iteration_seconds=0.1, tasks_per_node=1):
    """n tasks in a dependency ring, one node each by default."""
    sim = Simulator()
    transport = Transport(sim)
    n_nodes = n_tasks // tasks_per_node
    nodes = [Node(i, 0, i, sim, transport) for i in range(n_nodes)]
    tasks = []
    for tid in range(n_tasks):
        node = nodes[tid // tasks_per_node]
        left, right = (tid - 1) % n_tasks, (tid + 1) % n_tasks
        neighbors = [(left // tasks_per_node, left), (right // tasks_per_node, right)]
        t = Task(tid, node, neighbors=neighbors,
                 iteration_time=lambda task_id, it: iteration_seconds)
        node.add_task(t)
        tasks.append(t)
    return sim, nodes, tasks


class TestForwardProgress:
    def test_tasks_advance_through_iterations(self):
        sim, nodes, tasks = build_ring()
        for n in nodes:
            n.start_tasks()
        sim.run(until=2.0)
        assert all(t.progress >= 10 for t in tasks)

    def test_dependency_gating_bounds_skew(self):
        # A task can be at most ~1 iteration ahead of its ring neighbours.
        def jittered(task_id, it):
            return 0.1 * (1.0 + 0.3 * ((task_id * 7 + it) % 5) / 5)

        sim, nodes, tasks = build_ring()
        for t in tasks:
            t.iteration_time = jittered
        for n in nodes:
            n.start_tasks()
        sim.run(until=5.0)
        progresses = [t.progress for t in tasks]
        assert max(progresses) - min(progresses) <= 2

    def test_node_tracks_local_max_progress(self):
        sim, nodes, tasks = build_ring(n_tasks=4, tasks_per_node=2)
        for n in nodes:
            n.start_tasks()
        sim.run(until=1.05)
        for n in nodes:
            assert n.local_max_progress == max(t.progress for t in n.tasks)


class TestPauseResume:
    def test_pause_at_iteration(self):
        sim, nodes, tasks = build_ring()
        for n in nodes:
            n.start_tasks()
        sim.run(until=0.35)
        for t in tasks:
            t.request_pause_at(5)
        sim.run(until=5.0)
        assert all(t.progress == 5 for t in tasks)
        assert all(t.state is TaskState.PAUSED for t in tasks)

    def test_resume_continues(self):
        sim, nodes, tasks = build_ring()
        for n in nodes:
            n.start_tasks()
        for t in tasks:
            t.request_pause_at(3)
        sim.run(until=2.0)
        for t in tasks:
            t.resume()
        sim.run(until=4.0)
        assert all(t.progress > 10 for t in tasks)

    def test_iteration_cap_is_hard(self):
        sim, nodes, tasks = build_ring()
        for t in tasks:
            t.iteration_cap = 7
        for n in nodes:
            n.start_tasks()
        sim.run(until=10.0)
        assert all(t.progress == 7 for t in tasks)
        # resume() must not override the cap.
        for t in tasks:
            t.resume()
        sim.run(until=12.0)
        assert all(t.progress == 7 for t in tasks)

    def test_all_tasks_ready_callback(self):
        sim, nodes, tasks = build_ring(n_tasks=4, tasks_per_node=2)
        ready_nodes = []
        for n in nodes:
            n.on_all_tasks_ready = ready_nodes.append
            n.start_tasks()
        for t in tasks:
            t.request_pause_at(2)
        sim.run(until=2.0)
        assert set(id(n) for n in ready_nodes) >= set(id(n) for n in nodes)


class TestRollback:
    def test_restore_resets_progress_and_resumes(self):
        sim, nodes, tasks = build_ring()
        for n in nodes:
            n.start_tasks()
        sim.run(until=1.05)
        assert all(t.progress >= 10 for t in tasks)
        for t in tasks:
            t.restore(3)
        sim.run(until=1.6)
        assert all(t.progress > 3 for t in tasks)

    def test_stale_messages_discarded_after_restore(self):
        sim, nodes, tasks = build_ring()
        for n in nodes:
            n.start_tasks()
        sim.run(until=1.05)
        old_epoch = tasks[0].epoch
        for t in tasks:
            t.restore(2)
        assert all(t.epoch == old_epoch + 1 for t in tasks)
        # Pre-restore stamps must not unblock post-restore iterations:
        tasks[0].on_dep_message(from_task=1, stamp=50, epoch=old_epoch)
        assert tasks[0].dep_stamps[1] < 50

    def test_in_flight_compute_cancelled_by_restore(self):
        sim, nodes, tasks = build_ring(iteration_seconds=1.0)
        for n in nodes:
            n.start_tasks()
        sim.run(until=0.5)  # everyone mid-iteration-1
        for t in tasks:
            t.restore(0)
        sim.run(until=0.9)
        # The old completion (due at t=1.0) must not double-fire.
        assert all(t.progress == 0 for t in tasks)
        sim.run(until=2.0)
        assert all(t.progress >= 1 for t in tasks)


class TestDeath:
    def test_killed_task_stops(self):
        sim, nodes, tasks = build_ring()
        for n in nodes:
            n.start_tasks()
        sim.run(until=0.55)
        nodes[1].die()
        frozen = tasks[1].progress
        sim.run(until=2.0)
        assert tasks[1].progress == frozen
        assert tasks[1].state is TaskState.DEAD

    def test_ring_starves_without_dead_neighbour(self):
        # Neighbours of a dead task stall within a couple of iterations -
        # the natural stall of the crashed replica in the weak scheme.
        sim, nodes, tasks = build_ring()
        for n in nodes:
            n.start_tasks()
        sim.run(until=0.55)
        nodes[1].die()
        sim.run(until=5.0)
        alive = [t for i, t in enumerate(tasks) if i != 1]
        assert max(t.progress for t in alive) <= tasks[1].progress + 2
