"""Golden event-order equivalence: the tuple-heap engine vs the pre-overhaul
engine.

The engine overhaul (plain-tuple heap entries, fire-and-forget ``post``,
in-engine periodic rescheduling) is only legal because executions stay
bit-identical.  These tests drive the optimized :class:`Simulator` and a
verbatim replica of the old engine (``benchmarks.perf.bench_des.
LegacySimulator``) through the same seeded workloads and assert the *exact*
``(time, label)`` firing sequence matches — including FIFO tie-breaking at
coincident instants and interactions with cancellations.

The heartbeat coalescing rides on a specific ordering claim: a periodic
event re-inserted by the engine gets the same sequence number a callback
rescheduling itself as its *last statement* would have drawn.  That claim
gets its own trace test here.
"""

import pytest

from benchmarks.perf.bench_des import LegacySimulator
from repro.runtime.des import Simulator

_MUL = 6364136223846793005
_ADD = 1442695040888963407
_MASK = (1 << 64) - 1


class _SeededWorkload:
    """A deterministic storm of schedules, nested schedules, ties, and
    cancellations, driven identically on either engine."""

    def __init__(self, sim, seed: int, n_roots: int = 40, fanout_mod: int = 5):
        self.sim = sim
        self.state = (seed * 2 + 1) & _MASK
        self.trace: list[tuple[float, int]] = []
        self.handles: list = []
        self.next_label = 0
        self.n_roots = n_roots
        self.fanout_mod = fanout_mod

    def _rnd(self) -> int:
        self.state = (self.state * _MUL + _ADD) & _MASK
        return self.state

    def _delay(self) -> float:
        # Coarse quantization produces plenty of exact ties, exercising the
        # FIFO sequence-number tie-break.
        return (self._rnd() >> 56) * 0.25

    def start(self) -> None:
        for _ in range(self.n_roots):
            self._spawn()

    def _spawn(self) -> None:
        label = self.next_label
        self.next_label += 1
        self.handles.append(self.sim.schedule(self._delay(), self.fire, label))

    def fire(self, label: int) -> None:
        self.trace.append((self.sim.now, label))
        r = self._rnd()
        if r % self.fanout_mod == 0 and self.handles:
            # Cancel a pseudo-random pending handle (cancelling an already
            # fired/cancelled one must also be an identical no-op on both).
            self.handles[r % len(self.handles)].cancel()
        for _ in range(r % 3):  # 0..2 successors keeps the storm finite-ish
            if self.next_label < 4000:
                self._spawn()


def _run_workload(sim, seed: int) -> tuple[list, float, int]:
    w = _SeededWorkload(sim, seed)
    w.start()
    final = sim.run()
    return w.trace, final, sim.events_processed


class TestTraceEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_seeded_storm_replays_identically(self, seed):
        new_trace, new_final, new_n = _run_workload(Simulator(), seed)
        old_trace, old_final, old_n = _run_workload(LegacySimulator(), seed)
        assert new_trace == old_trace
        assert new_final == old_final
        assert new_n == old_n
        assert len(new_trace) > 100  # the storm actually stormed

    def test_post_matches_schedule_ordering(self):
        """Anonymous (``post``) and handled (``schedule``) events draw from
        the same sequence stream, so interleaving them preserves FIFO order
        at coincident instants."""
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "s0")
        sim.post(1.0, log.append, "p0")
        sim.schedule(1.0, log.append, "s1")
        sim.post(1.0, log.append, "p1")
        sim.run()
        assert log == ["s0", "p0", "s1", "p1"]

    def test_run_until_clock_semantics_match_legacy(self):
        for until in (0.5, 1.0, 10.0):
            new, old = Simulator(), LegacySimulator()
            for sim in (new, old):
                sim.schedule(1.0, lambda: None)
            assert new.run(until=until) == old.run(until=until)
            assert new.now == old.now


class TestPeriodicOrderingParity:
    """``schedule_periodic`` must be indistinguishable (same times, same
    tie-break order) from the callback-reschedules-itself-last pattern it
    replaced — that is the whole argument for the heartbeat coalescing."""

    def _resched_trace(self, sim_cls, intervals) -> list:
        sim = sim_cls()
        trace = []

        def make_tick(tid, interval):
            def tick():
                trace.append((sim.now, tid))
                sim.schedule(interval, tick)  # reschedule as last statement
            return tick

        for tid, interval in enumerate(intervals):
            sim.schedule(interval, make_tick(tid, interval))
        sim.run(until=30.0)
        return trace

    def _periodic_trace(self, intervals) -> list:
        sim = Simulator()
        trace = []
        for tid, interval in enumerate(intervals):
            sim.schedule_periodic(interval, lambda t=tid: trace.append((sim.now, t)))
        sim.run(until=30.0)
        return trace

    @pytest.mark.parametrize("intervals", [
        (1.0, 1.0, 1.0),          # permanent three-way ties
        (0.5, 1.0, 2.0),          # harmonic ties at every integer instant
        (0.75, 1.25),             # ties only at 3.75, 7.5, ...
    ])
    def test_periodic_equals_self_rescheduling(self, intervals):
        expected = self._resched_trace(Simulator, intervals)
        assert self._periodic_trace(intervals) == expected
        assert self._resched_trace(LegacySimulator, intervals) == expected

    def test_first_delay_offsets_only_the_first_firing(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(2.0, lambda: times.append(sim.now),
                              first_delay=0.5)
        sim.run(until=7.0)
        assert times == [0.5, 2.5, 4.5, 6.5]

    def test_cancel_inside_callback_stops_rescheduling(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_periodic(1.0, lambda: (
            fired.append(sim.now),
            handle.cancel() if len(fired) == 3 else None))
        sim.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]
        assert sim.pending_events == 0
