"""Node dispatch and bookkeeping tests."""

import pytest

from repro.runtime.des import Simulator
from repro.runtime.messages import Message, MsgKind, Transport
from repro.runtime.node import Node
from repro.runtime.task import Task
from repro.util.errors import SimulationError


def build():
    sim = Simulator()
    transport = Transport(sim)
    node = Node(0, 0, 0, sim, transport)
    peer = Node(1, 0, 1, sim, transport)
    return sim, transport, node, peer


class TestDispatch:
    def test_heartbeat_routed_to_handler(self):
        sim, transport, node, peer = build()
        seen = []
        node.heartbeat_handler = seen.append
        transport.send(Message(MsgKind.HEARTBEAT, src=1, dst=0))
        sim.run()
        assert len(seen) == 1

    def test_control_without_handler_raises(self):
        sim, transport, node, peer = build()
        transport.send(Message(MsgKind.CONTROL, src=1, dst=0, tag="x"))
        with pytest.raises(SimulationError):
            sim.run()

    def test_app_message_to_unknown_task_ignored(self):
        sim, transport, node, peer = build()
        transport.send(Message(MsgKind.APP, src=1, dst=0,
                               payload=(99, 0, 1, 0)))
        sim.run()  # no task 99 hosted: silently dropped

    def test_dead_node_ignores_everything(self):
        sim, transport, node, peer = build()
        seen = []
        node.heartbeat_handler = seen.append
        node.die()
        transport.send(Message(MsgKind.HEARTBEAT, src=1, dst=0))
        sim.run()
        assert seen == []


class TestBookkeeping:
    def _task(self, node, tid=0):
        t = Task(tid, node, neighbors=[],
                 iteration_time=lambda *_: 0.1)
        node.add_task(t)
        return t

    def test_local_max_progress_tracks_fastest_task(self):
        sim, transport, node, peer = build()
        fast = self._task(node, 0)
        slow = self._task(node, 1)
        slow.iteration_time = lambda *_: 0.3
        node.start_tasks()
        sim.run(until=0.95)
        assert node.local_max_progress == fast.progress
        assert node.local_max_progress > slow.progress

    def test_min_task_progress_excludes_dead(self):
        sim, transport, node, peer = build()
        a = self._task(node, 0)
        b = self._task(node, 1)
        node.start_tasks()
        sim.run(until=0.55)
        b.kill()
        b.progress = 0
        assert node.min_task_progress() == a.progress

    def test_revive_counts_incarnations(self):
        sim, transport, node, peer = build()
        assert node.failures_survived == 0
        node.die()
        node.revive()
        node.die()
        node.revive()
        assert node.failures_survived == 2
        assert node.alive

    def test_double_die_is_idempotent(self):
        sim, transport, node, peer = build()
        t = self._task(node)
        node.start_tasks()
        node.die()
        node.die()
        assert not node.alive
        assert node.failures_survived == 0

    def test_progress_callback_invoked(self):
        sim, transport, node, peer = build()
        self._task(node)
        calls = []
        node.on_progress = calls.append
        node.start_tasks()
        sim.run(until=0.35)
        assert len(calls) == 3
