"""Heartbeat failure-detection tests (§6.1 no-response scheme)."""

import pytest

from repro.runtime.des import Simulator
from repro.runtime.heartbeat import HeartbeatMonitor
from repro.runtime.messages import Transport
from repro.runtime.node import Node
from repro.util.errors import ConfigurationError


def build(n_pairs=2, interval=0.5, timeout_factor=4.0):
    sim = Simulator()
    transport = Transport(sim)
    nodes = []
    buddy = {}
    for rank in range(n_pairs):
        a = Node(rank, 0, rank, sim, transport)
        b = Node(n_pairs + rank, 1, rank, sim, transport)
        nodes += [a, b]
        buddy[a.node_id] = b.node_id
        buddy[b.node_id] = a.node_id
    deaths = []
    monitor = HeartbeatMonitor(nodes, buddy, interval=interval,
                               timeout_factor=timeout_factor,
                               on_death=lambda det, dead: deaths.append(
                                   (det.node_id, dead.node_id, det.sim.now)))
    return sim, nodes, monitor, deaths


class TestDetection:
    def test_no_false_positives_when_healthy(self):
        sim, nodes, monitor, deaths = build()
        monitor.start()
        sim.run(until=60.0)
        assert deaths == []

    def test_dead_node_detected_within_timeout_plus_interval(self):
        sim, nodes, monitor, deaths = build()
        monitor.start()
        sim.run(until=10.0)
        nodes[0].die()
        sim.run(until=20.0)
        assert len(deaths) == 1
        detector, dead, when = deaths[0]
        assert dead == nodes[0].node_id
        assert detector == monitor.buddy_of[nodes[0].node_id]
        assert when <= 10.0 + monitor.timeout + monitor.interval + 1e-9

    def test_detection_fires_exactly_once(self):
        sim, nodes, monitor, deaths = build()
        monitor.start()
        sim.run(until=5.0)
        nodes[2].die()
        sim.run(until=60.0)
        assert len(deaths) == 1

    def test_revival_resets_both_clocks(self):
        sim, nodes, monitor, deaths = build()
        monitor.start()
        sim.run(until=5.0)
        nodes[0].die()
        sim.run(until=10.0)
        assert len(deaths) == 1
        nodes[0].revive()
        monitor.notify_revived(nodes[0].node_id)
        sim.run(until=40.0)
        # Neither the revived node nor its buddy may be re-declared dead.
        assert len(deaths) == 1

    def test_second_failure_after_revival_detected_again(self):
        sim, nodes, monitor, deaths = build()
        monitor.start()
        sim.run(until=5.0)
        nodes[0].die()
        sim.run(until=10.0)
        nodes[0].revive()
        monitor.notify_revived(nodes[0].node_id)
        sim.run(until=15.0)
        nodes[0].die()
        sim.run(until=25.0)
        assert len(deaths) == 2

    def test_multiple_simultaneous_failures(self):
        sim, nodes, monitor, deaths = build(n_pairs=3)
        monitor.start()
        sim.run(until=5.0)
        nodes[0].die()
        nodes[3].die()  # a node in the other replica
        sim.run(until=15.0)
        assert {d[1] for d in deaths} == {nodes[0].node_id, nodes[3].node_id}


class TestValidation:
    def test_asymmetric_buddy_map_rejected(self):
        sim = Simulator()
        transport = Transport(sim)
        a = Node(0, 0, 0, sim, transport)
        b = Node(1, 1, 0, sim, transport)
        with pytest.raises(ConfigurationError):
            HeartbeatMonitor([a, b], {0: 1, 1: 0, 2: 0},
                             on_death=lambda *a: None)

    def test_bad_interval_rejected(self):
        sim = Simulator()
        transport = Transport(sim)
        a = Node(0, 0, 0, sim, transport)
        b = Node(1, 1, 0, sim, transport)
        with pytest.raises(ConfigurationError):
            HeartbeatMonitor([a, b], {0: 1, 1: 0}, interval=0.0,
                             on_death=lambda *a: None)
