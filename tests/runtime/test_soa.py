"""Struct-of-arrays backing: private vs shared-memory arena equivalence.

The contract of :mod:`repro.runtime.soa` is that the arena only changes
*where the bytes live* — a :class:`NodeStateArrays` or
:class:`TaskProgressArray` constructed over :class:`ShmArena` views must
behave exactly like one over private numpy allocations, and the arena's
create/attach/close/unlink lifecycle must be safe to drive from tests
without leaking segments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.soa import NodeStateArrays, ShmArena, TaskProgressArray


@pytest.fixture
def arena():
    a = ShmArena.create(4096)
    yield a
    a.close()
    a.unlink()


class TestShmArena:
    def test_create_zero_fills_and_views_share_bytes(self, arena):
        v1 = arena.view(0, 8, np.int64)
        assert (v1 == 0).all()
        v1[3] = 42
        v2 = arena.view(0, 8, np.int64)
        assert v2[3] == 42
        del v1, v2

    def test_views_at_offsets_do_not_overlap(self, arena):
        a = arena.view(0, 4, np.int64)
        b = arena.view(32, 4, np.float64)
        a[:] = 7
        b[:] = 1.5
        assert (a == 7).all() and (b == 1.5).all()
        del a, b

    def test_attach_by_name_sees_creator_writes(self, arena):
        v = arena.view(0, 4, np.int64)
        v[:] = [1, 2, 3, 4]
        other = ShmArena.attach(arena.name)
        try:
            w = other.view(0, 4, np.int64)
            assert w.tolist() == [1, 2, 3, 4]
            assert other.owner is False
            del w
        finally:
            other.close()
        del v

    def test_attacher_unlink_is_a_noop(self, arena):
        other = ShmArena.attach(arena.name)
        other.unlink()  # non-owner: must not remove the segment
        other.close()
        again = ShmArena.attach(arena.name)
        again.close()

    def test_close_with_live_views_does_not_raise(self):
        # Teardown ordering bugs (a view outliving its arena) must degrade
        # to a swallowed BufferError, never an exception out of close().
        a = ShmArena.create(64)
        v = a.view(0, 8, np.int64)
        a.close()
        del v
        a.close()
        a.unlink()

    def test_unlink_idempotent(self):
        a = ShmArena.create(64)
        a.close()
        a.unlink()
        a.unlink()


class TestBufferBackedNodeState:
    def _buffers(self, arena, n):
        return (arena.view(0, n, np.bool_),
                arena.view(64, n, np.float64),
                arena.view(256, n, np.int64))

    def test_matches_private_backing(self, arena):
        ids = [10, 11, 20, 21]
        private = NodeStateArrays(ids)
        shared = NodeStateArrays(ids, buffers=self._buffers(arena, len(ids)))
        assert shared.slot_of == private.slot_of
        for soa in (private, shared):
            soa.set_dead(1)
            soa.set_alive(1, failures_survived=3)
            soa.set_dead(2)
            soa.last_seen[0] = 4.5
        assert shared.alive.tolist() == private.alive.tolist()
        assert shared.last_seen.tolist() == private.last_seen.tolist()
        assert (shared.failures_survived.tolist()
                == private.failures_survived.tolist())

    def test_buffers_reinitialised_on_construction(self, arena):
        bufs = self._buffers(arena, 3)
        bufs[0][:] = False
        bufs[1][:] = 9.0
        bufs[2][:] = 5
        soa = NodeStateArrays([1, 2, 3], buffers=bufs)
        assert soa.alive.all()
        assert (soa.last_seen == 0.0).all()
        assert (soa.failures_survived == 0).all()

    def test_length_mismatch_rejected(self, arena):
        with pytest.raises(ValueError):
            NodeStateArrays([1, 2, 3], buffers=self._buffers(arena, 2))


class TestBufferBackedTaskProgress:
    def test_matches_private_backing(self, arena):
        buf = arena.view(0, 4, np.int64)
        buf[:] = 99  # stale content must be wiped
        private = TaskProgressArray(4)
        shared = TaskProgressArray(4, progress_buffer=buf)
        for soa in (private, shared):
            soa.set_cap(5)
            soa.stamp(0, 0, 5)
            soa.stamp(1, 0, 3)
            soa.stamp(1, 3, 5)
            soa.stamp(0, 5, 2)  # rollback re-raises below_cap
        assert shared.progress.tolist() == private.progress.tolist()
        assert shared.below_cap == private.below_cap
        assert shared.all_at_cap == private.all_at_cap
        assert shared.min_progress() == private.min_progress()
        del buf

    def test_length_mismatch_rejected(self, arena):
        with pytest.raises(ValueError):
            TaskProgressArray(8, progress_buffer=arena.view(0, 4, np.int64))
