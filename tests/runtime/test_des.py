"""Discrete-event simulator tests."""

import pytest

from repro.runtime.des import Simulator
from repro.util.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, log.append, "c")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(2.0, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        sim = Simulator()
        log = []
        for tag in "abcde":
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == list("abcde")

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(2.0, inner)

        def inner():
            log.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 3.0)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)


class TestControl:
    def test_run_until_pauses_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, 1)
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()
        assert fired == [1]

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, fired.append, "x")
        h.cancel()
        sim.run()
        assert fired == []
        assert not h.pending

    def test_stop_halts_processing(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append(1), sim.stop()))
        sim.schedule(2.0, log.append, 2)
        sim.run()
        assert log == [1]

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.peek_time() == 2.0

    def test_pending_events_count(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        h = sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.pending_events == 1

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestPost:
    def test_post_fires_like_schedule(self):
        sim = Simulator()
        log = []
        sim.post(2.0, log.append, "b")
        sim.post(1.0, log.append, "a")
        sim.run()
        assert log == ["a", "b"]
        assert sim.now == 2.0

    def test_post_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.post(-0.1, lambda: None)

    def test_post_counts_as_scheduled_and_pending(self):
        sim = Simulator()
        sim.post(1.0, lambda: None)
        assert sim.events_scheduled == 1
        assert sim.pending_events == 1
        sim.run()
        assert sim.events_processed == 1
        assert sim.pending_events == 0


class TestPeriodic:
    def test_fires_every_interval_until_cancelled(self):
        sim = Simulator()
        times = []
        handle = sim.schedule_periodic(1.5, lambda: times.append(sim.now))
        sim.run(until=5.0)
        assert times == [1.5, 3.0, 4.5]
        assert handle.pending
        handle.cancel()
        sim.run(until=10.0)
        assert times == [1.5, 3.0, 4.5]

    def test_nonpositive_interval_rejected(self):
        sim = Simulator()
        for bad in (0.0, -1.0):
            with pytest.raises(SimulationError):
                sim.schedule_periodic(bad, lambda: None)

    def test_negative_first_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(1.0, lambda: None, first_delay=-0.5)

    def test_cancel_before_first_firing(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_periodic(1.0, fired.append, "x")
        handle.cancel()
        sim.run(until=5.0)
        assert fired == []
        assert sim.pending_events == 0

    def test_periodic_is_one_pending_event(self):
        sim = Simulator()
        handle = sim.schedule_periodic(1.0, lambda: None)
        sim.run(until=100.5)  # 100 firings
        assert sim.pending_events == 1  # still armed
        handle.cancel()
        assert sim.pending_events == 0


class TestCounterConsistency:
    def test_double_cancel_decrements_pending_once(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        h.cancel()
        h.cancel()
        assert sim.pending_events == 0

    def test_cancel_after_fire_is_a_noop(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.run()
        h.cancel()
        assert sim.pending_events == 0
        assert sim.events_cancelled == 0

    def test_events_cancelled_same_via_peek_or_run(self):
        """Reaping goes through one shared helper, so the count is the same
        whether cancelled entries are discovered by peek_time or by run."""
        def build():
            sim = Simulator()
            for i in range(4):
                h = sim.schedule(1.0 + i, lambda: None)
                if i % 2 == 0:
                    h.cancel()
            return sim

        via_run = build()
        via_run.run()
        via_peek = build()
        assert via_peek.peek_time() == 2.0
        via_peek.run()
        assert via_run.events_cancelled == via_peek.events_cancelled == 2
        assert via_run.events_processed == via_peek.events_processed == 2

    def test_max_queue_depth_tracks_high_water(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.post(1.0, lambda: None)
        sim.run()
        assert sim.max_queue_depth == 4
