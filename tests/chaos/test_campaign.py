"""Chaos campaigns: aggregation, parallel==serial, and the CI smoke sweep."""

import pytest

from repro.chaos import run_chaos_campaign, run_chaos_seed


class TestCampaign:
    def test_count_means_range(self):
        result = run_chaos_campaign(4, shrink=False)
        assert result.seeds == [0, 1, 2, 3]
        assert len(result.outcomes) == 4

    def test_explicit_seed_list(self):
        result = run_chaos_campaign([5, 9], shrink=False)
        assert [o.seed for o in result.outcomes] == [5, 9]

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            run_chaos_campaign(2, workers=0)

    def test_coverage_matrix_counts_all_outcomes(self):
        result = run_chaos_campaign(12, shrink=False)
        coverage = result.coverage()
        assert sum(coverage.values()) == 12
        assert len(coverage) == 12  # the full 12-cell cycle

    def test_parallel_matches_serial_bitwise(self):
        serial = run_chaos_campaign(6, workers=1, shrink=False)
        parallel = run_chaos_campaign(6, workers=3, shrink=False)
        assert ([o.fingerprint for o in serial.outcomes]
                == [o.fingerprint for o in parallel.outcomes])

    def test_seed_rerun_is_bitwise_reproducible(self):
        assert (run_chaos_seed(13).fingerprint
                == run_chaos_seed(13).fingerprint)


@pytest.mark.chaos_smoke
class TestSmokeSweep:
    """The bounded chaos sweep CI runs on every push (fixed seeds)."""

    def test_64_schedules_green(self):
        result = run_chaos_campaign(64, workers=4)
        failing = [(o.seed, o.invariant, o.violation)
                   for o in result.failures]
        assert result.ok, failing
        assert result.total_checks > 64  # the oracle actually fired
        # All 12 configuration cells exercised within 64 seeds.
        assert len(result.coverage()) == 12
