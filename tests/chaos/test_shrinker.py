"""ddmin shrinker: converges to minimal failing cores, bounded effort."""

import pytest

from repro.chaos import fuzz_schedule, shrink_schedule
from repro.chaos.fuzzer import ChaosSchedule
from repro.faults import FaultEvent, FaultKind


def synthetic_schedule(n_events: int) -> ChaosSchedule:
    events = tuple(
        FaultEvent(time=1.0 + i, kind=FaultKind.HARD, replica=i % 2,
                   node_id=i % 2)
        for i in range(n_events)
    )
    return ChaosSchedule(
        seed=0, app="synthetic", nodes_per_replica=2, scheme="strong",
        async_checkpointing=False, use_checksum=False,
        checkpoint_interval=2.0, total_iterations=40, tasks_per_node=1,
        spare_nodes=8, horizon=100.0, events=events,
        modes=("random",) * n_events)


class TestDdmin:
    def test_single_culprit_is_isolated(self):
        # Only the fault at t=4.0 matters; everything else is noise.
        sched = synthetic_schedule(8)
        culprit = sched.events[3]

        def fails(candidate):
            return object() if culprit in candidate.events else None

        result = shrink_schedule(sched, fails=fails)
        assert result.schedule.events == (culprit,)
        assert result.minimized_events == 1
        assert result.removed == 7

    def test_pair_of_culprits_is_isolated(self):
        sched = synthetic_schedule(10)
        pair = {sched.events[2], sched.events[7]}

        def fails(candidate):
            return object() if pair <= set(candidate.events) else None

        result = shrink_schedule(sched, fails=fails)
        assert set(result.schedule.events) == pair
        assert result.minimized_events == 2

    def test_passing_schedule_is_rejected(self):
        with pytest.raises(ValueError):
            shrink_schedule(synthetic_schedule(4), fails=lambda c: None)

    def test_run_budget_is_respected(self):
        sched = synthetic_schedule(12)
        calls = []

        def fails(candidate):
            calls.append(candidate)
            return object()  # everything "fails": worst case for ddmin

        result = shrink_schedule(sched, fails=fails, max_runs=10)
        assert result.runs_spent <= 10
        assert result.minimized_events >= 1

    def test_minimized_schedule_keeps_configuration(self):
        sched = synthetic_schedule(6)

        def fails(candidate):
            return object() if candidate.events else None

        result = shrink_schedule(sched, fails=fails)
        minimized = result.schedule
        assert minimized.scheme == sched.scheme
        assert minimized.seed == sched.seed
        assert minimized.horizon == sched.horizon

    def test_real_replay_shrink_of_weak_buddy_pair(self):
        # End-to-end on the simulator: a fuzzed schedule whose failure (under
        # a deliberately broken oracle) needs exactly the first event.
        sched = fuzz_schedule(65)
        first = sched.events[0]

        def fails(candidate):
            return object() if first in candidate.events else None

        result = shrink_schedule(sched, fails=fails)
        assert result.schedule.events == (first,)
