"""Invariant monitor: catches planted defects, stays quiet on healthy runs."""

import pytest

import repro.core.framework as framework_mod
from repro.chaos import (
    InvariantMonitor,
    InvariantViolation,
    LEGAL_TRANSITIONS,
    fuzz_schedule,
    run_schedule,
    shrink_schedule,
)
from repro.chaos.fuzzer import ChaosSchedule
from repro.core import ACR, ACRConfig
from repro.faults import InjectionPlan
from repro.util.errors import ACRError


def build_acr(**overrides):
    defaults = dict(checkpoint_interval=2.0, total_iterations=30,
                    tasks_per_node=1, app_scale=1e-4, seed=1, spare_nodes=8)
    defaults.update(overrides)
    return ACR("synthetic", nodes_per_replica=2, config=ACRConfig(**defaults),
               injection_plan=InjectionPlan())


def prefix_finish_double_failure(self, from_scratch):
    """The pre-fix double-failure finisher: revives undetected dead nodes
    without consuming spares and never reconciles diverged safe
    generations after a lost weak shipment."""
    from repro.core.events import TimelineKind

    self._phase_events = []
    for v in self.nodes.values():
        if not v.alive:
            v.revive()
            self.heartbeat.notify_revived(v.node_id)
    if from_scratch:
        for replica in (0, 1):
            self.store.install_safe(
                replica,
                self.store.clone_generation(self._initial_gen[replica]))
    for replica in (0, 1):
        self._restore_replica(replica, self.store.safe(replica))
    self.report.rollbacks += 1
    key = "restart-from-beginning" if from_scratch else "double-failure"
    self.report.recoveries[key] = self.report.recoveries.get(key, 0) + 1
    self.timeline.record(self.sim.now, TimelineKind.ROLLBACK, reason=key)
    self.timeline.record(self.sim.now, TimelineKind.RECOVERY_DONE, scheme=key)
    self.phase = "running"
    self._after_activity()


class TestWiring:
    def test_clean_run_passes_all_checks(self):
        acr = build_acr()
        monitor = InvariantMonitor().attach(acr)
        report = acr.run(until=500.0)
        monitor.final_check(report)
        assert report.completed
        assert monitor.checks_performed > 10
        assert monitor.violations == []
        # running -> ... -> done was observed ("idle" is set at construction,
        # before any observer can attach).
        phases = [new for _, _, new in monitor.transitions_seen]
        assert phases[0] == "running"
        assert phases[-1] == "done"

    def test_monitor_is_single_use(self):
        acr = build_acr()
        monitor = InvariantMonitor().attach(acr)
        with pytest.raises(ACRError):
            monitor.attach(build_acr())

    def test_legal_transition_table_is_closed(self):
        # Every reachable phase has an entry; done is terminal.
        states = set().union(*LEGAL_TRANSITIONS.values())
        assert states <= set(LEGAL_TRANSITIONS)
        assert LEGAL_TRANSITIONS["done"] == frozenset()


class TestDetection:
    def test_illegal_phase_transition_raises(self):
        acr = build_acr()
        InvariantMonitor().attach(acr)
        acr.phase = "idle"
        with pytest.raises(InvariantViolation) as exc:
            acr.phase = "checkpointing"
        assert exc.value.invariant == "phase-legal"

    def test_done_is_terminal(self):
        acr = build_acr()
        monitor = InvariantMonitor().attach(acr)
        acr.run(until=500.0)
        with pytest.raises(InvariantViolation):
            acr.phase = "running"
        assert monitor.violations

    def test_negative_iteration_commit_raises(self):
        # The store itself rejects missing shards; the oracle additionally
        # rejects a committed generation claiming a negative iteration.
        acr = build_acr()
        InvariantMonitor().attach(acr)
        acr.store.begin_candidate(0, -3, 0.0)
        from repro.pup import pack

        for rank in range(2):
            acr.store.put_shard(0, rank, pack(acr.apps[0].shard(rank)))
        with pytest.raises(InvariantViolation) as exc:
            acr.store.commit(0)
        assert exc.value.invariant == "generation-complete"

    def test_liveness_failure_on_hung_run(self):
        acr = build_acr(total_iterations=10_000)
        monitor = InvariantMonitor().attach(acr)
        report = acr.run(until=1.0)  # horizon far before the iteration cap
        assert not report.completed and report.aborted_reason is None
        with pytest.raises(InvariantViolation) as exc:
            monitor.final_check(report)
        assert exc.value.invariant == "liveness"


class TestReintroducedBug:
    """The acceptance check: re-introduce a fixed lifecycle bug, and the
    fuzzer + monitor must catch it and shrink it to a replayable plan."""

    def test_orphaned_timers_after_done_are_caught(self, monkeypatch):
        # Revert the done-quiescence fix: every schedule finishes with a
        # still-armed watchdog or checkpoint timer on the queue.
        monkeypatch.setattr(framework_mod.ACR, "_quiesce_timers",
                            lambda self: None)
        outcome = run_schedule(fuzz_schedule(0))
        assert not outcome.ok
        assert outcome.invariant == "quiescence"

    def test_cascade_sweep_bug_is_caught_and_minimized(self, monkeypatch):
        monkeypatch.setattr(framework_mod.ACR, "_finish_double_failure",
                            prefix_finish_double_failure)
        failing = None
        for seed in range(32):
            outcome = run_schedule(fuzz_schedule(seed))
            if not outcome.ok:
                failing = outcome
                break
        assert failing is not None, \
            "reverted cascade-sweep bug escaped 32 fuzzed schedules"
        assert failing.invariant == "spare-accounting"
        shrunk = shrink_schedule(ChaosSchedule.from_dict(failing.schedule))
        assert shrunk.minimized_events <= shrunk.original_events
        # The minimized plan replays from JSON to the identical failure.
        replay = run_schedule(
            ChaosSchedule.from_json(shrunk.schedule.to_json()))
        assert not replay.ok
        assert replay.invariant == shrunk.outcome.invariant
        assert replay.fingerprint == shrunk.outcome.fingerprint

    def test_fixed_framework_passes_same_seeds(self):
        for seed in range(32):
            outcome = run_schedule(fuzz_schedule(seed))
            assert outcome.ok, (seed, outcome.invariant, outcome.violation)
