"""Fuzzer determinism, coverage, and serialization round-trips."""

import pytest

from repro.chaos import (
    ChaosSchedule,
    TARGETING_MODES,
    fuzz_schedule,
    probe_phase_windows,
)
from repro.faults import FaultKind
from repro.util.errors import ConfigurationError


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        assert fuzz_schedule(11) == fuzz_schedule(11)

    def test_different_seeds_differ(self):
        schedules = {fuzz_schedule(s).events for s in range(6)}
        assert len(schedules) > 1

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            fuzz_schedule(-1)


class TestCoverage:
    def test_twelve_consecutive_seeds_cover_all_axes(self):
        cells = set()
        for seed in range(12):
            s = fuzz_schedule(seed)
            cells.add((s.scheme, s.async_checkpointing, s.use_checksum))
        assert len(cells) == 12  # 3 schemes x 2 modes x 2 comparisons

    def test_every_schedule_has_faults(self):
        for seed in range(12):
            s = fuzz_schedule(seed)
            assert 1 <= len(s.events) <= 8
            assert len(s.modes) == len(s.events)
            assert all(m in TARGETING_MODES for m in s.modes)

    def test_events_sorted_and_in_horizon(self):
        for seed in range(12):
            s = fuzz_schedule(seed)
            times = [e.time for e in s.events]
            assert times == sorted(times)
            assert all(0.0 < t for t in times)
            assert s.horizon > 0


class TestPhaseTargeting:
    def test_probe_windows_are_ordered(self):
        windows = probe_phase_windows(fuzz_schedule(0))
        for a, b in windows.consensus:
            assert a <= b
        for a, b in windows.pack_transfer:
            assert a <= b
        assert windows.final_time > 0

    def test_consensus_targeted_faults_land_in_windows(self):
        # Scan seeds until one draws a consensus-mode fault, then check it.
        for seed in range(40):
            s = fuzz_schedule(seed)
            if "consensus" not in s.modes:
                continue
            windows = probe_phase_windows(s)
            for event, mode in zip(s.events, s.modes):
                if mode == "consensus":
                    assert any(a <= event.time <= b
                               for a, b in windows.consensus)
            return
        pytest.fail("no seed in range drew a consensus-mode fault")

    def test_buddy_pair_mode_hits_both_replicas_same_rank(self):
        for seed in range(60):
            s = fuzz_schedule(seed)
            if "buddy-pair" not in s.modes:
                continue
            pair = [e for e, m in zip(s.events, s.modes) if m == "buddy-pair"]
            assert len(pair) % 2 == 0
            ranks = {e.node_id for e in pair}
            replicas = {e.replica for e in pair}
            assert all(e.kind is FaultKind.HARD for e in pair)
            assert len(ranks) * 2 >= len(pair)  # shared rank per pair
            assert replicas == {0, 1}
            return
        pytest.fail("no seed in range drew a buddy-pair fault")


class TestSerialization:
    def test_json_round_trip(self):
        s = fuzz_schedule(3)
        assert ChaosSchedule.from_json(s.to_json()) == s

    def test_with_events_replaces_and_defaults_modes(self):
        s = fuzz_schedule(3)
        cut = s.with_events(s.events[:1])
        assert len(cut.events) == 1
        assert cut.modes == ("?",)
        assert cut.seed == s.seed

    def test_config_scheme_is_enum(self):
        from repro.model.schemes import ResilienceScheme

        cfg = fuzz_schedule(0).config()
        # The framework compares schemes by identity; a raw string would
        # silently misroute every recovery to the weak path.
        assert isinstance(cfg.scheme, ResilienceScheme)
