"""Public API surface tests: the quickstart contract."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_quickstart_runs(self):
        result = repro.run_acr_experiment(
            "jacobi3d-charm", nodes_per_replica=2, scheme="strong",
            total_iterations=60, hard_mtbf=None, sdc_mtbf=None, seed=1,
        )
        assert result.report.result_correct

    def test_miniapp_names_cover_paper_suite(self):
        assert set(repro.MINIAPP_NAMES) == {
            "jacobi3d-charm", "jacobi3d-ampi", "hpccg", "lulesh",
            "leanmd", "minimd",
        }

    def test_make_app_factory(self):
        app = repro.make_app("hpccg", 2, scale=1e-4, seed=0)
        assert isinstance(app, repro.ReplicaApp)
