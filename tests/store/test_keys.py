"""Canonical hashing and cell-key material tests."""

import enum
from dataclasses import dataclass

import numpy as np
import pytest

from repro.store.keys import (
    chaos_cell_material,
    code_fingerprint,
    experiment_cell_material,
    material_key,
)
from repro.util.hashing import canonical_digest, canonical_json, to_jsonable


class Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclass
class Point:
    x: int
    y: float


class TestToJsonable:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert to_jsonable(value) == value

    def test_enum_lowers_to_value(self):
        assert to_jsonable(Color.RED) == "red"

    def test_numpy_scalars_become_python(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert isinstance(to_jsonable(np.int64(7)), int)

    def test_ndarray_becomes_list(self):
        assert to_jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_dataclass_tagged_with_type(self):
        lowered = to_jsonable(Point(x=1, y=2.5))
        assert lowered == {"x": 1, "y": 2.5, "__type__": "Point"}

    def test_tuple_and_set_become_lists(self):
        assert to_jsonable((1, 2)) == [1, 2]
        assert to_jsonable({3, 1, 2}) == [1, 2, 3]
        assert to_jsonable(range(3)) == [0, 1, 2]

    def test_dict_keys_stringified(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}

    def test_unencodable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestCanonicalDigest:
    def test_key_order_does_not_matter(self):
        assert canonical_digest({"a": 1, "b": 2}) == canonical_digest(
            {"b": 2, "a": 1}
        )

    def test_value_change_changes_digest(self):
        assert canonical_digest({"a": 1}) != canonical_digest({"a": 2})

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_digest_is_sha256_hex(self):
        digest = canonical_digest({"a": 1})
        assert len(digest) == 64
        int(digest, 16)  # hex or raise


class TestCellMaterial:
    def test_code_fingerprint_shape_and_stability(self):
        fp = code_fingerprint()
        assert len(fp) == 64
        assert fp == code_fingerprint()

    def test_experiment_material_pins_everything(self):
        material = experiment_cell_material("synthetic", 3, {"horizon": 10.0})
        assert material["app"] == "synthetic"
        assert material["seed"] == 3
        assert material["code"] == code_fingerprint()
        assert material["config"] == {"horizon": 10.0}

    def test_same_cell_same_key(self):
        a = experiment_cell_material("synthetic", 1, {"horizon": 10.0})
        b = experiment_cell_material("synthetic", 1, {"horizon": 10.0})
        assert material_key(a) == material_key(b)

    def test_config_change_changes_key(self):
        a = experiment_cell_material("synthetic", 1, {"horizon": 10.0})
        b = experiment_cell_material("synthetic", 1, {"horizon": 20.0})
        assert material_key(a) != material_key(b)

    def test_seed_change_changes_key(self):
        a = experiment_cell_material("synthetic", 1, {})
        b = experiment_cell_material("synthetic", 2, {})
        assert material_key(a) != material_key(b)

    def test_chaos_and_experiment_cells_never_alias(self):
        chaos = chaos_cell_material(1, "synthetic")
        exp = experiment_cell_material("synthetic", 1, {})
        assert material_key(chaos) != material_key(exp)
