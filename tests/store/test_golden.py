"""Golden-digest workflow tests: derive, check, detect drift."""

import json
from pathlib import Path

from repro.store.golden import (
    GOLDEN_FIGURES,
    check_golden,
    compute_figure,
    golden_path,
    write_golden,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestGolden:
    def test_committed_golden_matches_current_tree(self):
        """The CI gate itself: committed digests match this source tree."""
        assert check_golden(REPO_ROOT / "golden") == []

    def test_compute_figure_is_deterministic(self):
        for name in GOLDEN_FIGURES:
            a = compute_figure(name)
            b = compute_figure(name)
            assert a["digest"] == b["digest"]
            assert a["row_count"] == len(a["rows"]) > 0

    def test_write_then_check_round_trips(self, tmp_path):
        written = write_golden(tmp_path)
        assert {p.name for p in written} == {
            f"{name}.json" for name in GOLDEN_FIGURES
        }
        assert check_golden(tmp_path) == []

    def test_missing_file_reported(self, tmp_path):
        write_golden(tmp_path)
        golden_path(tmp_path, "fig8").unlink()
        problems = check_golden(tmp_path)
        assert any("fig8" in p and "missing" in p for p in problems)

    def test_row_drift_reported_with_field_diff(self, tmp_path):
        write_golden(tmp_path)
        path = golden_path(tmp_path, "fig10")
        committed = json.loads(path.read_text())
        field = sorted(committed["rows"][0])[0]
        committed["rows"][0][field] = "tampered"
        committed["digest"] = "0" * 64
        path.write_text(json.dumps(committed))
        problems = check_golden(tmp_path)
        assert any("digest drift" in p for p in problems)
        assert any("row 0" in p for p in problems)

    def test_unreadable_file_reported(self, tmp_path):
        write_golden(tmp_path)
        golden_path(tmp_path, "fig9_fig11").write_text("{broken")
        assert any("unreadable" in p for p in check_golden(tmp_path))
