"""Exact round-trip tests for the store's JSON codecs."""

import json

import numpy as np
import pytest

from repro.chaos.runner import run_chaos_seed
from repro.harness.experiment import run_experiment_report
from repro.store.serialization import (
    decode_array,
    encode_array,
    outcome_from_dict,
    outcome_to_dict,
    report_from_dict,
    report_to_dict,
)

_KWARGS = dict(nodes_per_replica=2, total_iterations=60,
               checkpoint_interval=2.0, hard_mtbf=15.0, sdc_mtbf=25.0,
               horizon=2000.0)


def _through_json(payload):
    """Force a real JSON round-trip, exactly as the store does."""
    return json.loads(json.dumps(payload, sort_keys=True))


class TestArrayCodec:
    @pytest.mark.parametrize("array", [
        np.arange(6, dtype=np.float64),
        np.arange(6, dtype=np.uint64).reshape(2, 3),
        np.array([], dtype=np.float32),
        np.array([1.1e-300, np.pi, -0.0]),
    ])
    def test_exact_round_trip(self, array):
        decoded = decode_array(_through_json(encode_array(array)))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        assert np.array_equal(decoded, array)

    def test_non_contiguous_input(self):
        array = np.arange(12, dtype=np.float64).reshape(3, 4)[:, ::2]
        decoded = decode_array(_through_json(encode_array(array)))
        assert np.array_equal(decoded, array)

    def test_decoded_array_is_writable(self):
        decoded = decode_array(encode_array(np.arange(3.0)))
        decoded[0] = 42.0  # frombuffer views are read-only; we must copy


class TestRunReportCodec:
    @pytest.fixture(scope="class")
    def report(self):
        return run_experiment_report("jacobi3d-charm", 3, _KWARGS)

    def test_round_trip_is_exact(self, report):
        restored = report_from_dict(_through_json(report_to_dict(report)))
        assert restored.final_time == report.final_time
        assert restored.completed == report.completed
        assert restored.aborted_reason == report.aborted_reason
        assert restored.iterations_completed == report.iterations_completed
        assert restored.checkpoints_completed == report.checkpoints_completed
        assert restored.recoveries == report.recoveries
        assert restored.rework_iterations == report.rework_iterations
        assert restored.phase_times == report.phase_times
        assert restored.interval_history == report.interval_history
        assert restored.result_correct == report.result_correct

    def test_digest_arrays_bitwise_identical(self, report):
        restored = report_from_dict(_through_json(report_to_dict(report)))
        assert set(restored.digests) == set(report.digests)
        for rank, digest in report.digests.items():
            assert isinstance(rank, int)
            assert np.array_equal(restored.digests[rank], digest)
        if report.reference_digest is not None:
            assert np.array_equal(restored.reference_digest,
                                  report.reference_digest)

    def test_timeline_events_preserved(self, report):
        restored = report_from_dict(_through_json(report_to_dict(report)))
        assert len(restored.timeline.events) == len(report.timeline.events)
        for a, b in zip(report.timeline.events, restored.timeline.events):
            assert a.time == b.time
            assert a.kind == b.kind
            assert a.detail == b.detail

    def test_metrics_snapshot_preserved(self, report):
        restored = report_from_dict(_through_json(report_to_dict(report)))
        assert restored.metrics_snapshot == report.metrics_snapshot

    def test_unknown_format_rejected(self, report):
        payload = report_to_dict(report)
        payload["format"] = 99
        with pytest.raises(ValueError, match="format"):
            report_from_dict(payload)


class TestChaosOutcomeCodec:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_chaos_seed(5, "jacobi3d-charm")

    def test_round_trip_is_exact(self, outcome):
        restored = outcome_from_dict(_through_json(outcome_to_dict(outcome)))
        assert restored == outcome or all(
            getattr(restored, name) == getattr(outcome, name)
            for name in ("seed", "ok", "invariant", "violation", "completed",
                         "final_time", "checkpoints", "rollbacks",
                         "hard_injected", "hard_detected", "sdc_injected",
                         "sdc_detected", "recoveries", "checks_performed",
                         "fingerprint", "schedule")
        )

    def test_fingerprint_survives(self, outcome):
        restored = outcome_from_dict(_through_json(outcome_to_dict(outcome)))
        assert restored.fingerprint == outcome.fingerprint

    def test_unknown_format_rejected(self, outcome):
        payload = outcome_to_dict(outcome)
        payload["format"] = 0
        with pytest.raises(ValueError, match="format"):
            outcome_from_dict(payload)
