"""ResultStore behaviour: addressing, atomic writes, listing, gc, verify."""

import json

import pytest

from repro.store import (
    KIND_RUN_REPORT,
    ResultStore,
    code_fingerprint,
    material_key,
)
from repro.store.store import CACHE_DIR_ENV, default_cache_dir


def _material(seed=1, code=None):
    return {
        "kind": KIND_RUN_REPORT,
        "app": "synthetic",
        "seed": seed,
        "config": {"horizon": 10.0},
        "code": code if code is not None else code_fingerprint(),
    }


class TestPutGet:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        material = _material()
        key = store.put(material, {"answer": 42}, kind=KIND_RUN_REPORT)
        assert key == material_key(material)
        assert store.get(material) == {"answer": 42}
        assert store.has(material)

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(_material(seed=9)) is None
        assert not store.has(_material(seed=9))

    def test_objects_shard_by_key_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(_material(), {}, kind=KIND_RUN_REPORT)
        path = store.object_path(key)
        assert path.is_file()
        assert path.parent.name == key[:2]

    def test_put_journals_one_line_per_write(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(seed=1), {}, kind=KIND_RUN_REPORT)
        store.put(_material(seed=2), {}, kind=KIND_RUN_REPORT)
        lines = store.index_path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["seed"] == 1

    def test_overwrite_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(), {"v": 1}, kind=KIND_RUN_REPORT)
        store.put(_material(), {"v": 2}, kind=KIND_RUN_REPORT)
        assert store.get(_material()) == {"v": 2}
        assert len(store.entries()) == 1

    def test_no_tmp_litter_after_put(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(), {}, kind=KIND_RUN_REPORT)
        assert not list(tmp_path.rglob("*.tmp.*"))

    def test_corrupt_object_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(_material(), {"v": 1}, kind=KIND_RUN_REPORT)
        store.object_path(key).write_text("{not json")
        assert store.get(_material()) is None

    def test_default_cache_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        assert default_cache_dir() == tmp_path / "cache"
        monkeypatch.delenv(CACHE_DIR_ENV)
        assert str(default_cache_dir()) == ".repro-cache"


class TestEntries:
    def test_listing_reflects_material(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(seed=7), {}, kind=KIND_RUN_REPORT)
        (entry,) = store.entries()
        assert entry.app == "synthetic"
        assert entry.seed == 7
        assert entry.kind == KIND_RUN_REPORT
        assert not entry.stale
        assert entry.nbytes > 0

    def test_foreign_fingerprint_is_stale(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(code="0" * 64), {}, kind=KIND_RUN_REPORT)
        (entry,) = store.entries()
        assert entry.stale


class TestGc:
    def test_gc_sweeps_stale_keeps_current(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(seed=1), {}, kind=KIND_RUN_REPORT)
        store.put(_material(seed=2, code="0" * 64), {}, kind=KIND_RUN_REPORT)
        result = store.gc()
        assert result.removed == 1
        assert result.kept == 1
        assert result.bytes_freed > 0
        (entry,) = store.entries()
        assert entry.seed == 1

    def test_gc_removes_corrupt_objects(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(_material(), {}, kind=KIND_RUN_REPORT)
        store.object_path(key).write_text("junk")
        assert store.gc().removed == 1

    def test_wipe_removes_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(seed=1), {}, kind=KIND_RUN_REPORT)
        store.put(_material(seed=2), {}, kind=KIND_RUN_REPORT)
        result = store.gc(wipe=True)
        assert result.removed == 2
        assert store.entries() == []
        assert not store.index_path.exists()


class TestVerify:
    def test_sound_store_verifies_clean(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_material(seed=1), {"v": 1}, kind=KIND_RUN_REPORT)
        store.put(_material(seed=2), {"v": 2}, kind=KIND_RUN_REPORT)
        assert store.verify() == []

    def test_unreadable_object_reported(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(_material(), {}, kind=KIND_RUN_REPORT)
        store.object_path(key).write_text("{broken")
        (problem,) = store.verify()
        assert "unreadable" in problem

    def test_tampered_material_reported(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(_material(), {}, kind=KIND_RUN_REPORT)
        path = store.object_path(key)
        record = json.loads(path.read_text())
        record["material"]["seed"] = 999  # address no longer matches
        path.write_text(json.dumps(record))
        (problem,) = store.verify()
        assert "hashes to" in problem

    def test_misplaced_object_reported(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(_material(), {}, kind=KIND_RUN_REPORT)
        path = store.object_path(key)
        bogus = path.with_name("ab" + "0" * 62 + ".json")
        path.rename(bogus)
        assert any("!= filename" in p for p in store.verify())

    def test_wrong_format_reported(self, tmp_path):
        store = ResultStore(tmp_path)
        key = store.put(_material(), {}, kind=KIND_RUN_REPORT)
        path = store.object_path(key)
        record = json.loads(path.read_text())
        record["format"] = 99
        path.write_text(json.dumps(record))
        assert any("format" in p for p in store.verify())
