"""Failure-trace ingestion/synthesis tests."""

import numpy as np
import pytest

from repro.faults.injector import FaultKind
from repro.faults.traces import (
    TraceRecord,
    fit_interarrivals,
    load_trace,
    parse_trace_csv,
    save_trace,
    synthesize_lanl_like_trace,
    trace_to_plan,
    trace_to_process,
)
from repro.util.errors import ConfigurationError


class TestParsing:
    def test_minimal_time_only(self):
        records = parse_trace_csv("5.0\n1.0\n9.5\n")
        assert [r.time for r in records] == [1.0, 5.0, 9.5]
        assert all(r.kind is FaultKind.HARD for r in records)

    def test_full_columns_and_header(self):
        text = "time_seconds,node,kind\n10.0,3,hard\n20.0,7,sdc\n"
        records = parse_trace_csv(text)
        assert records[0].node == 3
        assert records[1].kind is FaultKind.SDC

    def test_comments_and_blank_lines_skipped(self):
        records = parse_trace_csv("# a log\n\n1.0\n# mid comment\n2.0\n")
        assert len(records) == 2

    def test_bad_time_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_trace_csv("1.0\nnot-a-number\n")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_trace_csv("-3.0\n")


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        records = [TraceRecord(5.0, 2, FaultKind.SDC),
                   TraceRecord(1.0, 0, FaultKind.HARD)]
        path = tmp_path / "failures.csv"
        save_trace(records, path)
        loaded = load_trace(path)
        assert [r.time for r in loaded] == [1.0, 5.0]
        assert loaded[1].kind is FaultKind.SDC

    def test_trace_to_process(self):
        records = [TraceRecord(t) for t in (3.0, 1.0, 2.0)]
        proc = trace_to_process(records)
        assert list(proc.arrival_times(10.0)) == [1.0, 2.0, 3.0]

    def test_trace_to_plan_folds_nodes(self):
        records = [TraceRecord(1.0, node=0), TraceRecord(2.0, node=5),
                   TraceRecord(3.0, node=9)]
        plan = trace_to_plan(records, nodes_per_replica=4)
        assert [(e.replica, e.node_id) for e in plan.events] == [
            (0, 0), (1, 1), (0, 1)]

    def test_plan_drives_acr(self):
        from repro.harness.experiment import run_acr_experiment

        records = synthesize_lanl_like_trace(horizon=20.0, expected_failures=2,
                                             nodes=8, seed=1)
        plan = trace_to_plan(records, nodes_per_replica=4)
        result = run_acr_experiment("synthetic", nodes_per_replica=4,
                                    total_iterations=150,
                                    checkpoint_interval=3.0,
                                    injection_plan=plan, seed=5)
        assert result.report.completed


class TestSynthesis:
    def test_expected_count(self):
        counts = [len(synthesize_lanl_like_trace(
            horizon=1000.0, expected_failures=20, seed=s)) for s in range(20)]
        assert np.mean(counts) == pytest.approx(20, rel=0.3)

    def test_nodes_in_range(self):
        records = synthesize_lanl_like_trace(horizon=1000.0,
                                             expected_failures=30,
                                             nodes=16, seed=2)
        assert all(0 <= r.node < 16 for r in records)

    def test_decreasing_hazard_front_loads(self):
        front = back = 0
        for seed in range(10):
            records = synthesize_lanl_like_trace(
                horizon=1000.0, expected_failures=30, shape=0.5, seed=seed)
            front += sum(1 for r in records if r.time < 500)
            back += sum(1 for r in records if r.time >= 500)
        assert front > 1.5 * back


class TestFitting:
    def test_recovers_weibull_shape(self):
        records = synthesize_lanl_like_trace(horizon=50_000.0,
                                             expected_failures=400,
                                             shape=0.6, seed=3)
        fit = fit_interarrivals([r.time for r in records])
        # Interarrivals of a shape-0.6 power-law process are heavy-tailed;
        # the fitted Weibull shape lands well below 1.
        assert fit.weibull_shape < 0.95
        assert fit.prefers_weibull

    def test_exponential_stream_prefers_exponential(self):
        rng = np.random.default_rng(0)
        times = np.cumsum(rng.exponential(10.0, size=400))
        fit = fit_interarrivals(times)
        assert 0.85 < fit.weibull_shape < 1.2
        assert not fit.prefers_weibull or abs(fit.weibull_shape - 1) < 0.2

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_interarrivals([1.0, 2.0])
