"""Failure-process tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.distributions import PoissonProcess, TraceProcess, WeibullProcess
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


def rng(name="p", seed=0):
    return RngStream(seed, name)


class TestPoissonProcess:
    def test_mean_rate_matches_mtbf(self):
        proc = PoissonProcess(mtbf=10.0, rng=rng())
        times = proc.arrival_times(100_000.0)
        assert len(times) == pytest.approx(10_000, rel=0.05)

    def test_sorted_and_positive(self):
        times = PoissonProcess(5.0, rng()).arrival_times(1000.0)
        assert (np.diff(times) > 0).all()
        assert times[0] > 0

    def test_constant_hazard(self):
        proc = PoissonProcess(20.0, rng())
        assert proc.hazard_rate(1.0) == proc.hazard_rate(1e6) == 0.05

    def test_reproducible(self):
        a = PoissonProcess(5.0, rng(seed=3)).arrival_times(100.0)
        b = PoissonProcess(5.0, rng(seed=3)).arrival_times(100.0)
        assert np.array_equal(a, b)

    def test_invalid_mtbf(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(0.0, rng())


class TestWeibullProcess:
    def test_shape_below_one_has_decreasing_hazard(self):
        proc = WeibullProcess(shape=0.6, scale=100.0, rng=rng())
        assert proc.hazard_rate(10.0) > proc.hazard_rate(100.0) > proc.hazard_rate(1000.0)

    def test_shape_above_one_has_increasing_hazard(self):
        proc = WeibullProcess(shape=2.0, scale=100.0, rng=rng())
        assert proc.hazard_rate(10.0) < proc.hazard_rate(100.0)

    def test_shape_one_is_poisson(self):
        proc = WeibullProcess(shape=1.0, scale=50.0, rng=rng())
        assert proc.hazard_rate(1.0) == pytest.approx(1 / 50.0)
        assert proc.hazard_rate(1e5) == pytest.approx(1 / 50.0)

    def test_expected_count_calibration(self):
        # The Fig. 12 construction: ~19 failures in a 30-minute window.
        counts = []
        for seed in range(30):
            proc = WeibullProcess.with_expected_count(
                0.6, horizon=1800.0, expected_failures=19, rng=rng(seed=seed))
            counts.append(len(proc.arrival_times(1800.0)))
        assert np.mean(counts) == pytest.approx(19, rel=0.25)

    def test_decreasing_rate_front_loads_failures(self):
        # Fig. 12: "more failures are injected at the beginning."
        front, back = 0, 0
        for seed in range(20):
            proc = WeibullProcess.with_expected_count(
                0.6, horizon=1800.0, expected_failures=19, rng=rng(seed=seed))
            t = proc.arrival_times(1800.0)
            front += int((t < 900).sum())
            back += int((t >= 900).sum())
        assert front > 1.5 * back

    def test_cumulative_hazard_inversion_is_exact(self):
        # With unit-exponential increments E, arrivals satisfy (t/λ)^k = ΣE.
        proc = WeibullProcess(shape=0.5, scale=10.0, rng=rng(seed=1))
        it = proc.iter_arrivals()
        t1 = next(it)
        t2 = next(it)
        assert t2 > t1 > 0

    @given(st.floats(0.2, 3.0), st.floats(1.0, 1000.0), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_arrivals_increasing(self, shape, scale, seed):
        proc = WeibullProcess(shape, scale, rng(seed=seed))
        times = proc.arrival_times(scale * 5)
        assert (np.diff(times) > 0).all() if len(times) > 1 else True

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            WeibullProcess(0.0, 1.0, rng())
        with pytest.raises(ConfigurationError):
            WeibullProcess.with_expected_count(0.6, 0.0, 19, rng())


class TestTraceProcess:
    def test_replays_exact_times(self):
        proc = TraceProcess([5.0, 1.0, 9.0])
        assert list(proc.arrival_times(100.0)) == [1.0, 5.0, 9.0]

    def test_horizon_cut(self):
        proc = TraceProcess([1.0, 5.0, 9.0])
        assert list(proc.arrival_times(6.0)) == [1.0, 5.0]

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceProcess([-1.0, 2.0])

    def test_empirical_hazard(self):
        proc = TraceProcess([0.0, 10.0])
        assert proc.hazard_rate(5.0) == pytest.approx(0.1)
