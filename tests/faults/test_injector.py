"""Fault-schedule tests."""

import pytest

from repro.faults.distributions import PoissonProcess, TraceProcess
from repro.faults.injector import (
    FaultEvent,
    FaultKind,
    InjectionPlan,
    draw_plan,
    poisson_plan,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


def rng(seed=0):
    return RngStream(seed, "inj")


class TestFaultEvent:
    def test_validates_replica(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=1.0, kind=FaultKind.HARD, replica=2, node_id=0)

    def test_validates_time(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=-1.0, kind=FaultKind.SDC, replica=0, node_id=0)


class TestInjectionPlan:
    def test_events_sorted_by_time(self):
        plan = InjectionPlan([
            FaultEvent(5.0, FaultKind.HARD, 0, 1),
            FaultEvent(1.0, FaultKind.SDC, 1, 0),
        ])
        assert [e.time for e in plan.events] == [1.0, 5.0]

    def test_within_window(self):
        plan = InjectionPlan([
            FaultEvent(t, FaultKind.HARD, 0, 0) for t in (1.0, 2.0, 3.0)
        ])
        assert [e.time for e in plan.within(1.5, 3.0)] == [2.0]

    def test_kind_filters(self):
        plan = InjectionPlan([
            FaultEvent(1.0, FaultKind.HARD, 0, 0),
            FaultEvent(2.0, FaultKind.SDC, 0, 0),
        ])
        assert len(plan.hard_events()) == 1
        assert len(plan.sdc_events()) == 1

    def test_merge_keeps_order(self):
        a = InjectionPlan([FaultEvent(3.0, FaultKind.HARD, 0, 0)])
        b = InjectionPlan([FaultEvent(1.0, FaultKind.SDC, 1, 0)])
        merged = a.merged_with(b)
        assert [e.time for e in merged.events] == [1.0, 3.0]


class TestDrawPlan:
    def test_draws_from_process(self):
        plan = draw_plan(TraceProcess([1.0, 2.0, 3.0]), kind=FaultKind.HARD,
                         horizon=10.0, nodes_per_replica=4, rng=rng())
        assert len(plan.events) == 3
        assert all(e.kind is FaultKind.HARD for e in plan.events)

    def test_victims_in_range(self):
        plan = draw_plan(PoissonProcess(1.0, rng(1)), kind=FaultKind.SDC,
                         horizon=200.0, nodes_per_replica=8, rng=rng(2))
        assert all(0 <= e.node_id < 8 for e in plan.events)
        assert all(e.replica in (0, 1) for e in plan.events)

    def test_both_replicas_hit(self):
        plan = draw_plan(PoissonProcess(1.0, rng(1)), kind=FaultKind.HARD,
                         horizon=500.0, nodes_per_replica=4, rng=rng(2))
        replicas = {e.replica for e in plan.events}
        assert replicas == {0, 1}

    def test_reproducible(self):
        a = draw_plan(PoissonProcess(5.0, rng(3)), kind=FaultKind.HARD,
                      horizon=100.0, nodes_per_replica=4, rng=rng(4))
        b = draw_plan(PoissonProcess(5.0, rng(3)), kind=FaultKind.HARD,
                      horizon=100.0, nodes_per_replica=4, rng=rng(4))
        assert [e.time for e in a.events] == [e.time for e in b.events]
        assert [e.node_id for e in a.events] == [e.node_id for e in b.events]

    def test_invalid_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            draw_plan(TraceProcess([1.0]), kind=FaultKind.HARD, horizon=10.0,
                      nodes_per_replica=0, rng=rng())


class TestPoissonPlan:
    def test_combines_hard_and_sdc(self):
        plan = poisson_plan(hard_mtbf=10.0, sdc_mtbf=20.0, horizon=500.0,
                            nodes_per_replica=4, rng=rng(5))
        assert plan.hard_events() and plan.sdc_events()
        times = [e.time for e in plan.events]
        assert times == sorted(times)

    def test_none_means_no_faults_of_that_kind(self):
        plan = poisson_plan(hard_mtbf=None, sdc_mtbf=10.0, horizon=100.0,
                            nodes_per_replica=4, rng=rng(6))
        assert not plan.hard_events()
        assert plan.sdc_events()

    def test_infinite_mtbf_means_none(self):
        plan = poisson_plan(hard_mtbf=float("inf"), sdc_mtbf=None, horizon=100.0,
                            nodes_per_replica=4, rng=rng(7))
        assert not plan.events
