"""Bit-flip SDC injector tests (§6.1)."""

import numpy as np
import pytest

from repro.faults.bitflip import BitFlipInjector
from repro.pup.puper import pack
from repro.util.errors import ACRError
from repro.util.rng import RngStream


class Victim:
    def __init__(self, n=64):
        self.data = np.zeros(n, dtype=np.float64)
        self.tag = "replica"
        self.count = 3

    def pup(self, p):
        self.count = p.pup_int("count", self.count)
        self.data = p.pup_array("data", self.data)
        self.tag = p.pup_str("tag", self.tag)


def make_injector(seed=0):
    return BitFlipInjector(RngStream(seed, "flip"))


class TestBitFlipInjector:
    def test_flips_exactly_one_bit_in_live_state(self):
        v = Victim()
        before = pack(v).buffer.copy()
        record = make_injector().inject(v)
        after = pack(v).buffer
        differing = np.flatnonzero(before != after)
        assert len(differing) == 1
        xor = int(before[differing[0]]) ^ int(after[differing[0]])
        assert bin(xor).count("1") == 1
        assert record.old_byte != record.new_byte

    def test_corruption_is_detectable_by_comparison(self):
        from repro.pup.checker import compare_checkpoints

        a, b = Victim(), Victim()
        make_injector().inject(b)
        assert not compare_checkpoints(pack(a), pack(b)).match

    def test_targets_only_mutable_arrays(self):
        # Strings are transient copies: a flip there would never reach the
        # application, so the injector must always land in `data`.
        for seed in range(20):
            v = Victim(n=2)  # tiny array, big-ish string: tempting target
            record = make_injector(seed).inject(v)
            assert record.field_name == "data"

    def test_uniform_coverage_across_fields(self):
        class TwoArrays:
            def __init__(self):
                self.a = np.zeros(100)
                self.b = np.zeros(300)

            def pup(self, p):
                p.pup_array("a", self.a)
                p.pup_array("b", self.b)

        hits = {"a": 0, "b": 0}
        for seed in range(300):
            v = TwoArrays()
            hits[make_injector(seed).inject(v).field_name] += 1
        # b holds 3x the bytes, so roughly 3x the flips.
        assert 2.0 < hits["b"] / max(hits["a"], 1) < 4.5

    def test_no_mutable_state_raises(self):
        class Empty:
            def pup(self, p):
                p.pup_str("name", "nothing-to-corrupt")

        with pytest.raises(ACRError):
            make_injector().inject(Empty())

    def test_history_recorded(self):
        inj = make_injector()
        inj.inject(Victim())
        inj.inject(Victim())
        assert len(inj.history) == 2

    def test_deterministic_given_seed(self):
        v1, v2 = Victim(), Victim()
        r1 = make_injector(7).inject(v1)
        r2 = make_injector(7).inject(v2)
        assert (r1.field_name, r1.byte_index, r1.bit_index) == (
            r2.field_name, r2.byte_index, r2.bit_index)
