"""Tests of the T_S / T_M / T_W equations and their optimization (§5)."""

import math

import pytest

from repro.model.params import ModelParams
from repro.model.schemes import (
    ResilienceScheme,
    best_solution,
    compare_schemes,
    optimal_tau,
    prob_multi_failure,
    solve_scheme,
)
from repro.util.errors import ConfigurationError
from repro.util.units import HOURS, YEARS


def params(**kw):
    base = dict(work=24 * HOURS, delta=15.0, sockets_per_replica=16384,
                sdc_fit_socket=100.0)
    base.update(kw)
    return ModelParams(**base)


class TestProbMultiFailure:
    def test_vanishes_as_window_shrinks(self):
        # P = 1 - e^-x (1 + x) ~ x^2/2 as x -> 0 with x = (tau+delta)/M_H.
        p = params(delta=0.0)
        x = 1e-3 / p.hard_mtbf_system
        assert prob_multi_failure(p, 1e-3) == pytest.approx(x * x / 2, rel=1e-3)

    def test_monotone_in_tau(self):
        p = params()
        values = [prob_multi_failure(p, t) for t in (10, 100, 1000, 10_000)]
        assert values == sorted(values)

    def test_bounded_by_one(self):
        p = params(sockets_per_replica=262144)
        assert 0 <= prob_multi_failure(p, 1e6) <= 1


class TestSolveScheme:
    def test_total_exceeds_work(self):
        p = params()
        for scheme in ResilienceScheme:
            sol = solve_scheme(p, scheme, 600.0)
            assert sol.total_time > p.work

    def test_components_sum_to_total(self):
        p = params()
        sol = solve_scheme(p, "strong", 600.0)
        assert sol.total_time == pytest.approx(
            sol.solve_time + sol.checkpoint_time + sol.restart_time
            + sol.rework_time, rel=1e-9)

    def test_strong_has_most_hard_rework(self):
        # Strong rolls back (tau+delta)/2 per hard error; medium only delta.
        p = params()
        tau = 600.0
        strong = solve_scheme(p, "strong", tau)
        medium = solve_scheme(p, "medium", tau)
        assert strong.rework_time > medium.rework_time
        assert strong.total_time > medium.total_time

    def test_weak_fastest_at_fixed_tau(self):
        # Fig. 4: "this scheme should be the fastest to finish execution."
        p = params()
        tau = 600.0
        times = {s: solve_scheme(p, s, tau).total_time for s in ResilienceScheme}
        assert times[ResilienceScheme.WEAK] <= times[ResilienceScheme.MEDIUM]
        assert times[ResilienceScheme.WEAK] < times[ResilienceScheme.STRONG]

    def test_no_failures_reduces_to_checkpoint_overhead_only(self):
        p = ModelParams(work=1000.0, delta=10.0, sockets_per_replica=1,
                        hard_mtbf_socket=1e18, sdc_fit_socket=0.0)
        sol = solve_scheme(p, "strong", 100.0)
        assert sol.total_time == pytest.approx(1000.0 + 9 * 10.0, rel=1e-6)

    def test_utilization_capped_at_half_by_replication(self):
        p = params()
        sol = best_solution(p, "weak")
        assert 0 < sol.utilization <= 0.5

    def test_invalid_tau(self):
        with pytest.raises(ConfigurationError):
            solve_scheme(params(), "strong", 0.0)

    def test_unstable_regime_returns_inf(self):
        # MTBF so low that rework exceeds progress: no finite solution.
        p = ModelParams(work=24 * HOURS, delta=100.0, sockets_per_replica=10**7,
                        hard_mtbf_socket=1 * YEARS, sdc_fit_socket=1e6)
        sol = solve_scheme(p, "strong", 10_000.0)
        assert math.isinf(sol.total_time)


class TestOptimalTau:
    def test_optimum_beats_neighbours(self):
        p = params()
        for scheme in ResilienceScheme:
            tau = optimal_tau(p, scheme)
            t_opt = solve_scheme(p, scheme, tau).total_time
            assert t_opt <= solve_scheme(p, scheme, tau * 1.3).total_time + 1e-6
            assert t_opt <= solve_scheme(p, scheme, tau / 1.3).total_time + 1e-6

    def test_strong_checkpoints_more_frequently(self):
        # §6.2: "applications using strong resilience scheme need to
        # checkpoint more frequently to balance the extra rework overhead."
        p = params()
        assert optimal_tau(p, "strong") < optimal_tau(p, "medium")

    def test_tau_decreases_with_scale(self):
        taus = [optimal_tau(params(sockets_per_replica=s), "strong")
                for s in (1024, 16384, 262144)]
        assert taus == sorted(taus, reverse=True)

    def test_tau_increases_with_reliability(self):
        flaky = params(hard_mtbf_socket=5 * YEARS)
        solid = params(hard_mtbf_socket=500 * YEARS)
        assert optimal_tau(flaky, "strong") < optimal_tau(solid, "strong")

    def test_compare_schemes_returns_all(self):
        result = compare_schemes(params())
        assert set(result) == set(ResilienceScheme)
        for sol in result.values():
            assert sol.total_time > 0


class TestPaperNumbers:
    def test_fig7a_delta15_all_above_45pct_at_256k(self):
        # "For delta of 15s, the efficiency for all the three resilience
        # schemes is above 45% even on 256K sockets."
        p = params(sockets_per_replica=262144, delta=15.0)
        for scheme in ResilienceScheme:
            assert best_solution(p, scheme).utilization > 0.44

    def test_fig7a_delta180_strong_drops_weak_medium_hold(self):
        # "When delta is increased to 180s, the efficiency of the strong
        # resilience scheme decreases to 37% while that of the weak and
        # medium resilience schemes is above 43%."
        p = params(sockets_per_replica=262144, delta=180.0)
        strong = best_solution(p, "strong").utilization
        medium = best_solution(p, "medium").utilization
        weak = best_solution(p, "weak").utilization
        assert strong < 0.40
        assert medium > 0.40 and weak > 0.40
        assert medium - strong > 0.04
