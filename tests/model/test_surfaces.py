"""Figure 1 / Figure 7 data-surface tests."""

import numpy as np

from repro.model.schemes import ResilienceScheme
from repro.model.surfaces import fig1_surfaces, fig7_curves, fig7_series


class TestFig1Surfaces:
    def test_grid_coverage(self):
        surfaces = fig1_surfaces(sockets_axis=(4096, 65536), fit_axis=(1.0, 10000.0))
        for panel in (surfaces.no_ft, surfaces.checkpoint_only, surfaces.acr):
            assert len(panel) == 4

    def test_ordering_of_the_three_panels(self):
        surfaces = fig1_surfaces(sockets_axis=(65536,), fit_axis=(100.0,))
        no_ft = surfaces.no_ft[0]
        ckpt = surfaces.checkpoint_only[0]
        acr = surfaces.acr[0]
        # Checkpointing beats nothing; ACR pays replication but kills
        # vulnerability entirely.
        assert ckpt.utilization > no_ft.utilization
        assert acr.vulnerability == 0.0
        assert no_ft.vulnerability == ckpt.vulnerability > 0.0

    def test_acr_utilization_flat_while_baselines_collapse(self):
        surfaces = fig1_surfaces(sockets_axis=(4096, 1048576), fit_axis=(100.0,))
        drop_no_ft = surfaces.no_ft[0].utilization - surfaces.no_ft[1].utilization
        drop_acr = surfaces.acr[0].utilization - surfaces.acr[1].utilization
        assert drop_no_ft > 0.4
        assert drop_acr < 0.15


class TestFig7Curves:
    def test_full_sweep_structure(self):
        points = fig7_curves(sockets_axis=(1024, 65536), deltas=(15.0,))
        assert len(points) == 2 * 3  # sockets x schemes

    def test_series_extraction_sorted(self):
        points = fig7_curves(sockets_axis=(65536, 1024, 16384), deltas=(15.0,))
        xs, ys = fig7_series(points, ResilienceScheme.STRONG, 15.0)
        assert list(xs) == [1024, 16384, 65536]
        assert len(ys) == 3

    def test_utilization_decreases_with_scale(self):
        points = fig7_curves(sockets_axis=(1024, 16384, 262144), deltas=(180.0,))
        _, ys = fig7_series(points, ResilienceScheme.STRONG, 180.0)
        assert list(ys) == sorted(ys, reverse=True)

    def test_undetected_probability_zero_for_strong(self):
        points = fig7_curves(sockets_axis=(16384,), deltas=(15.0, 180.0))
        strong = [p for p in points if p.scheme is ResilienceScheme.STRONG]
        assert all(p.undetected_sdc_probability == 0.0 for p in strong)

    def test_tau_opt_positive_finite(self):
        points = fig7_curves(sockets_axis=(1024, 262144), deltas=(15.0,))
        assert all(np.isfinite(p.tau_opt) and p.tau_opt > 0 for p in points)
