"""Tests of the design-alternative models: TMR and disk checkpoint/restart."""

import math

import pytest

from repro.model.alternatives import (
    dual_vs_tmr_utilization,
    sdc_crossover_fit,
    solve_disk_checkpoint_restart,
    solve_tmr,
)
from repro.model.params import ModelParams
from repro.util.errors import ConfigurationError
from repro.util.units import HOURS, MiB


def params(**kw):
    base = dict(work=24 * HOURS, delta=15.0, sockets_per_replica=65536,
                sdc_fit_socket=100.0)
    base.update(kw)
    return ModelParams(**base)


class TestTMR:
    def test_utilization_capped_at_one_third(self):
        sol = solve_tmr(params())
        assert 0 < sol.utilization <= 1.0 / 3.0

    def test_sdc_rate_does_not_change_tmr_utilization(self):
        # Voting corrects single corruptions in place: no rollback term.
        a = solve_tmr(params(sdc_fit_socket=10.0))
        b = solve_tmr(params(sdc_fit_socket=1e5))
        assert a.utilization == pytest.approx(b.utilization)

    def test_vulnerability_small_but_nonzero(self):
        # Two corrupted replicas in one vote window outvote the healthy one;
        # at the paper's nominal 100 FIT that is a sub-0.1% event per run.
        sol = solve_tmr(params(sdc_fit_socket=100.0))
        assert 0 < sol.vulnerability < 0.01

    def test_vulnerability_grows_with_sdc_rate(self):
        lo = solve_tmr(params(sdc_fit_socket=100.0)).vulnerability
        hi = solve_tmr(params(sdc_fit_socket=1e5)).vulnerability
        assert hi > lo

    def test_dual_wins_at_paper_sdc_rates(self):
        # §3.4: dual redundancy chosen "assuming ... relatively small number
        # of SDCs" - at 100 FIT the rollback cost is far below the 33% tax.
        dual, tmr = dual_vs_tmr_utilization(params(sdc_fit_socket=100.0))
        assert dual > tmr + 0.1

    def test_tmr_wins_when_sdc_dominates(self):
        dual, tmr = dual_vs_tmr_utilization(params(sdc_fit_socket=3e5))
        assert tmr > dual

    def test_crossover_bracketed(self):
        fit = sdc_crossover_fit(params())
        assert fit is not None
        assert 1e3 < fit < 1e6
        # On each side of the crossover the winner flips.
        dual_lo, tmr_lo = dual_vs_tmr_utilization(
            params(sdc_fit_socket=fit / 4))
        dual_hi, tmr_hi = dual_vs_tmr_utilization(
            params(sdc_fit_socket=fit * 4))
        assert dual_lo > tmr_lo
        assert tmr_hi > dual_hi

    def test_no_crossover_when_reliable(self):
        # With a tiny upper bracket the search reports no crossover.
        assert sdc_crossover_fit(params(), lo=1.0, hi=10.0) is None


class TestDiskCheckpointRestart:
    def kw(self):
        return dict(bytes_per_socket=16 * MiB * 4, pfs_bandwidth=50e9)

    def test_delta_grows_linearly_with_sockets(self):
        small = solve_disk_checkpoint_restart(
            params(sockets_per_replica=1024), **self.kw())
        large = solve_disk_checkpoint_restart(
            params(sockets_per_replica=262144), **self.kw())
        assert large.delta_disk == pytest.approx(256 * small.delta_disk)

    def test_utilization_erodes_at_scale(self):
        utils = [
            solve_disk_checkpoint_restart(
                params(sockets_per_replica=s), **self.kw()).utilization
            for s in (1024, 16384, 262144)
        ]
        assert utils == sorted(utils, reverse=True)
        assert utils[0] > 0.99
        assert utils[-1] < 0.8

    def test_vulnerability_unprotected(self):
        sol = solve_disk_checkpoint_restart(
            params(sockets_per_replica=262144, sdc_fit_socket=1e4), **self.kw())
        assert sol.vulnerability > 0.9

    def test_acr_overtakes_disk_cr_at_scale(self):
        # The crossover the paper's introduction motivates: at large scale
        # and realistic PFS bandwidth, paying 50% for replication beats
        # paying serial disk-checkpoint time (a slow PFS moves it earlier).
        from repro.model.schemes import ResilienceScheme, best_solution

        p = params(sockets_per_replica=262144)
        disk = solve_disk_checkpoint_restart(
            p, bytes_per_socket=16 * MiB * 4, pfs_bandwidth=5e9)
        acr = best_solution(p, ResilienceScheme.STRONG)
        assert acr.utilization > disk.utilization

    def test_unstable_regime_handled(self):
        sol = solve_disk_checkpoint_restart(
            params(sockets_per_replica=1048576, hard_mtbf_socket=1e7),
            bytes_per_socket=64 * MiB, pfs_bandwidth=1e9)
        assert sol.utilization == 0.0 or math.isfinite(sol.total_time)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            solve_disk_checkpoint_restart(params(), bytes_per_socket=0,
                                          pfs_bandwidth=1e9)
