"""Property-based tests of the Section-5 model.

Hypothesis sweeps the parameter space and checks structural invariants the
closed-form solutions must satisfy regardless of the specific numbers.
"""

import math

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.params import ModelParams
from repro.model.schemes import (
    ResilienceScheme,
    optimal_tau,
    prob_multi_failure,
    solve_scheme,
)
from repro.model.vulnerability import undetected_sdc_probability
from repro.util.units import HOURS, YEARS

params_strategy = st.builds(
    ModelParams,
    work=st.floats(min_value=1 * HOURS, max_value=200 * HOURS),
    delta=st.floats(min_value=1.0, max_value=300.0),
    sockets_per_replica=st.integers(min_value=64, max_value=1 << 19),
    hard_mtbf_socket=st.floats(min_value=5 * YEARS, max_value=500 * YEARS),
    sdc_fit_socket=st.floats(min_value=0.0, max_value=20_000.0),
)

tau_strategy = st.floats(min_value=10.0, max_value=50_000.0)


class TestModelInvariants:
    @given(params_strategy, tau_strategy)
    @settings(max_examples=80, deadline=None)
    def test_total_time_at_least_work(self, params, tau):
        for scheme in ResilienceScheme:
            total = solve_scheme(params, scheme, tau).total_time
            assert total >= params.work or math.isinf(total)

    @given(params_strategy, tau_strategy)
    @settings(max_examples=80, deadline=None)
    def test_weak_never_slower_than_strong(self, params, tau):
        # At equal tau, weak's rework term is strong's scaled by P <= 1.
        ts = solve_scheme(params, "strong", tau).total_time
        tw = solve_scheme(params, "weak", tau).total_time
        if math.isfinite(ts):
            assert tw <= ts * (1 + 1e-9)

    @given(params_strategy, tau_strategy)
    @settings(max_examples=80, deadline=None)
    def test_components_non_negative_and_consistent(self, params, tau):
        for scheme in ResilienceScheme:
            sol = solve_scheme(params, scheme, tau)
            if not math.isfinite(sol.total_time):
                continue
            assert sol.checkpoint_time >= 0
            assert sol.restart_time >= 0
            assert sol.rework_time >= 0
            assert 0 < sol.utilization <= 0.5

    @given(params_strategy)
    @settings(max_examples=40, deadline=None)
    def test_optimal_tau_is_locally_optimal(self, params):
        for scheme in ResilienceScheme:
            tau = optimal_tau(params, scheme)
            best = solve_scheme(params, scheme, tau).total_time
            if not math.isfinite(best):
                continue
            for factor in (0.5, 2.0):
                other = solve_scheme(params, scheme, tau * factor).total_time
                # The objective can be extremely flat near the optimum, so
                # allow the bounded search's relative tolerance.
                assert best <= other * (1 + 1e-4)

    @given(params_strategy, tau_strategy)
    @settings(max_examples=60, deadline=None)
    def test_probability_bounds(self, params, tau):
        p = prob_multi_failure(params, tau)
        assert 0.0 <= p <= 1.0
        for scheme in ResilienceScheme:
            v = undetected_sdc_probability(params, scheme, tau)
            assert 0.0 <= v <= 1.0

    @given(params_strategy, tau_strategy)
    @settings(max_examples=60, deadline=None)
    def test_vulnerability_exposure_halving(self, params, tau):
        strong = undetected_sdc_probability(params, "strong", tau)
        medium = undetected_sdc_probability(params, "medium", tau)
        weak = undetected_sdc_probability(params, "weak", tau)
        assert strong == 0.0
        assert 0.0 <= medium <= 1.0 and 0.0 <= weak <= 1.0
        # The exact §5 invariant is per unit time: medium's unprotected
        # window is half of weak's, so the hazard of an undetected SDC
        # (exposure per second of runtime) is exactly halved.  The per-run
        # probabilities additionally depend on each scheme's total time, so
        # they are only ordered away from saturation.
        t_m = solve_scheme(params, "medium", tau).total_time
        t_w = solve_scheme(params, "weak", tau).total_time
        if (math.isfinite(t_m) and math.isfinite(t_w)
                and 1e-12 < weak < 1.0 - 1e-12 and medium < 1.0 - 1e-12):
            rate_m = -math.log1p(-medium) / t_m
            rate_w = -math.log1p(-weak) / t_w
            assert rate_m == pytest.approx(rate_w / 2, rel=1e-6)

    @given(params_strategy, tau_strategy,
           st.floats(min_value=1.1, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_total_time_monotone_in_work(self, params, tau, factor):
        for scheme in ResilienceScheme:
            t1 = solve_scheme(params, scheme, tau).total_time
            t2 = solve_scheme(params.with_overrides(work=params.work * factor),
                              scheme, tau).total_time
            if math.isfinite(t1) and math.isfinite(t2):
                assert t2 > t1
