"""Model-parameter derivation tests (Table 1 semantics)."""

import pytest

from repro.model.params import ModelParams, paper_fig7_params
from repro.util.errors import ConfigurationError
from repro.util.units import HOURS, YEARS


def params(**kw):
    base = dict(work=24 * HOURS, delta=15.0, sockets_per_replica=1024)
    base.update(kw)
    return ModelParams(**base)


class TestDerivedRates:
    def test_total_sockets_doubles_under_replication(self):
        p = params()
        assert p.total_sockets == 2048
        assert p.with_overrides(replicated=False).total_sockets == 1024

    def test_hard_mtbf_scales_with_sockets(self):
        p = params()
        assert p.hard_mtbf_system == pytest.approx(50 * YEARS / 2048)

    def test_sdc_mtbf_system_counts_both_replicas(self):
        # Any detected corruption rolls both replicas back.
        p = params(sdc_fit_socket=100.0)
        per_socket = 1e9 * HOURS / 100.0
        assert p.sdc_mtbf_system == pytest.approx(per_socket / 2048)

    def test_sdc_mtbf_replica_counts_one_replica(self):
        # Undetected corruption only matters in the surviving image.
        p = params(sdc_fit_socket=100.0)
        assert p.sdc_mtbf_replica == pytest.approx(2 * p.sdc_mtbf_system)

    def test_zero_fit_gives_infinite_sdc_mtbf(self):
        p = params(sdc_fit_socket=0.0)
        assert p.sdc_mtbf_system == float("inf")

    def test_fig7_preset(self):
        p = paper_fig7_params(65536, delta=180.0)
        assert p.sockets_per_replica == 65536
        assert p.delta == 180.0
        assert p.work == 24 * HOURS
        assert p.hard_mtbf_socket == 50 * YEARS
        assert p.sdc_fit_socket == 100.0


class TestValidation:
    def test_rejects_bad_work(self):
        with pytest.raises(ConfigurationError):
            params(work=0.0)

    def test_rejects_negative_delta(self):
        with pytest.raises(ConfigurationError):
            params(delta=-1.0)

    def test_rejects_bad_sockets(self):
        with pytest.raises(ConfigurationError):
            params(sockets_per_replica=0)

    def test_rejects_negative_fit(self):
        with pytest.raises(ConfigurationError):
            params(sdc_fit_socket=-5.0)

    def test_with_overrides_returns_new_object(self):
        p = params()
        q = p.with_overrides(delta=99.0)
        assert p.delta == 15.0 and q.delta == 99.0
