"""Optimum-checkpoint-period estimator tests."""

import math

import pytest

from repro.model.daly import daly_tau, young_tau
from repro.util.errors import ConfigurationError


class TestYoung:
    def test_sqrt_formula(self):
        assert young_tau(10.0, 2000.0) == pytest.approx(math.sqrt(2 * 10 * 2000))

    def test_infinite_mtbf(self):
        assert young_tau(10.0, math.inf) == math.inf


class TestDaly:
    def test_close_to_young_when_delta_small(self):
        # The higher-order correction vanishes for delta << M.
        assert daly_tau(1.0, 1e9) == pytest.approx(young_tau(1.0, 1e9), rel=1e-3)

    def test_larger_than_young_minus_delta_generally(self):
        tau = daly_tau(100.0, 10_000.0)
        assert tau > 0
        assert tau < 10_000.0

    def test_degenerate_delta_ge_2m(self):
        assert daly_tau(100.0, 40.0) == 40.0

    def test_monotone_in_mtbf(self):
        taus = [daly_tau(10.0, m) for m in (1e2, 1e3, 1e4, 1e5)]
        assert taus == sorted(taus)

    def test_monotone_in_delta(self):
        taus = [daly_tau(d, 1e5) for d in (1.0, 10.0, 100.0)]
        assert taus == sorted(taus)

    def test_always_positive(self):
        assert daly_tau(1e-9, 1e-3) > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            daly_tau(-1.0, 100.0)
        with pytest.raises(ConfigurationError):
            daly_tau(1.0, 0.0)

    def test_paper_fig9_jacobi_scale(self):
        # §6.2: optimal interval ~133 s for Jacobi3D (delta ~1.8 s) at 16K
        # sockets/replica with M_H = 50 y/socket and 10,000 FIT/socket.
        # The combined failure rate gives an effective MTBF near 5,000 s.
        tau = daly_tau(1.8, 5000.0)
        assert 100 < tau < 180
