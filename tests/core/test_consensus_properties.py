"""Property-based consensus tests: safety under arbitrary skew and timing.

For any task-speed profile, decomposition, and request time, a completed
round must satisfy:

* **agreement** — every task in scope is paused at the decided iteration;
* **validity** — the decision is at least every task's progress at request
  time (nothing is rolled back) and at most request-max + 1 (only an
  in-flight iteration may complete beyond the snapshot);
* **stability** — nothing advances past the decision until resumed.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.consensus import ConsensusController
from repro.runtime.des import Simulator
from repro.runtime.messages import Transport
from repro.runtime.node import Node
from repro.runtime.task import Task, TaskState


def build_system(n_nodes, tasks_per_node, speed_seed):
    sim = Simulator()
    transport = Transport(sim)
    nodes = [Node(i, 0, i, sim, transport) for i in range(n_nodes)]
    total = n_nodes * tasks_per_node

    def iteration_time(task_id, iteration):
        # Deterministic pseudo-random speeds in [0.05, 0.2] per (task, iter).
        h = (task_id * 2654435761 + iteration * 40503 + speed_seed) % 1000
        return 0.05 + 0.15 * h / 1000.0

    tasks = []
    for tid in range(total):
        node = nodes[tid // tasks_per_node]
        left, right = (tid - 1) % total, (tid + 1) % total
        t = Task(tid, node,
                 neighbors=[(left // tasks_per_node, left),
                            (right // tasks_per_node, right)],
                 iteration_time=iteration_time)
        node.add_task(t)
        tasks.append(t)
    controller = ConsensusController({n.node_id: n for n in nodes})
    return sim, nodes, tasks, controller


class TestConsensusProperties:
    @given(
        n_nodes=st.integers(2, 6),
        tasks_per_node=st.integers(1, 3),
        speed_seed=st.integers(0, 10_000),
        request_at=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_agreement_validity_stability(self, n_nodes, tasks_per_node,
                                          speed_seed, request_at):
        sim, nodes, tasks, controller = build_system(
            n_nodes, tasks_per_node, speed_seed)
        for n in nodes:
            n.start_tasks()
        sim.run(until=request_at)
        progress_at_request = [t.progress for t in tasks]

        decisions = []
        controller.start_round([n.node_id for n in nodes],
                               lambda rid, it: decisions.append(it))
        sim.run(until=request_at + 60.0)

        assert len(decisions) == 1, "round must complete exactly once"
        decided = decisions[0]
        # Validity: no rollback, at most one in-flight iteration beyond max.
        assert decided >= max(progress_at_request)
        assert decided <= max(progress_at_request) + 1
        # Agreement: every task paused exactly at the decision.
        assert all(t.progress == decided for t in tasks)
        assert all(t.state is TaskState.PAUSED for t in tasks)
        # Stability: nothing moves until resumed.
        sim.run(until=request_at + 90.0)
        assert all(t.progress == decided for t in tasks)

    @given(
        n_nodes=st.integers(2, 5),
        speed_seed=st.integers(0, 10_000),
        rounds=st.integers(2, 4),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_repeated_rounds_monotone_decisions(self, n_nodes, speed_seed,
                                                rounds):
        sim, nodes, tasks, controller = build_system(n_nodes, 2, speed_seed)
        for n in nodes:
            n.start_tasks()
        decisions = []
        deadline = 0.0
        for _ in range(rounds):
            deadline += 30.0
            controller.start_round(
                [n.node_id for n in nodes],
                lambda rid, it: decisions.append(it))
            sim.run(until=deadline)
            for t in tasks:
                t.resume()
            sim.run(until=deadline + 2.0)
        assert len(decisions) == rounds
        assert decisions == sorted(decisions)
