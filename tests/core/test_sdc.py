"""SDC scan tests over checkpoint generations."""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointGeneration
from repro.core.sdc import detect_sdc
from repro.pup.puper import pack
from repro.util.errors import SimulationError


class Blob:
    def __init__(self, values):
        self.values = np.asarray(values, dtype=np.float64)

    def pup(self, p):
        self.values = p.pup_array("values", self.values)


def generation(iteration, per_rank_values):
    gen = CheckpointGeneration(iteration=iteration)
    for rank, values in enumerate(per_rank_values):
        gen.shards[rank] = pack(Blob(values))
    return gen


class TestDetectSDC:
    def test_identical_generations_clean(self):
        a = generation(3, [[1.0, 2.0], [3.0, 4.0]])
        b = generation(3, [[1.0, 2.0], [3.0, 4.0]])
        result = detect_sdc(a, b)
        assert result.clean
        assert result.mismatched_ranks == set()
        assert set(result.per_rank) == {0, 1}

    def test_mismatch_localized_to_rank(self):
        a = generation(3, [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        b = generation(3, [[1.0, 2.0], [3.0, 4.5], [5.0, 6.0]])
        result = detect_sdc(a, b)
        assert not result.clean
        assert result.mismatched_ranks == {1}

    def test_checksum_mode(self):
        a = generation(1, [[1.0], [2.0]])
        b = generation(1, [[1.0], [2.0]])
        assert detect_sdc(a, b, use_checksum=True).clean
        c = generation(1, [[1.0], [2.25]])
        result = detect_sdc(a, c, use_checksum=True)
        assert not result.clean
        assert result.method == "checksum"

    def test_rtol_forgives_roundoff(self):
        a = generation(1, [[1.0, 2.0]])
        b = generation(1, [[1.0 + 1e-12, 2.0]])
        assert not detect_sdc(a, b).clean
        assert detect_sdc(a, b, rtol=1e-9).clean

    def test_iteration_mismatch_rejected(self):
        a = generation(3, [[1.0]])
        b = generation(4, [[1.0]])
        with pytest.raises(SimulationError):
            detect_sdc(a, b)

    def test_rank_set_mismatch_rejected(self):
        a = generation(3, [[1.0], [2.0]])
        b = generation(3, [[1.0]])
        with pytest.raises(SimulationError):
            detect_sdc(a, b)

    def test_missing_generation_rejected(self):
        with pytest.raises(SimulationError):
            detect_sdc(None, generation(1, [[1.0]]))
