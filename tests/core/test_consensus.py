"""Checkpoint-consensus protocol tests (§2.2, Fig. 3).

The safety property: when a round completes, every task in scope is paused at
exactly the decided iteration — no task ran past it, no in-flight iteration is
lost — even though tasks progress at different rates with no global barrier.
"""

import pytest

from repro.core.consensus import ConsensusController
from repro.runtime.des import Simulator
from repro.runtime.messages import Transport
from repro.runtime.node import Node
from repro.runtime.task import Task, TaskState
from repro.util.errors import SimulationError


def build(n_nodes=4, tasks_per_node=2, skew=0.3):
    sim = Simulator()
    transport = Transport(sim)
    nodes = [Node(i, 0, i, sim, transport) for i in range(n_nodes)]
    total = n_nodes * tasks_per_node

    def iteration_time(task_id, it):
        return 0.1 * (1.0 + skew * ((task_id * 13 + it * 7) % 10) / 10)

    tasks = []
    for tid in range(total):
        node = nodes[tid // tasks_per_node]
        left, right = (tid - 1) % total, (tid + 1) % total
        t = Task(tid, node, neighbors=[
            (left // tasks_per_node, left), (right // tasks_per_node, right)],
            iteration_time=iteration_time)
        node.add_task(t)
        tasks.append(t)
    controller = ConsensusController({n.node_id: n for n in nodes})
    return sim, nodes, tasks, controller


class TestSafety:
    def test_all_tasks_pause_at_decided_iteration(self):
        sim, nodes, tasks, controller = build()
        for n in nodes:
            n.start_tasks()
        sim.run(until=2.05)
        done = []
        controller.start_round([n.node_id for n in nodes],
                               lambda rid, it: done.append(it))
        sim.run(until=10.0)
        assert len(done) == 1
        decided = done[0]
        assert all(t.progress == decided for t in tasks)
        assert all(t.state is TaskState.PAUSED for t in tasks)

    def test_decided_iteration_at_least_max_progress_at_request(self):
        sim, nodes, tasks, controller = build()
        for n in nodes:
            n.start_tasks()
        sim.run(until=3.05)
        max_before = max(t.progress for t in tasks)
        done = []
        controller.start_round([n.node_id for n in nodes],
                               lambda rid, it: done.append(it))
        sim.run(until=10.0)
        assert done[0] >= max_before

    def test_mid_iteration_tasks_not_truncated(self):
        # A task computing iteration k+1 when the request lands must be
        # allowed to finish it; the decision accounts for in-flight work.
        sim, nodes, tasks, controller = build(skew=0.0)
        for n in nodes:
            n.start_tasks()
        sim.run(until=0.45)  # everyone mid-iteration 5
        done = []
        controller.start_round([n.node_id for n in nodes],
                               lambda rid, it: done.append(it))
        sim.run(until=5.0)
        assert done[0] == 5
        assert all(t.progress == 5 for t in tasks)

    def test_subset_scope_leaves_other_nodes_running(self):
        sim, nodes, tasks, controller = build(n_nodes=4, tasks_per_node=1)
        for n in nodes:
            n.start_tasks()
        sim.run(until=1.05)
        # Only nodes 0 and 1 participate (e.g. medium-recovery consensus on
        # the healthy replica); 2 and 3 keep running... until the ring
        # dependencies on the paused tasks stall them, which is fine.
        done = []
        controller.start_round([0, 1], lambda rid, it: done.append(it))
        sim.run(until=3.0)
        assert len(done) == 1
        assert tasks[0].state is TaskState.PAUSED
        assert tasks[1].state is TaskState.PAUSED


class TestLiveness:
    def test_completes_from_fresh_start(self):
        sim, nodes, tasks, controller = build()
        for n in nodes:
            n.start_tasks()
        done = []
        controller.start_round([n.node_id for n in nodes],
                               lambda rid, it: done.append(it))
        sim.run(until=5.0)
        assert done  # decides even at iteration ~0

    def test_sequential_rounds(self):
        sim, nodes, tasks, controller = build()
        for n in nodes:
            n.start_tasks()
        decisions = []

        def after_first(rid, it):
            decisions.append(it)
            for t in tasks:
                t.resume()

        controller.start_round([n.node_id for n in nodes], after_first)
        sim.run(until=3.0)
        controller.start_round([n.node_id for n in nodes],
                               lambda rid, it: decisions.append(it))
        sim.run(until=8.0)
        assert len(decisions) == 2
        assert decisions[1] > decisions[0]

    def test_concurrent_round_rejected(self):
        sim, nodes, tasks, controller = build()
        controller.start_round([n.node_id for n in nodes], lambda *a: None)
        with pytest.raises(SimulationError):
            controller.start_round([n.node_id for n in nodes], lambda *a: None)

    def test_abort_releases_paused_tasks(self):
        sim, nodes, tasks, controller = build()
        for n in nodes:
            n.start_tasks()
        sim.run(until=1.05)
        controller.start_round([n.node_id for n in nodes], lambda *a: None)
        sim.run(until=1.10)  # mid-protocol: paused tasks still draining
        assert controller.active
        controller.abort_round()
        progress_at_abort = max(t.progress for t in tasks)
        sim.run(until=3.0)
        assert max(t.progress for t in tasks) > progress_at_abort
        assert controller.rounds_aborted == 1

    def test_stale_messages_after_abort_ignored(self):
        sim, nodes, tasks, controller = build()
        for n in nodes:
            n.start_tasks()
        done = []
        controller.start_round([n.node_id for n in nodes],
                               lambda rid, it: done.append((rid, it)))
        sim.run(until=0.01)   # request in flight
        controller.abort_round()
        sim.run(until=2.0)    # stale messages drain harmlessly
        assert done == []
        # A fresh round still works afterwards.
        controller.start_round([n.node_id for n in nodes],
                               lambda rid, it: done.append((rid, it)))
        sim.run(until=6.0)
        assert len(done) == 1

    def test_empty_scope_rejected(self):
        _, _, _, controller = build()
        with pytest.raises(SimulationError):
            controller.start_round([], lambda *a: None)

    def test_round_counters(self):
        sim, nodes, tasks, controller = build()
        for n in nodes:
            n.start_tasks()
        controller.start_round([n.node_id for n in nodes], lambda *a: None)
        sim.run(until=5.0)
        assert controller.rounds_started == 1
        assert controller.rounds_completed == 1
