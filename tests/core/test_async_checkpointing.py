"""Semi-blocking (asynchronous) checkpointing tests — the §4.2 future work.

"Another way to reduce network congestion is to use asynchronous
checkpointing that overlaps the checkpoint transmission with application
execution."  Semantics under test: the application blocks only for the local
snapshot; transfer + comparison overlap execution; SDC is still detected
(later); failures mid-transfer abandon the candidate generation safely.
"""

import numpy as np
import pytest

from repro.core import ACR, ACRConfig
from repro.faults import FaultEvent, FaultKind, InjectionPlan
from repro.model import ResilienceScheme


def run(plan=None, **overrides):
    defaults = dict(checkpoint_interval=2.0, total_iterations=300,
                    tasks_per_node=1, app_scale=1e-4, seed=7, spare_nodes=16,
                    async_checkpointing=True)
    defaults.update(overrides)
    acr = ACR("jacobi3d-charm", nodes_per_replica=4,
              config=ACRConfig(**defaults), injection_plan=plan or InjectionPlan())
    return acr, acr.run(until=3000.0, max_events=20_000_000)


class TestFailureFreeAsync:
    def test_completes_correctly(self):
        _, report = run()
        assert report.completed and report.result_correct

    def test_blocking_time_is_pack_only(self):
        _, report = run()
        assert report.checkpoints_completed >= 2
        assert 0 < report.checkpoint_blocking_time < report.checkpoint_time
        # Jacobi: pack is ~1/6 of pack+transfer+compare under default mapping.
        assert report.checkpoint_blocking_time < 0.5 * report.checkpoint_time

    def test_blocking_mode_blocks_fully(self):
        _, sync_report = run(async_checkpointing=False)
        assert sync_report.checkpoint_blocking_time == pytest.approx(
            sync_report.checkpoint_time)

    def test_async_finishes_sooner_than_blocking(self):
        _, async_report = run(total_iterations=600)
        _, sync_report = run(total_iterations=600, async_checkpointing=False)
        assert async_report.final_time < sync_report.final_time
        assert np.array_equal(async_report.digests[0], sync_report.digests[0])

    def test_one_generation_in_flight_at_a_time(self):
        # With an interval shorter than the transfer time, checkpoints must
        # queue, not overlap: every completed checkpoint still commits.
        _, report = run(checkpoint_interval=0.3, total_iterations=400)
        assert report.completed and report.result_correct
        assert report.checkpoints_completed >= 3


class TestAsyncWithFaults:
    def test_sdc_detected_despite_overlap(self):
        plan = InjectionPlan([
            FaultEvent(time=3.0, kind=FaultKind.SDC, replica=0, node_id=1),
        ])
        _, report = run(plan=plan)
        assert report.sdc_detected == 1
        assert report.completed and report.result_correct

    def test_hard_fault_mid_transfer_abandons_candidate(self):
        # Crash very close to a checkpoint boundary so the background
        # transfer is likely in flight when detection lands.
        plan = InjectionPlan([
            FaultEvent(time=2.05, kind=FaultKind.HARD, replica=1, node_id=2),
        ])
        for scheme in ("strong", "medium", "weak"):
            _, report = run(plan=plan, scheme=ResilienceScheme(scheme))
            assert report.completed and report.result_correct, scheme
            assert report.hard_detected == 1

    def test_mixed_fault_storm_async(self):
        events = []
        for i, t in enumerate((1.9, 4.05, 6.3, 8.1)):
            kind = FaultKind.SDC if i % 2 else FaultKind.HARD
            events.append(FaultEvent(time=t, kind=kind, replica=i % 2,
                                     node_id=i % 4))
        _, report = run(plan=InjectionPlan(events), total_iterations=500,
                        scheme=ResilienceScheme.MEDIUM)
        assert report.completed
        assert report.aborted_reason is None
