"""White-box framework tests: deferral, watchdog, and phase machinery."""

import pytest

from repro.core import ACR, ACRConfig
from repro.core.events import TimelineKind
from repro.faults import FaultEvent, FaultKind, InjectionPlan
from repro.model import ResilienceScheme


def build(plan=None, **overrides):
    defaults = dict(checkpoint_interval=2.0, total_iterations=200,
                    tasks_per_node=1, app_scale=1e-4, seed=7, spare_nodes=16)
    defaults.update(overrides)
    return ACR("synthetic", nodes_per_replica=4, config=ACRConfig(**defaults),
               injection_plan=plan or InjectionPlan())


class TestCheckpointDeferral:
    def test_checkpoint_requested_while_busy_is_deferred_not_lost(self):
        acr = build(total_iterations=2000, checkpoint_interval=2.0)
        acr.start()
        acr.sim.run(until=2.01)  # consensus for the first periodic just began
        assert acr.phase in ("consensus", "checkpointing")
        acr._begin_checkpoint("extra")
        assert acr._checkpoint_deferred
        acr.sim.run(until=6.0)
        # Both the periodic and the deferred request produced checkpoints.
        assert acr.report.checkpoints_completed >= 2

    def test_timer_rearmed_after_every_activity(self):
        acr = build(total_iterations=4000, checkpoint_interval=1.5)
        report = acr.run(until=20.0)
        dones = report.timeline.times_of(TimelineKind.CHECKPOINT_DONE)
        assert len(dones) >= 8
        gaps = [b - a for a, b in zip(dones, dones[1:])]
        assert all(1.0 < g < 4.0 for g in gaps)


class TestWatchdog:
    def test_watchdog_rescues_stalled_consensus(self):
        # Kill a node exactly when the periodic consensus begins: the round
        # stalls on the dead participant and the machinery must recover it
        # (via heartbeat detection or the stall watchdog) without hanging.
        plan = InjectionPlan([
            FaultEvent(time=2.0, kind=FaultKind.HARD, replica=0, node_id=3),
        ])
        acr = build(plan=plan, total_iterations=400)
        report = acr.run(until=3000.0)
        assert report.completed and report.result_correct
        assert report.hard_detected == 1

    def test_watchdog_noop_on_healthy_round(self):
        acr = build(total_iterations=3000)
        report = acr.run(until=30.0)
        # No failures: detection count stays zero despite many rounds.
        assert report.hard_detected == 0
        assert acr.consensus.rounds_aborted == 0


class TestPhaseAccounting:
    def test_phase_returns_to_running_after_each_checkpoint(self):
        acr = build(total_iterations=4000, checkpoint_interval=2.0)
        acr.start()
        acr.sim.run(until=3.5)
        assert acr.phase == "running"

    def test_finalize_without_completion_reports_progress(self):
        acr = build(total_iterations=None)
        report = acr.run(until=5.0)
        assert not report.completed
        assert report.iterations_completed > 0
        assert report.final_time == 5.0

    def test_double_run_reuses_state_safely(self):
        acr = build(total_iterations=100)
        report = acr.run(until=3000.0)
        assert report.completed
        # run() again: already started, simulation drained/stopped.
        report2 = acr.run(until=3000.0)
        assert report2.completed

    def test_cannot_start_twice(self):
        from repro.util.errors import SimulationError

        acr = build()
        acr.start()
        with pytest.raises(SimulationError):
            acr.start()


class TestSchemeSpecificInternals:
    def test_weak_pending_scopes_checkpoint_to_healthy_replica(self):
        plan = InjectionPlan([
            FaultEvent(time=1.0, kind=FaultKind.HARD, replica=1, node_id=2),
        ])
        acr = build(plan=plan, scheme=ResilienceScheme.WEAK,
                    checkpoint_interval=5.0, total_iterations=400)
        acr.start()
        acr.sim.run(until=4.0)   # failure detected, weak recovery pending
        assert acr._weak_pending is not None
        acr.sim.run(until=12.0)  # next periodic checkpoint ships the state
        assert acr._weak_pending is None
        starts = acr.timeline.of_kind(TimelineKind.CONSENSUS_START)
        weak_scope = [e for e in starts if e.detail.get("scope") == 4]
        assert weak_scope, "the weak-recovery checkpoint spans one replica only"

    def test_medium_installs_healthy_checkpoint_for_both(self):
        plan = InjectionPlan([
            FaultEvent(time=1.0, kind=FaultKind.HARD, replica=1, node_id=0),
        ])
        acr = build(plan=plan, scheme=ResilienceScheme.MEDIUM,
                    checkpoint_interval=30.0, total_iterations=500)
        acr.start()
        acr.sim.run(until=10.0)
        it0 = acr.store.safe_iteration(0)
        it1 = acr.store.safe_iteration(1)
        assert it0 == it1 and it0 is not None and it0 > 0

    def test_strong_rollback_preserves_healthy_progress(self):
        plan = InjectionPlan([
            FaultEvent(time=3.0, kind=FaultKind.HARD, replica=1, node_id=0),
        ])
        acr = build(plan=plan, scheme=ResilienceScheme.STRONG,
                    checkpoint_interval=2.0, total_iterations=2000)
        acr.start()
        acr.sim.run(until=7.0)
        healthy = max(t.progress for t in acr.tasks[0])
        crashed = max(t.progress for t in acr.tasks[1])
        assert healthy > crashed  # replica 1 rolled back, replica 0 did not
