"""Second-failure cascades: deaths in every protocol phase, every scheme.

These scenarios were seeded from minimized chaos-fuzzer schedules (PR's
`repro chaos` sweep): each places a first fault inside a specific protocol
phase and a second one in the recovery / weak-pending window the first
opens, then requires the run to finish bit-correct under full invariant
monitoring.  The paper's §2.3 claims exactly this: any two-failure burst
that leaves one safe checkpoint intact is survivable.
"""

from dataclasses import replace

import pytest

from repro.chaos import ChaosSchedule, probe_phase_windows, run_schedule
from repro.faults import FaultEvent, FaultKind

SCHEMES = ("strong", "medium", "weak")

#: Buddy heartbeat detection latency (interval 0.5s, timeout factor 4).
DETECTION = 2.0


def cascade_schedule(scheme, events, *, async_ckpt=False):
    return ChaosSchedule(
        seed=2, app="synthetic", nodes_per_replica=2, scheme=scheme,
        async_checkpointing=async_ckpt, use_checksum=False,
        checkpoint_interval=2.0, total_iterations=600, tasks_per_node=1,
        spare_nodes=16, horizon=600.0, events=tuple(events),
        modes=("cascade",) * len(events))


def windows_for(scheme, *, async_ckpt=False):
    probe = cascade_schedule(scheme, (), async_ckpt=async_ckpt)
    windows = probe_phase_windows(probe)
    assert windows.consensus and windows.pack_transfer \
        and windows.checkpoint_done
    return windows


def run_and_require_correct(schedule):
    outcome = run_schedule(schedule)
    assert outcome.ok, (outcome.invariant, outcome.violation)
    assert outcome.completed, outcome.aborted_reason
    assert outcome.hard_detected >= outcome.hard_injected
    return outcome


def hard(time, replica, rank=0):
    return FaultEvent(time=time, kind=FaultKind.HARD, replica=replica,
                      node_id=rank)


@pytest.mark.parametrize("scheme", SCHEMES)
class TestCascades:
    def test_buddy_pair_dead_during_consensus(self, scheme):
        # Both copies of rank 0 die inside a consensus round: the watchdog
        # must sweep every dead node with a live detector.
        windows = windows_for(scheme)
        a, b = windows.consensus[1]
        t = (a + b) / 2
        run_and_require_correct(cascade_schedule(
            scheme, [hard(t, 0), hard(t + 0.01, 1)]))

    def test_second_death_during_pack_transfer_recovery(self, scheme):
        # First death lands mid pack/transfer; the second hits the *other*
        # replica while the first recovery is still in flight.
        windows = windows_for(scheme)
        a, b = windows.pack_transfer[1]
        t = (a + b) / 2
        run_and_require_correct(cascade_schedule(
            scheme, [hard(t, 0), hard(t + DETECTION * 1.5, 1, rank=1)]))

    def test_second_death_right_after_checkpoint(self, scheme):
        # Post-commit death followed by its buddy: the fresh checkpoint is
        # the rollback target and both replicas must reconverge on it.
        windows = windows_for(scheme)
        done = windows.checkpoint_done[1]
        run_and_require_correct(cascade_schedule(
            scheme, [hard(done + 0.05, 1), hard(done + 0.2, 0)]))

    def test_second_death_during_async_transfer(self, scheme):
        # Semi-blocking mode: the app resumes while the transfer/compare tail
        # runs in the background — deaths in that tail must still converge.
        windows = windows_for(scheme, async_ckpt=True)
        a, b = windows.pack_transfer[1]
        run_and_require_correct(cascade_schedule(
            scheme,
            [hard(a + 0.9 * (b - a), 0),
             hard(a + 0.9 * (b - a) + DETECTION, 1)],
            async_ckpt=True))


class TestWeakShipmentDivergence:
    def test_second_failure_during_weak_pending_window(self):
        # The weak scheme's hardest path (Fig. 5d): the healthy replica
        # checkpoints alone, and the victim dies *again* before the shipped
        # checkpoint lands.  Safe generations must not stay diverged.
        windows = windows_for("weak")
        a, b = windows.pack_transfer[0]
        t = (a + b) / 2
        run_and_require_correct(cascade_schedule(
            "weak",
            [hard(t, 0), hard(t + DETECTION * 2.0, 0)]))

    def test_triple_cascade_same_rank(self):
        windows = windows_for("weak")
        done = windows.checkpoint_done[0]
        run_and_require_correct(cascade_schedule(
            "weak",
            [hard(done + 0.1, 0), hard(done + 0.1 + DETECTION, 1),
             hard(done + 0.1 + 3 * DETECTION, 0)]))


class TestMinimizedFuzzerRepro:
    """The minimized plan `repro chaos` produced against the pre-fix
    watchdog (seed 65 shrunk to two faults) — kept as a regression test."""

    PLAN = {
        "seed": 65, "app": "jacobi3d-charm", "nodes_per_replica": 4,
        "scheme": "weak", "async_checkpointing": True,
        "use_checksum": False, "checkpoint_interval": 4.3979986292882,
        "total_iterations": 51, "tasks_per_node": 2, "spare_nodes": 16,
        "horizon": 155.45153779086786,
        "events": [
            {"time": 2.6498283579950455, "kind": "sdc", "replica": 1,
             "node_id": 1},
            {"time": 2.6498513098345846, "kind": "hard", "replica": 0,
             "node_id": 1},
        ],
        "modes": ["buddy-pair", "buddy-pair"],
    }

    def test_fixed_watchdog_survives_minimized_plan(self):
        outcome = run_schedule(ChaosSchedule.from_dict(self.PLAN))
        assert outcome.ok, (outcome.invariant, outcome.violation)
        assert outcome.completed
        # The SDC lands right before the buddy's hard fault, so the solo
        # weak-pending checkpoint commits it uncompared: this plan sits in
        # the paper's documented vulnerability window (§2.3, §5).
        assert outcome.sdc_injected > outcome.sdc_detected

    def test_plan_replays_bitwise(self):
        sched = ChaosSchedule.from_dict(self.PLAN)
        first = run_schedule(sched)
        again = run_schedule(replace(sched))
        assert first.fingerprint == again.fingerprint


class TestMediumVulnerabilityWindow:
    """Minimized from fuzzer seed 211: a crash on one replica followed by an
    SDC on the *healthy* replica before detection.  The medium recovery
    commits the healthy (corrupted) state solo and installs it for both —
    the paper's documented §2.3/§5 exposure, which the monitor must excuse
    rather than flag as a protocol bug."""

    PLAN = {
        "seed": 211, "app": "jacobi3d-charm", "nodes_per_replica": 4,
        "scheme": "medium", "async_checkpointing": False,
        "use_checksum": True, "checkpoint_interval": 4.711047059034765,
        "total_iterations": 53, "tasks_per_node": 2, "spare_nodes": 16,
        "horizon": 159.08305877297792,
        "events": [
            {"time": 2.1300750169010727, "kind": "hard", "replica": 1,
             "node_id": 2},
            {"time": 2.754550220973227, "kind": "sdc", "replica": 0,
             "node_id": 3},
        ],
        "modes": ["chained", "chained"],
    }

    def test_window_is_excused_not_flagged(self):
        outcome = run_schedule(ChaosSchedule.from_dict(self.PLAN))
        assert outcome.ok, (outcome.invariant, outcome.violation)
        assert outcome.completed
        assert outcome.sdc_injected > outcome.sdc_detected
        assert outcome.recoveries.get("medium") == 1
