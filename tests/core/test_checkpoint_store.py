"""Checkpoint-store (double in-memory generations) tests."""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointGeneration, CheckpointStore
from repro.pup.puper import PackedState
from repro.util.errors import SimulationError


def shard(value=1.0, n=8):
    return PackedState(np.full(n, value, dtype=np.uint8))


def full_generation(iteration=5, nodes=4, value=1):
    gen = CheckpointGeneration(iteration=iteration)
    for r in range(nodes):
        gen.shards[r] = shard(value)
    return gen


class TestCandidateLifecycle:
    def test_commit_promotes_candidate_to_safe(self):
        store = CheckpointStore(2)
        store.begin_candidate(0, iteration=3, wallclock=1.0)
        store.put_shard(0, 0, shard())
        store.put_shard(0, 1, shard())
        gen = store.commit(0)
        assert store.safe(0) is gen
        assert store.safe_iteration(0) == 3
        assert store.commits == 1

    def test_commit_requires_all_shards(self):
        store = CheckpointStore(3)
        store.begin_candidate(0, 1, 0.0)
        store.put_shard(0, 0, shard())
        with pytest.raises(SimulationError, match="1 of 3"):
            store.commit(0)

    def test_discard_keeps_previous_safe(self):
        store = CheckpointStore(1)
        store.install_safe(0, full_generation(iteration=2, nodes=1))
        store.begin_candidate(0, 7, 0.0)
        store.put_shard(0, 0, shard(9))
        store.discard(0)
        assert store.safe_iteration(0) == 2
        assert store.discards == 1

    def test_put_without_begin_rejected(self):
        store = CheckpointStore(1)
        with pytest.raises(SimulationError):
            store.put_shard(0, 0, shard())

    def test_commit_without_candidate_rejected(self):
        store = CheckpointStore(1)
        with pytest.raises(SimulationError):
            store.commit(0)

    def test_replicas_independent(self):
        store = CheckpointStore(1)
        store.begin_candidate(0, 1, 0.0)
        store.put_shard(0, 0, shard())
        store.begin_candidate(1, 1, 0.0)
        store.put_shard(1, 0, shard())
        store.commit(0)
        assert store.candidate(1) is not None
        assert store.safe(1) is None


class TestSafeGenerations:
    def test_install_safe_validates_completeness(self):
        store = CheckpointStore(4)
        with pytest.raises(SimulationError):
            store.install_safe(0, full_generation(nodes=2))

    def test_clone_is_deep(self):
        store = CheckpointStore(2)
        gen = full_generation(nodes=2, value=5)
        clone = store.clone_generation(gen)
        clone.shards[0].buffer[:] = 0
        assert (gen.shards[0].buffer == 5).all()

    def test_nbytes_sums_shards(self):
        gen = full_generation(nodes=4)
        assert gen.nbytes == 4 * 8

    def test_missing_safe_is_none(self):
        store = CheckpointStore(1)
        assert store.safe(0) is None
        assert store.safe_iteration(1) is None


class TestMemoryAccounting:
    def test_memory_counts_safe_and_candidate(self):
        store = CheckpointStore(2)
        store.install_safe(0, full_generation(nodes=2, value=1))
        assert store.memory_bytes() == 16
        store.begin_candidate(0, 9, 0.0)
        store.put_shard(0, 0, shard())
        store.put_shard(0, 1, shard())
        assert store.memory_bytes() == 32  # double-buffered high-water mark
        store.commit(0)
        assert store.memory_bytes() == 16  # old safe generation released

    def test_framework_reports_peak_memory(self):
        from repro.core import ACR, ACRConfig

        acr = ACR("synthetic", nodes_per_replica=2,
                  config=ACRConfig(checkpoint_interval=2.0,
                                   total_iterations=150, tasks_per_node=1,
                                   app_scale=1e-4, seed=1))
        report = acr.run(until=1000.0)
        assert report.completed
        # Peak >= two replicas' worth of safe+candidate data.
        single = acr.store.safe(0).nbytes
        assert report.peak_checkpoint_memory >= 3 * single
